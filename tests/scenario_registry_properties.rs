//! Registry-wide safety properties: **every** registered scenario family
//! upholds agreement and (conditional broadcast) validity under seeded
//! random Byzantine subsets of size ≤ f — silent or crashing, with and
//! without in-model delay jitter.
//!
//! This is the scenario layer paying for itself: one loop over
//! `registry().keys()` covers every protocol the workspace knows about,
//! and a newly registered family is property-tested with zero new code
//! here. (Strawman families are included deliberately: they overclaim
//! *latency*, not crash tolerance — only the scripted equivocation
//! schedules in `gcl_core::lower_bounds` may split them.)

use gcl_sim::{AdversaryMix, DelayChoice};
use gcl_types::Duration;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_family_is_safe_under_random_byzantine_subsets(
        seed: u64,
        crash: bool,
        jitter: bool,
    ) {
        let reg = gcl_bench::registry();
        prop_assert!(reg.len() >= 15, "expected the full family catalog");
        for key in reg.keys() {
            let family = reg.family(key).expect("listed key");
            let mut spec = family.canonical().with_seed(seed);
            // A seeded Byzantine subset of size ≤ f (placement is drawn
            // from the spec seed inside the scenario layer).
            let count = (seed % (spec.f as u64 + 1)) as u32;
            spec = spec.with_adversary(if crash {
                AdversaryMix::RandomCrashing {
                    count,
                    max_handled: 8,
                }
            } else {
                AdversaryMix::RandomSilent { count }
            });
            if jitter {
                let hi = spec.delta * 2;
                spec = spec.with_delays(DelayChoice::Uniform {
                    lo: Duration::ZERO,
                    hi,
                });
            }
            let o = reg
                .run(&spec)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
            prop_assert!(
                o.agreement_holds(),
                "{}: agreement violated",
                spec.label()
            );
            prop_assert!(
                family.upholds_validity(&spec, &o),
                "{}: validity violated (committed {:?}, input {:?})",
                spec.label(),
                o.committed_value(),
                spec.input
            );
        }
    }

    #[test]
    fn honest_good_case_always_commits_everywhere(seed: u64) {
        // With no adversary and fixed in-model delays, every family's
        // canonical shape must terminate with all honest parties
        // committed — the good case of the paper's tables.
        let reg = gcl_bench::registry();
        for key in reg.keys() {
            let spec = reg.family(key).expect("listed key").canonical().with_seed(seed);
            let o = reg
                .run(&spec)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
            prop_assert!(
                o.all_honest_committed(),
                "{}: good case failed to commit",
                spec.label()
            );
        }
    }
}
