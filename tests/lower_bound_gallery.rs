//! The lower-bound executions as integration tests: each theorem's
//! schedule splits the overclaiming strawman and spares the tight
//! protocol.

use gcl::core::lower_bounds::{theorem10, theorem19, theorem4, theorem7, theorem9};
use gcl::types::{Config, Duration};

#[test]
fn theorem4_one_round_is_impossible() {
    for (n, f, split) in [(4, 1, 1), (4, 1, 2), (7, 2, 3)] {
        let strawman = theorem4::split_one_round_brb(n, f, split);
        assert!(!strawman.agreement_holds(), "n={n}: 1-round BRB must split");
        let real = theorem4::split_two_round_brb(n, f, split);
        assert!(real.agreement_holds(), "n={n}: Fig 1 must survive");
    }
}

#[test]
fn theorem7_two_rounds_need_5f_minus_1() {
    let o = theorem7::split_fab_at_5f_minus_2();
    assert!(
        !o.agreement_holds(),
        "FaB-style 2-round at n = 5f − 2 must split"
    );
}

#[test]
fn theorem9_commit_below_delta_plus_delta_is_unsafe() {
    let strawman = theorem9::split_early_commit();
    assert!(!strawman.agreement_holds());
    // Both conflicting commits landed below Δ + δ — that is the theorem.
    for c in strawman.honest_commits() {
        assert!(c.local.as_micros() < 1_100);
    }
    let real = theorem9::same_adversary_against_fig5();
    assert!(real.agreement_holds());
    assert!(real.all_honest_committed());
}

#[test]
fn theorem10_bound_is_achieved_and_safe() {
    let e1 = theorem10::tightness_execution(5, 2);
    assert!(e1.all_honest_committed());
    // Δ + 1.5δ + σ with δ = 100µs, Δ = 1000µs, σ = 50µs.
    assert!(e1.good_case_latency().unwrap() <= Duration::from_micros(1_200));
    let adv = theorem10::adversarial_execution();
    assert!(adv.agreement_holds());
}

#[test]
fn theorem19_factor_tracks_resilience_ratio() {
    let d = Duration::from_micros(1_000);
    let mut last = Duration::ZERO;
    for (n, f) in [(4, 2), (6, 4), (8, 6), (10, 8)] {
        let cfg = Config::new(n, f).unwrap();
        let bound = theorem19::lower_bound(cfg, d);
        assert!(bound >= last, "lower bound grows with n/(n−f)");
        last = bound;
        let o = theorem19::good_case(n, f, d);
        let measured = o.good_case_latency().unwrap();
        assert!(measured >= bound);
        assert!(measured <= theorem19::upper_bound(cfg, d));
    }
}

#[test]
fn scripted_schedules_are_cleanly_rejected_off_the_simulator() {
    // The scripted equivocation schedules need exact delivery control, so
    // they are deliberately not registered as scenario families. Asking
    // any execution backend's registry path to run one must be a clean
    // UnknownFamily rejection — never a silently diverging wall run.
    use gcl::core::lower_bounds::SIM_ONLY_SCHEDULES;
    use gcl::sim::{ScenarioError, ScenarioSpec};
    use gcl_net::{NetBackend, SocketBackend};

    let reg = gcl::core::registry();
    assert_eq!(SIM_ONLY_SCHEDULES.len(), 5, "one key per theorem module");
    for &key in SIM_ONLY_SCHEDULES {
        assert!(
            reg.family(key).is_none(),
            "{key}: sim-only schedules must stay out of the registry"
        );
        let spec = ScenarioSpec::asynchronous(key, 4, 1);
        for outcome in [
            reg.run_on(&spec, &NetBackend::new()),
            reg.run_on(&spec, &SocketBackend::new()),
            reg.run(&spec),
        ] {
            match outcome {
                Err(ScenarioError::UnknownFamily(k)) => assert_eq!(k, key),
                other => panic!("{key}: expected clean rejection, got {other:?}"),
            }
        }
    }
}
