//! Property-based safety tests: agreement and validity hold for every
//! protocol under randomized in-model schedules — random delays, random
//! clock skews (where permitted), random Byzantine placements drawn from a
//! strategy catalog.

use gcl::core::asynchrony::{Brb2Msg, EquivocatingBroadcaster, TwoRoundBrb};
use gcl::core::psync::{VbbFiveFMinusOne, VbbMsg};
use gcl::core::sync::{SyncStartBb, ThirdBb, TwoDeltaBb, UnsyncBb};
use gcl::crypto::Keychain;
use gcl::sim::{Outcome, RandomDelay, Silent, Simulation, TimingModel};
use gcl::types::{accept_all, Config, Duration, GlobalTime, PartyId, SkewSchedule, Value};
use proptest::prelude::*;

const DELTA_US: u64 = 100;
const BIG_DELTA_US: u64 = 1_000;

fn delta() -> Duration {
    Duration::from_micros(DELTA_US)
}
fn big_delta() -> Duration {
    Duration::from_micros(BIG_DELTA_US)
}

fn sync_model() -> TimingModel {
    TimingModel::Synchrony {
        delta: delta(),
        big_delta: big_delta(),
    }
}

/// Random in-model delays: the oracle asks for up to 2δ, the model clamps
/// honest links to δ — so this also exercises the clamp.
fn oracle(seed: u64) -> RandomDelay {
    RandomDelay::new(Duration::ZERO, Duration::from_micros(2 * DELTA_US), seed)
}

fn check_bb(o: &Outcome, expect_value: Option<Value>) {
    o.assert_agreement();
    assert!(o.all_honest_committed(), "BB termination");
    if let Some(v) = expect_value {
        assert_eq!(o.committed_value(), Some(v), "validity");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn brb2_agreement_any_delays_any_equivocation(
        seed: u64,
        split in 1u32..3,
        equivocate: bool,
    ) {
        let n = 7;
        let cfg = Config::new(n, 2).unwrap();
        let chain = Keychain::generate(n, seed);
        let mut b = Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(oracle(seed));
        if equivocate {
            b = b.byzantine(
                PartyId::new(0),
                EquivocatingBroadcaster {
                    group_a: (1..=split).map(PartyId::new).collect(),
                    value_a: Value::ZERO,
                    value_b: Value::ONE,
                },
            );
        }
        let o = b
            .byzantine(PartyId::new(6), Silent::<Brb2Msg>::new())
            .spawn_honest(|p| {
                TwoRoundBrb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    PartyId::new(0),
                    (!equivocate && p == PartyId::new(0)).then_some(Value::new(9)),
                )
            })
            .run();
        o.assert_agreement();
        if !equivocate {
            prop_assert!(o.validity_holds(Value::new(9)));
            // Round exactness is asserted on the canonical uniform-delay
            // schedules (see tests/table1_reproduction.rs); under random
            // reordering the round metric is an approximation, so here we
            // only require safety, validity and termination.
            prop_assert!(o.all_honest_terminated());
        }
    }

    #[test]
    fn vbb_agreement_random_delays(seed: u64, silent_leader: bool) {
        let n = 9;
        let cfg = Config::new(n, 2).unwrap();
        let chain = Keychain::generate(n, seed);
        let mut b = Simulation::build(cfg)
            .timing(TimingModel::PartialSynchrony {
                gst: GlobalTime::ZERO,
                big_delta: big_delta(),
            })
            .oracle(RandomDelay::new(
                Duration::ZERO,
                Duration::from_micros(BIG_DELTA_US * 2),
                seed,
            ));
        if silent_leader {
            b = b.byzantine(PartyId::new(0), Silent::<VbbMsg>::new());
        }
        let o = b
            .spawn_honest(|p| {
                VbbFiveFMinusOne::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    accept_all(),
                    big_delta(),
                    (!silent_leader && p == PartyId::new(0)).then_some(Value::new(5)),
                )
            })
            .run();
        check_bb(&o, (!silent_leader).then_some(Value::new(5)));
    }

    #[test]
    fn two_delta_bb_random_delays_and_skew(seed: u64, skew_us in 0u64..100) {
        let n = 7;
        let cfg = Config::new(n, 2).unwrap();
        let chain = Keychain::generate(n, seed);
        // Skew ≤ δ as clock sync guarantees; only non-broadcaster parties.
        let late: Vec<(PartyId, Duration)> = (1..n as u32)
            .map(|i| (PartyId::new(i), Duration::from_micros(skew_us * u64::from(i % 2))))
            .collect();
        let o = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(oracle(seed))
            .skew(SkewSchedule::with_late_parties(n, &late))
            .spawn_honest(|p| {
                TwoDeltaBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    big_delta(),
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(3)),
                )
            })
            .run();
        check_bb(&o, Some(Value::new(3)));
        // Good case bound: 2δ plus start skew.
        prop_assert!(
            o.good_case_latency().unwrap()
                <= Duration::from_micros(2 * DELTA_US + skew_us)
        );
    }

    #[test]
    fn third_bb_safe_with_silent_byzantine(seed: u64) {
        let n = 6;
        let cfg = Config::new(n, 2).unwrap();
        let chain = Keychain::generate(n, seed);
        let o = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(oracle(seed))
            .byzantine(PartyId::new(5), Silent::new())
            .spawn_honest(|p| {
                ThirdBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    big_delta(),
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(4)),
                )
            })
            .run();
        check_bb(&o, Some(Value::new(4)));
    }

    #[test]
    fn sync_start_bb_random_delays(seed: u64, byz_count in 0usize..3) {
        let n = 7; // f = 3: n/3 < f < n/2
        let cfg = Config::new(n, 3).unwrap();
        let chain = Keychain::generate(n, seed);
        let mut b = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(oracle(seed));
        for i in 0..byz_count {
            b = b.byzantine(PartyId::new((n - 1 - i) as u32), Silent::new());
        }
        let o = b
            .spawn_honest(|p| {
                SyncStartBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    big_delta(),
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(6)),
                )
            })
            .run();
        check_bb(&o, Some(Value::new(6)));
    }

    #[test]
    fn unsync_bb_random_delays_and_skew(seed: u64, m in 1u64..12) {
        let n = 5;
        let cfg = Config::new(n, 2).unwrap();
        let chain = Keychain::generate(n, seed);
        let late: Vec<(PartyId, Duration)> = (1..n as u32)
            .map(|i| (PartyId::new(i), Duration::from_micros(50 * u64::from(i % 2))))
            .collect();
        let o = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(oracle(seed.wrapping_add(m)))
            .skew(SkewSchedule::with_late_parties(n, &late))
            .spawn_honest(|p| {
                UnsyncBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    big_delta(),
                    m,
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(8)),
                )
            })
            .run();
        check_bb(&o, Some(Value::new(8)));
    }
}
