//! Codec round-trip property suite: for every registered family's message
//! type (and the crypto vocabulary it embeds), fuzz a message and assert
//! `decode(encode(m)) == m`.
//!
//! The four-backend conformance suite only exercises the enum variants a
//! good-case run actually sends; this suite generates *every* variant —
//! view changes, timeout bundles, commit certificates — so a codec impl
//! that forgot one cannot hide behind the happy path. Generation is
//! seeded through the proptest shim (`PROPTEST_SEED`/`PROPTEST_CASES`
//! replay and scale it) and signatures are real `Keychain` signatures, so
//! the decoded values are verifiable, not just structurally equal.

use gcl_core::asynchrony::{BrachaMsg, Brb2Msg, SignedVote};
use gcl_core::dishonest::{MajProposal, MajVote, MajorityMsg};
use gcl_core::psync::{
    Certificate, LeaderSigned, PbftMsg, PbftProposal, PhaseVote, PreparedCert, Proof, StatusMsg,
    TimeoutMsg, VbbMsg, ViewChangeMsg, VoteMsg,
};
use gcl_core::strawman::{EarlyMsg, EarlyVote, FabMsg, FabProposal, FabViewChange, FabVote};
use gcl_core::sync::{
    BaMsg, DsMsg, DsRelay, Fig10Proposal, Fig10Vote, Fig5Commit, Fig5Proposal, Fig5Vote,
    Fig6Proposal, Fig6Vote, Fig9Proposal, Fig9Vote, SyncStartMsg, ThirdMsg, TwoDeltaMsg, UnsyncMsg,
};
use gcl_crypto::{Digest, EquivocationEvidence, Keychain, QuorumCert, Signature};
use gcl_smr::SmrMsg;
use gcl_types::{Batch, Decode, Duration, Encode, PartyId, SlotId, Value, View};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;

/// One shared key universe: codecs only move bytes, so any valid
/// signatures do.
fn chain() -> Keychain {
    Keychain::generate(8, 0x117e_57a6)
}

fn round_trip<T: Encode + Decode + PartialEq + Debug>(msg: T) {
    let bytes = msg.to_wire();
    let back = T::from_wire(&bytes).expect("well-formed encoding must decode");
    prop_assert_eq!(back, msg);
}

fn value(rng: &mut StdRng) -> Value {
    Value::new(rng.gen::<u64>())
}

fn view(rng: &mut StdRng) -> View {
    View::new(rng.gen_range(0u64..50))
}

fn party(rng: &mut StdRng) -> PartyId {
    PartyId::new(rng.gen_range(0u32..8))
}

fn duration(rng: &mut StdRng) -> Duration {
    Duration::from_micros(rng.gen_range(0u64..10_000))
}

fn sig(rng: &mut StdRng, chain: &Keychain) -> Signature {
    chain.signer(party(rng)).sign(Digest::of(&rng.gen::<u64>()))
}

fn sig_vec(rng: &mut StdRng, chain: &Keychain) -> Vec<Signature> {
    (0..rng.gen_range(0usize..5))
        .map(|_| sig(rng, chain))
        .collect()
}

fn relay(rng: &mut StdRng, chain: &Keychain) -> DsRelay {
    DsRelay {
        instance: party(rng),
        value: value(rng),
        chain: sig_vec(rng, chain),
    }
}

fn leader_signed(rng: &mut StdRng, chain: &Keychain) -> LeaderSigned {
    LeaderSigned {
        value: value(rng),
        view: view(rng),
        leader_sig: sig(rng, chain),
    }
}

fn timeout_msg(rng: &mut StdRng, chain: &Keychain) -> TimeoutMsg {
    if rng.gen::<bool>() {
        TimeoutMsg::Bot {
            view: view(rng),
            sig: sig(rng, chain),
        }
    } else {
        TimeoutMsg::Val {
            ls: leader_signed(rng, chain),
            voter_sig: sig(rng, chain),
        }
    }
}

fn certificate(rng: &mut StdRng, chain: &Keychain) -> Certificate {
    if rng.gen::<bool>() {
        Certificate::Genesis
    } else {
        Certificate::Assembled {
            view: view(rng),
            entries: (0..rng.gen_range(0usize..4))
                .map(|_| timeout_msg(rng, chain))
                .collect(),
        }
    }
}

fn status(rng: &mut StdRng, chain: &Keychain) -> StatusMsg {
    StatusMsg {
        view: view(rng),
        cert: certificate(rng, chain),
        sig: sig(rng, chain),
    }
}

fn vbb_msg(rng: &mut StdRng, chain: &Keychain) -> VbbMsg {
    let votes = |rng: &mut StdRng, chain: &Keychain| VoteMsg {
        ls: leader_signed(rng, chain),
        voter_sig: sig(rng, chain),
    };
    match rng.gen_range(0u32..6) {
        0 => VbbMsg::Propose {
            ls: leader_signed(rng, chain),
            proof: match rng.gen_range(0u32..3) {
                0 => Proof::Bootstrap,
                1 => Proof::Cert(certificate(rng, chain)),
                _ => Proof::Statuses(
                    (0..rng.gen_range(0usize..3))
                        .map(|_| status(rng, chain))
                        .collect(),
                ),
            },
        },
        1 => VbbMsg::Vote(votes(rng, chain)),
        2 => VbbMsg::VoteBundle(
            (0..rng.gen_range(0usize..4))
                .map(|_| votes(rng, chain))
                .collect(),
        ),
        3 => VbbMsg::Timeout(timeout_msg(rng, chain)),
        4 => VbbMsg::TimeoutBundle(
            (0..rng.gen_range(0usize..4))
                .map(|_| timeout_msg(rng, chain))
                .collect(),
        ),
        _ => VbbMsg::Status(status(rng, chain)),
    }
}

fn phase_vote(rng: &mut StdRng, chain: &Keychain) -> PhaseVote {
    PhaseVote {
        value: value(rng),
        view: view(rng),
        sig: sig(rng, chain),
    }
}

fn view_change(rng: &mut StdRng, chain: &Keychain) -> ViewChangeMsg {
    ViewChangeMsg {
        view: view(rng),
        prepared: rng.gen::<bool>().then(|| PreparedCert {
            value: value(rng),
            view: view(rng),
            prepares: (0..rng.gen_range(0usize..3))
                .map(|_| phase_vote(rng, chain))
                .collect(),
        }),
        sig: sig(rng, chain),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn brb2_messages(seed: u64) {
        let (mut rng, chain) = (StdRng::seed_from_u64(seed), chain());
        let vote = |rng: &mut StdRng| SignedVote { value: value(rng), sig: sig(rng, &chain) };
        round_trip(Brb2Msg::Propose(value(&mut rng)));
        round_trip(Brb2Msg::Vote(vote(&mut rng)));
        round_trip(Brb2Msg::Forward((0..3).map(|_| vote(&mut rng)).collect()));
    }

    #[test]
    fn bracha_messages(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        round_trip(BrachaMsg::Send(value(&mut rng)));
        round_trip(BrachaMsg::Echo(value(&mut rng)));
        round_trip(BrachaMsg::Ready(value(&mut rng)));
    }

    #[test]
    fn dolev_strong_and_ba_messages(seed: u64) {
        let (mut rng, chain) = (StdRng::seed_from_u64(seed), chain());
        round_trip(DsMsg(relay(&mut rng, &chain)));
        round_trip(BaMsg(relay(&mut rng, &chain)));
    }

    #[test]
    fn bb_2delta_messages(seed: u64) {
        let (mut rng, chain) = (StdRng::seed_from_u64(seed), chain());
        let vote = |rng: &mut StdRng| Fig10Vote { value: value(rng), sig: sig(rng, &chain) };
        round_trip(TwoDeltaMsg::Propose(Fig10Proposal {
            value: value(&mut rng),
            sig: sig(&mut rng, &chain),
        }));
        round_trip(TwoDeltaMsg::Vote(vote(&mut rng)));
        round_trip(TwoDeltaMsg::VoteBundle((0..2).map(|_| vote(&mut rng)).collect()));
        round_trip(TwoDeltaMsg::Ba(BaMsg(relay(&mut rng, &chain))));
    }

    #[test]
    fn bb_sync_start_messages(seed: u64) {
        let (mut rng, chain) = (StdRng::seed_from_u64(seed), chain());
        let prop = |rng: &mut StdRng| Fig6Proposal { value: value(rng), sig: sig(rng, &chain) };
        let vote = |rng: &mut StdRng| Fig6Vote {
            d: duration(rng),
            prop: prop(rng),
            sig: sig(rng, &chain),
        };
        round_trip(SyncStartMsg::Propose(prop(&mut rng)));
        round_trip(SyncStartMsg::Vote(vote(&mut rng)));
        round_trip(SyncStartMsg::VoteBundle((0..2).map(|_| vote(&mut rng)).collect()));
        round_trip(SyncStartMsg::Ba(BaMsg(relay(&mut rng, &chain))));
    }

    #[test]
    fn bb_unsync_messages(seed: u64) {
        let (mut rng, chain) = (StdRng::seed_from_u64(seed), chain());
        let prop = |rng: &mut StdRng| Fig9Proposal { value: value(rng), sig: sig(rng, &chain) };
        let vote = |rng: &mut StdRng| Fig9Vote {
            d: duration(rng),
            prop: prop(rng),
            sig: sig(rng, &chain),
        };
        round_trip(UnsyncMsg::Propose(prop(&mut rng)));
        round_trip(UnsyncMsg::Vote(vote(&mut rng)));
        round_trip(UnsyncMsg::VoteBundle((0..2).map(|_| vote(&mut rng)).collect()));
        round_trip(UnsyncMsg::Ba(BaMsg(relay(&mut rng, &chain))));
    }

    #[test]
    fn bb_third_messages(seed: u64) {
        let (mut rng, chain) = (StdRng::seed_from_u64(seed), chain());
        let prop = |rng: &mut StdRng| Fig5Proposal { value: value(rng), sig: sig(rng, &chain) };
        let vote = |rng: &mut StdRng| Fig5Vote { prop: prop(rng), sig: sig(rng, &chain) };
        round_trip(ThirdMsg::Propose(prop(&mut rng)));
        round_trip(ThirdMsg::Vote(vote(&mut rng)));
        round_trip(ThirdMsg::VoteBundle((0..2).map(|_| vote(&mut rng)).collect()));
        round_trip(ThirdMsg::Commit(Fig5Commit {
            value: value(&mut rng),
            sig: sig(&mut rng, &chain),
        }));
        round_trip(ThirdMsg::Ba(BaMsg(relay(&mut rng, &chain))));
    }

    #[test]
    fn bb_majority_messages(seed: u64) {
        let (mut rng, chain) = (StdRng::seed_from_u64(seed), chain());
        let prop = |rng: &mut StdRng| MajProposal {
            value: value(rng),
            epoch: rng.gen_range(0u64..9),
            sig: sig(rng, &chain),
        };
        let vote = |rng: &mut StdRng| MajVote {
            value: value(rng),
            epoch: rng.gen_range(0u64..9),
            sig: sig(rng, &chain),
        };
        round_trip(MajorityMsg::Propose(prop(&mut rng)));
        round_trip(MajorityMsg::ForwardProp(prop(&mut rng)));
        round_trip(MajorityMsg::Vote(vote(&mut rng)));
        round_trip(MajorityMsg::CommitCert((0..3).map(|_| vote(&mut rng)).collect()));
        round_trip(MajorityMsg::Done(vote(&mut rng)));
    }

    #[test]
    fn strawman_messages(seed: u64) {
        let (mut rng, chain) = (StdRng::seed_from_u64(seed), chain());
        round_trip(gcl_core::strawman::OneRoundMsg(value(&mut rng)));
        round_trip(EarlyMsg::Propose(value(&mut rng)));
        round_trip(EarlyMsg::Vote(EarlyVote {
            value: value(&mut rng),
            sig: sig(&mut rng, &chain),
        }));
    }

    #[test]
    fn fab_messages(seed: u64) {
        let (mut rng, chain) = (StdRng::seed_from_u64(seed), chain());
        let vc = |rng: &mut StdRng| FabViewChange {
            view: view(rng),
            voted: rng.gen::<bool>().then(|| value(rng)),
            sig: sig(rng, &chain),
        };
        round_trip(FabMsg::Propose(FabProposal {
            value: value(&mut rng),
            view: view(&mut rng),
            sig: sig(&mut rng, &chain),
            proof: (0..2).map(|_| vc(&mut rng)).collect(),
        }));
        round_trip(FabMsg::Vote(FabVote {
            value: value(&mut rng),
            view: view(&mut rng),
            sig: sig(&mut rng, &chain),
        }));
        round_trip(FabMsg::ViewChange(vc(&mut rng)));
    }

    #[test]
    fn pbft_messages(seed: u64) {
        let (mut rng, chain) = (StdRng::seed_from_u64(seed), chain());
        round_trip(PbftMsg::Propose {
            prop: PbftProposal {
                value: value(&mut rng),
                view: view(&mut rng),
                sig: sig(&mut rng, &chain),
            },
            proof: (0..2).map(|_| view_change(&mut rng, &chain)).collect(),
        });
        round_trip(PbftMsg::Prepare(phase_vote(&mut rng, &chain)));
        round_trip(PbftMsg::Commit(phase_vote(&mut rng, &chain)));
        round_trip(PbftMsg::CommitBundle(
            (0..3).map(|_| phase_vote(&mut rng, &chain)).collect(),
        ));
        round_trip(PbftMsg::ViewChange(view_change(&mut rng, &chain)));
        round_trip(PbftMsg::ViewChangeBundle(
            (0..2).map(|_| view_change(&mut rng, &chain)).collect(),
        ));
    }

    #[test]
    fn vbb_messages(seed: u64) {
        let (mut rng, chain) = (StdRng::seed_from_u64(seed), chain());
        for _ in 0..6 {
            round_trip(vbb_msg(&mut rng, &chain));
        }
    }

    #[test]
    fn smr_messages(seed: u64) {
        let (mut rng, chain) = (StdRng::seed_from_u64(seed), chain());
        let slot = SlotId::new(rng.gen_range(0u64..100));
        round_trip(SmrMsg::Slot {
            slot,
            inner: vbb_msg(&mut rng, &chain),
        });
        let cmds: Vec<Value> = (0..rng.gen_range(0usize..8))
            .map(|_| value(&mut rng))
            .collect();
        round_trip(SmrMsg::Payload {
            slot,
            batch: Batch::Commands(cmds),
        });
        round_trip(SmrMsg::Payload {
            slot,
            batch: Batch::Seal,
        });
        round_trip(SmrMsg::PayloadPull { slot });
        round_trip(SmrMsg::Submit {
            cmd: value(&mut rng),
        });
        round_trip(SmrMsg::Ack {
            cmd: value(&mut rng),
            slot,
        });
        round_trip(SmrMsg::Reject {
            cmd: value(&mut rng),
        });
    }

    #[test]
    fn smr_client_frames_reject_truncation_and_bad_tags(seed: u64) {
        // The ack path hands client-addressed frames to an untrusted
        // socket reader, so every strict prefix of a valid Ack/Reject
        // encoding must decode to an error (never panic, never a bogus
        // message), and an unknown leading tag must be rejected outright.
        let mut rng = StdRng::seed_from_u64(seed);
        let slot = SlotId::new(rng.gen_range(0u64..100));
        let frames = [
            SmrMsg::Ack {
                cmd: value(&mut rng),
                slot,
            }
            .to_wire(),
            SmrMsg::Reject {
                cmd: value(&mut rng),
            }
            .to_wire(),
        ];
        for full in &frames {
            for cut in 0..full.len() {
                prop_assert!(
                    SmrMsg::from_wire(&full[..cut]).is_err(),
                    "{cut}-byte prefix of a {}-byte frame decoded",
                    full.len()
                );
            }
            let mut bad = full.clone();
            bad[0] = rng.gen_range(7u8..=u8::MAX);
            prop_assert!(SmrMsg::from_wire(&bad).is_err(), "bad tag accepted");
            let mut trailing = full.clone();
            trailing.push(rng.gen());
            prop_assert!(
                SmrMsg::from_wire(&trailing).is_err(),
                "trailing garbage accepted"
            );
        }
    }

    #[test]
    fn flood_value_messages(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        round_trip(value(&mut rng));
    }

    #[test]
    fn crypto_vocabulary(seed: u64) {
        let (mut rng, chain) = (StdRng::seed_from_u64(seed), chain());
        round_trip(sig(&mut rng, &chain));
        round_trip(Digest::of(&rng.gen::<u64>()));
        let d = Digest::of(&rng.gen::<u64>());
        let mut qc = QuorumCert::new(d);
        for i in 0..rng.gen_range(0u32..5) {
            qc.add(chain.signer(PartyId::new(i)).sign(d));
        }
        let bytes = qc.to_wire();
        let back = QuorumCert::from_wire(&bytes).expect("decodes");
        prop_assert_eq!(&back, &qc);
        prop_assert!(
            back.verify(&chain.pki(), qc.len()),
            "decoded signatures still verify"
        );
        let (d0, d1) = (Digest::of(&0u64), Digest::of(&1u64));
        let s = chain.signer(PartyId::new(2));
        let ev = EquivocationEvidence::new(d0, s.sign(d0), d1, s.sign(d1)).expect("equivocation");
        let back = EquivocationEvidence::from_wire(&ev.to_wire()).expect("decodes");
        prop_assert!(back.verify(&chain.pki()), "decoded evidence still convicts");
        prop_assert_eq!(back, ev);
    }

    #[test]
    fn decoded_signatures_verify_not_just_compare(seed: u64) {
        // Byte-level fidelity: a signature that crosses the wire must
        // still pass PKI verification, which recomputes the MAC.
        let chain = chain();
        let mut rng = StdRng::seed_from_u64(seed);
        let payload = rng.gen::<u64>();
        let p = party(&mut rng);
        let s = chain.signer(p).sign(Digest::of(&payload));
        let back = Signature::from_wire(&s.to_wire()).expect("decodes");
        prop_assert!(chain.pki().verify(p, Digest::of(&payload), &back));
    }
}
