//! Crash-fault injection: crash parties after k handled events, for every
//! k up to well past the protocol's lifetime, and check safety (plus
//! liveness where the fault budget allows it).

use gcl::core::asynchrony::TwoRoundBrb;
use gcl::core::psync::VbbFiveFMinusOne;
use gcl::core::sync::TwoDeltaBb;
use gcl::crypto::Keychain;
use gcl::sim::{Crashing, FixedDelay, Simulation, TimingModel};
use gcl::types::{accept_all, Config, Duration, GlobalTime, PartyId, Value};

const DELTA: Duration = Duration::from_micros(100);
const BIG_DELTA: Duration = Duration::from_micros(1_000);

#[test]
fn brb2_crash_broadcaster_at_every_step() {
    // A crashing broadcaster may leave the system uncommitted (BRB's
    // termination is conditional) but never splits it.
    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    for crash_after in 0..6 {
        let chain = Keychain::generate(n, 300 + crash_after as u64);
        let honest_bcast = TwoRoundBrb::new(
            cfg,
            chain.signer(PartyId::new(0)),
            chain.pki(),
            PartyId::new(0),
            Some(Value::new(5)),
        );
        let o = Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(0), Crashing::new(honest_bcast, crash_after))
            .spawn_honest(|p| {
                TwoRoundBrb::new(cfg, chain.signer(p), chain.pki(), PartyId::new(0), None)
            })
            .run();
        o.assert_agreement();
        // If anyone committed, it is the broadcaster's value.
        for c in o.honest_commits() {
            assert_eq!(c.value, Value::new(5), "crash_after={crash_after}");
        }
    }
}

#[test]
fn brb2_crash_follower_never_blocks() {
    // One crashing follower is within the fault budget: everyone else
    // commits regardless of when it dies.
    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    for crash_after in 0..8 {
        let chain = Keychain::generate(n, 310 + crash_after as u64);
        let follower = TwoRoundBrb::new(
            cfg,
            chain.signer(PartyId::new(3)),
            chain.pki(),
            PartyId::new(0),
            None,
        );
        let o = Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(3), Crashing::new(follower, crash_after))
            .spawn_honest(|p| {
                TwoRoundBrb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(5)),
                )
            })
            .run();
        assert!(o.validity_holds(Value::new(5)), "crash_after={crash_after}");
    }
}

#[test]
fn vbb_crash_leader_at_every_step_view_change_recovers() {
    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    for crash_after in 0..10 {
        let chain = Keychain::generate(n, 320 + crash_after as u64);
        let leader = VbbFiveFMinusOne::new(
            cfg,
            chain.signer(PartyId::new(0)),
            chain.pki(),
            accept_all(),
            BIG_DELTA,
            Some(Value::new(5)),
        );
        let o = Simulation::build(cfg)
            .timing(TimingModel::PartialSynchrony {
                gst: GlobalTime::ZERO,
                big_delta: BIG_DELTA,
            })
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(0), Crashing::new(leader, crash_after))
            .spawn_honest(|p| {
                VbbFiveFMinusOne::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    accept_all(),
                    BIG_DELTA,
                    None,
                )
            })
            .run();
        o.assert_agreement();
        assert!(
            o.all_honest_committed(),
            "psync-BB termination after GST, crash_after={crash_after}"
        );
    }
}

#[test]
fn two_delta_bb_crash_follower_ba_still_terminates() {
    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    for crash_after in [0usize, 1, 2, 3, 5, 8] {
        let chain = Keychain::generate(n, 330 + crash_after as u64);
        let follower = TwoDeltaBb::new(
            cfg,
            chain.signer(PartyId::new(2)),
            chain.pki(),
            BIG_DELTA,
            PartyId::new(0),
            None,
        );
        let o = Simulation::build(cfg)
            .timing(TimingModel::Synchrony {
                delta: DELTA,
                big_delta: BIG_DELTA,
            })
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(2), Crashing::new(follower, crash_after))
            .spawn_honest(|p| {
                TwoDeltaBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(5)),
                )
            })
            .run();
        assert!(o.validity_holds(Value::new(5)), "crash_after={crash_after}");
        assert!(o.all_honest_terminated());
    }
}

#[test]
fn smr_socket_leader_cascade_under_load_stays_live_and_exactly_once() {
    // End-to-end fault injection on the wall: open-loop client load over
    // real Unix-domain sockets while the kill schedule crashes the
    // initial SMR leader and its first rotation successor (k = f = 2
    // successive leaders at n = 9). The surviving replicas must keep
    // acknowledging the stream, every acked command must land in the
    // probe replica's log exactly once, and the replica group must agree.
    use gcl_bench::smrload::{failover_spec, run_load, LoadOptions, ServeBackend};
    let row = run_load(
        &failover_spec(),
        ServeBackend::Socket,
        4,
        4,
        LoadOptions {
            requests: 16,
            gap: std::time::Duration::from_millis(1),
            deadline: std::time::Duration::from_secs(30),
        },
    );
    assert_eq!(row.crashes, 2, "two successive leaders must die");
    assert!(row.agreement, "survivors disagree after failover");
    assert_eq!(
        row.acked, row.requests,
        "liveness through failover: every request acked (retries {})",
        row.retries
    );
    assert!(row.exactly_once, "a command applied more than once");
    assert!(row.acked_applied, "an acked command never applied");
    assert!(
        row.committed >= row.acked,
        "probe log shorter than the acked workload"
    );
}
