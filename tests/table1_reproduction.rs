//! End-to-end check that the measurement harness reproduces Table 1:
//! every row's measured good-case latency sits at (or under) the paper's
//! tight bound, and the round-counted rows are *exact*.

use gcl_bench::{fig8_rows, majority_rows, table1_rows};

#[test]
fn every_row_of_table1_reproduces() {
    let rows = table1_rows();
    assert!(rows.len() >= 18, "all resilience bands covered");
    for row in &rows {
        assert!(
            row.matches(),
            "{} / {} (n={}, f={}): measured {}us exceeds bound {}us",
            row.problem,
            row.protocol,
            row.n,
            row.f,
            row.measured_us,
            row.bound_us
        );
    }
}

#[test]
fn round_counted_rows_are_exact() {
    for row in table1_rows() {
        let expected = match row.protocol {
            "2-round-BRB (Fig 1)" | "(5f-1)-psync-VBB (Fig 3)" => Some(2),
            "Bracha'87" | "PBFT-style (3 rounds)" => Some(3),
            _ => None,
        };
        if expected.is_some() {
            assert_eq!(row.rounds, expected, "protocol {}", row.protocol);
        }
    }
}

#[test]
fn sync_rows_hit_bounds_exactly_not_just_under() {
    // The sync-model measurements should *equal* the bound (the protocols
    // are tight, and the canonical schedule has no skew except the Fig 9
    // row which carries explicit 0.5δ skew slack).
    for row in table1_rows() {
        match row.protocol {
            "2delta-BB (Fig 10)" => assert_eq!(row.measured_us, 200, "2δ"),
            "(Delta+delta)-n/3-BB (Fig 5)" | "(Delta+delta)-BB (Fig 6)" => {
                assert_eq!(row.measured_us, 1_100, "Δ+δ")
            }
            "(Delta+1.5delta)-BB (Fig 9)" => {
                assert_eq!(
                    row.measured_us, 1_150,
                    "Δ+1.5δ — not an integer multiple of δ!"
                )
            }
            _ => {}
        }
    }
}

#[test]
fn fig8_series_matches_prediction_pointwise() {
    for row in fig8_rows(&[1, 2, 4, 5, 10, 20]) {
        assert_eq!(
            row.measured_us, row.predicted_us,
            "m = {}: measured vs (1 + 1/2m)Δ + 1.5δ",
            row.m
        );
    }
}

#[test]
fn fig8_communication_grows_linearly_in_m() {
    let rows = fig8_rows(&[5, 10, 20]);
    // O(mn²): doubling m should roughly double vote traffic; allow generous
    // slack for the non-vote messages.
    let m5 = rows[0].messages as f64;
    let m10 = rows[1].messages as f64;
    let m20 = rows[2].messages as f64;
    assert!(m10 / m5 > 1.5 && m10 / m5 < 2.5, "{m5} -> {m10}");
    assert!(m20 / m10 > 1.5 && m20 / m10 < 2.5, "{m10} -> {m20}");
}

#[test]
fn majority_latency_is_sandwiched_and_monotone() {
    let rows = majority_rows(&[(4, 2), (6, 4), (8, 6), (10, 8)]);
    let mut last = 0;
    for r in &rows {
        assert!(r.lower_bound_us <= r.measured_us, "n={}", r.n);
        assert!(r.measured_us <= r.upper_bound_us, "n={}", r.n);
        assert!(r.measured_us > last, "grows with n/(n−f)");
        last = r.measured_us;
    }
}
