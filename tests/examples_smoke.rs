//! Smoke coverage for the doc-facing examples.
//!
//! `cargo test` compiles every target in `examples/`, so a broken example
//! already fails the build; this suite additionally *runs* each example
//! binary to completion so the narrated output paths (the quickstart walk,
//! the Table 1 digest, the adversary gallery, the SMR KV demo) can't rot
//! while still compiling.
//!
//! The binaries are located relative to the test executable
//! (`target/<profile>/deps/<test>` → `target/<profile>/examples/<name>`),
//! which works for both debug and release profiles without invoking a
//! nested `cargo` (the outer `cargo test` holds the target-dir lock).

use std::path::PathBuf;
use std::process::Command;

fn example_path(name: &str) -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop(); // <test file>
    if dir.ends_with("deps") {
        dir.pop(); // deps -> profile dir
    }
    dir.join("examples").join(name)
}

fn run_example(name: &str) {
    let path = example_path(name);
    assert!(
        path.exists(),
        "example binary {} not built (expected at {}); `cargo test` builds \
         all examples, so this indicates a target misconfiguration",
        name,
        path.display()
    );
    let output = Command::new(&path)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", path.display()));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn quickstart_runs_to_completion() {
    run_example("quickstart");
}

#[test]
fn latency_categorization_runs_to_completion() {
    run_example("latency_categorization");
}

#[test]
fn adversary_gallery_runs_to_completion() {
    run_example("adversary_gallery");
}

#[test]
fn smr_kv_runs_to_completion() {
    run_example("smr_kv");
}

#[test]
fn scenario_sweep_runs_to_completion() {
    run_example("scenario_sweep");
}

#[test]
fn net_backend_runs_to_completion() {
    run_example("net_backend");
}
