//! Cross-crate integration: the SMR engine over the simulator, and the
//! registry's protocol families over the threaded wall-clock runtime
//! (registry-driven conformance — not hand-wired per-protocol glue).

use gcl::crypto::Keychain;
use gcl::net::NetBackend;
use gcl::sim::{AdversaryMix, FixedDelay, Simulation, TimingModel};
use gcl::smr::{Counter, KvStore, SlotEngine, SmrParams, StateMachine};
use gcl::types::{Config, Duration, GlobalTime, PartyId, Value};
use gcl_bench::conformance::wall_spec;
use parking_lot::Mutex;
use std::sync::Arc;

const DELTA: Duration = Duration::from_micros(100);

#[test]
fn smr_100_slots_replicate_identically() {
    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    let chain = Keychain::generate(n, 400);
    let workload: Vec<Value> = (1..=100).map(Value::new).collect();
    let machines: Vec<Arc<Mutex<Counter>>> = (0..n)
        .map(|_| Arc::new(Mutex::new(Counter::default())))
        .collect();
    let ms = machines.clone();
    let o = Simulation::build(cfg)
        .timing(TimingModel::PartialSynchrony {
            gst: GlobalTime::ZERO,
            big_delta: DELTA,
        })
        .oracle(FixedDelay::new(DELTA))
        .spawn_honest(move |p| {
            SlotEngine::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                DELTA,
                SmrParams {
                    batch: 1,
                    pipeline: 8,
                    ..SmrParams::default()
                },
                ms[p.as_usize()].clone(),
            )
            .with_workload(workload.clone())
        })
        .run();
    o.assert_agreement();
    assert!(o.all_honest_committed());
    for m in &machines {
        assert_eq!(m.lock().applied(), 100);
        assert_eq!(m.lock().total(), (1..=100).sum::<u64>());
    }
}

#[test]
fn smr_amortized_slot_latency_beats_pbft_three_rounds() {
    // With pipelining the 2-round engine sustains < 3 message delays per
    // decision — the practical payoff of the paper's psync result.
    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    let chain = Keychain::generate(n, 401);
    let slots = 50u64;
    let workload: Vec<Value> = (1..=slots).map(Value::new).collect();
    let o = Simulation::build(cfg)
        .timing(TimingModel::PartialSynchrony {
            gst: GlobalTime::ZERO,
            big_delta: DELTA,
        })
        .oracle(FixedDelay::new(DELTA))
        .spawn_honest(move |p| {
            SlotEngine::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                DELTA,
                SmrParams {
                    batch: 1,
                    pipeline: 8,
                    ..SmrParams::default()
                },
                Arc::new(Mutex::new(Counter::default())),
            )
            .with_workload(workload.clone())
        })
        .run();
    assert!(o.all_honest_committed());
    let per_slot = o.end_time().as_micros() / slots;
    assert!(
        per_slot < 3 * DELTA.as_micros(),
        "amortized {per_slot}us per slot should undercut 3 rounds"
    );
}

#[test]
fn smr_kv_under_byzantine_silence() {
    // n = 9, f = 2 silent replicas: the quorum path still commits.
    let n = 9;
    let cfg = Config::new(n, 2).unwrap();
    let chain = Keychain::generate(n, 402);
    let workload: Vec<Value> = (0..10u32).map(|i| KvStore::set(i, i * 10)).collect();
    let machines: Vec<Arc<Mutex<KvStore>>> = (0..n)
        .map(|_| Arc::new(Mutex::new(KvStore::default())))
        .collect();
    let ms = machines.clone();
    let mut b = Simulation::build(cfg)
        .timing(TimingModel::PartialSynchrony {
            gst: GlobalTime::ZERO,
            big_delta: DELTA,
        })
        .oracle(FixedDelay::new(DELTA));
    for i in [7u32, 8] {
        b = b.byzantine(PartyId::new(i), gcl::sim::Silent::new());
    }
    let o = b
        .spawn_honest(move |p| {
            SlotEngine::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                DELTA,
                SmrParams {
                    batch: 1,
                    pipeline: 4,
                    ..SmrParams::default()
                },
                ms[p.as_usize()].clone(),
            )
            .with_workload(workload.clone())
        })
        .run();
    o.assert_agreement();
    let digest = machines[0].lock().state_digest();
    for m in machines.iter().take(7).skip(1) {
        assert_eq!(m.lock().state_digest(), digest);
    }
    assert_eq!(machines[0].lock().get(3), Some(30));
}

#[test]
fn every_4_1_family_agrees_across_backends() {
    // Registry-driven conformance: every family whose resilience band
    // admits (4, 1) runs its wall-safe honest-broadcaster spec on BOTH
    // backends and must land on the same committed value. Coverage is a
    // loop over the registry, so a newly registered family is conformance-
    // tested over threads with zero new code here.
    let reg = gcl_bench::registry();
    let net = NetBackend::new();
    let mut covered = Vec::new();
    for key in reg.keys() {
        if !reg.family(key).unwrap().admission().admits(4, 1) {
            continue;
        }
        let spec = wall_spec(reg, key);
        assert_eq!((spec.n, spec.f), (4, 1), "{key}");
        let sim = reg.run(&spec).unwrap_or_else(|e| panic!("{key}: {e}"));
        let wall = reg
            .run_on(&spec, &net)
            .unwrap_or_else(|e| panic!("{key}: {e}"));
        assert!(wall.agreement_holds(), "{key}: net agreement violated");
        assert!(
            wall.all_honest_committed(),
            "{key}: some honest party never committed over threads"
        );
        assert_eq!(
            wall.committed_value(),
            sim.committed_value(),
            "{key}: backends disagree on the committed value"
        );
        covered.push(key);
    }
    assert!(
        covered.len() >= 9,
        "expected most families to admit (4, 1); covered only {covered:?}"
    );
}

#[test]
fn crash_adversary_net_run_upholds_agreement() {
    // Failure injection over real threads: party 3 runs the honest BRB
    // code for two handled events, then crashes mid-run. The three live
    // honest parties must still commit the broadcaster's input.
    let reg = gcl_bench::registry();
    let spec = wall_spec(reg, "brb2").with_adversary(AdversaryMix::CrashAt {
        party: PartyId::new(3),
        handled: 2,
    });
    let o = reg
        .run_on(&spec, &NetBackend::new())
        .expect("spec admitted");
    assert!(!o.is_honest(PartyId::new(3)), "slot 3 is the crash slot");
    assert!(o.agreement_holds());
    assert!(o.all_honest_committed(), "f = 1 crash is tolerated");
    assert_eq!(o.committed_value(), Some(spec.input));
}
