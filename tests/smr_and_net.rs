//! Cross-crate integration: the SMR engine over the simulator, and the
//! core protocols over the threaded wall-clock runtime.

use gcl::crypto::Keychain;
use gcl::net::NetRuntime;
use gcl::sim::{FixedDelay, Simulation, TimingModel};
use gcl::smr::{Counter, KvStore, SlotEngine, StateMachine};
use gcl::types::{Config, Duration, GlobalTime, PartyId, Value};
use parking_lot::Mutex;
use std::sync::Arc;

const DELTA: Duration = Duration::from_micros(100);

#[test]
fn smr_100_slots_replicate_identically() {
    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    let chain = Keychain::generate(n, 400);
    let workload: Vec<Value> = (1..=100).map(Value::new).collect();
    let machines: Vec<Arc<Mutex<Counter>>> = (0..n)
        .map(|_| Arc::new(Mutex::new(Counter::default())))
        .collect();
    let ms = machines.clone();
    let o = Simulation::build(cfg)
        .timing(TimingModel::PartialSynchrony {
            gst: GlobalTime::ZERO,
            big_delta: DELTA,
        })
        .oracle(FixedDelay::new(DELTA))
        .spawn_honest(move |p| {
            SlotEngine::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                DELTA,
                workload.clone(),
                8,
                ms[p.as_usize()].clone(),
            )
        })
        .run();
    o.assert_agreement();
    assert!(o.all_honest_committed());
    for m in &machines {
        assert_eq!(m.lock().applied(), 100);
        assert_eq!(m.lock().total(), (1..=100).sum::<u64>());
    }
}

#[test]
fn smr_amortized_slot_latency_beats_pbft_three_rounds() {
    // With pipelining the 2-round engine sustains < 3 message delays per
    // decision — the practical payoff of the paper's psync result.
    let n = 4;
    let cfg = Config::new(n, 1).unwrap();
    let chain = Keychain::generate(n, 401);
    let slots = 50u64;
    let workload: Vec<Value> = (1..=slots).map(Value::new).collect();
    let o = Simulation::build(cfg)
        .timing(TimingModel::PartialSynchrony {
            gst: GlobalTime::ZERO,
            big_delta: DELTA,
        })
        .oracle(FixedDelay::new(DELTA))
        .spawn_honest(move |p| {
            SlotEngine::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                DELTA,
                workload.clone(),
                8,
                Arc::new(Mutex::new(Counter::default())),
            )
        })
        .run();
    assert!(o.all_honest_committed());
    let per_slot = o.end_time().as_micros() / slots;
    assert!(
        per_slot < 3 * DELTA.as_micros(),
        "amortized {per_slot}us per slot should undercut 3 rounds"
    );
}

#[test]
fn smr_kv_under_byzantine_silence() {
    // n = 9, f = 2 silent replicas: the quorum path still commits.
    let n = 9;
    let cfg = Config::new(n, 2).unwrap();
    let chain = Keychain::generate(n, 402);
    let workload: Vec<Value> = (0..10u32).map(|i| KvStore::set(i, i * 10)).collect();
    let machines: Vec<Arc<Mutex<KvStore>>> = (0..n)
        .map(|_| Arc::new(Mutex::new(KvStore::default())))
        .collect();
    let ms = machines.clone();
    let mut b = Simulation::build(cfg)
        .timing(TimingModel::PartialSynchrony {
            gst: GlobalTime::ZERO,
            big_delta: DELTA,
        })
        .oracle(FixedDelay::new(DELTA));
    for i in [7u32, 8] {
        b = b.byzantine(PartyId::new(i), gcl::sim::Silent::new());
    }
    let o = b
        .spawn_honest(move |p| {
            SlotEngine::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                DELTA,
                workload.clone(),
                4,
                ms[p.as_usize()].clone(),
            )
        })
        .run();
    o.assert_agreement();
    let digest = machines[0].lock().state_digest();
    for m in machines.iter().take(7).skip(1) {
        assert_eq!(m.lock().state_digest(), digest);
    }
    assert_eq!(machines[0].lock().get(3), Some(30));
}

#[test]
fn threaded_runtime_matches_simulator_semantics() {
    use gcl::core::asynchrony::TwoRoundBrb;
    let cfg = Config::new(4, 1).unwrap();
    let chain = Keychain::generate(4, 403);
    let o = NetRuntime::new(cfg)
        .link_latency(std::time::Duration::from_millis(1))
        .run_for(std::time::Duration::from_millis(400), |p| {
            TwoRoundBrb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                PartyId::new(0),
                (p == PartyId::new(0)).then_some(Value::new(11)),
            )
        });
    assert!(o.agreement_holds());
    assert!(o.all_committed());
    assert_eq!(o.committed_value(), Some(Value::new(11)));
}
