//! Offline shim for the `crossbeam::channel` subset the workspace uses,
//! backed by `std::sync::mpsc`.
//!
//! The `gcl-net` runtime needs an unbounded MPSC channel with cloneable
//! senders and `recv_timeout` — exactly what `std::sync::mpsc` provides, so
//! the shim is a thin re-export with crossbeam's module layout and names.

/// Multi-producer channels with crossbeam's naming.
pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Creates an unbounded channel (crossbeam's `unbounded`).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(42).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(42));
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap())
            .join()
            .unwrap();
        tx.send(2).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
