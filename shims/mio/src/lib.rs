//! Offline shim for the `mio` 0.8 readiness-polling subset `gcl_net`'s async
//! backend uses: `Poll` / `Registry` / `Events` / `Event` / `Token` /
//! `Interest`, always level-triggered.
//!
//! Backend selection:
//! - **Linux:** `epoll(7)` via direct `extern "C"` declarations (the std
//!   runtime already links libc, so no new link-time dependency).
//! - **Other unix:** `poll(2)` over the registered fd set.
//!
//! Divergences from real mio, all conservative:
//! - registration is level-triggered only (no `Interest::PRIORITY`, no
//!   edge-triggered mode) — exactly what the readiness loop assumes;
//! - `poll` retries internally on `EINTR` with a recomputed remaining
//!   timeout instead of surfacing `ErrorKind::Interrupted` (callers that
//!   handle `Interrupted` for real-mio compatibility simply never see it);
//! - any type implementing `AsRawFd` is registerable (real mio wants its
//!   own wrapper types or `SourceFd`); call sites that register
//!   `UnixStream`s directly keep compiling against real mio's `net`
//!   feature.
//!
//! Swap-back: once a crate registry is reachable, replace the `path` entry
//! in `[workspace.dependencies]` with `mio = { version = "0.8", features =
//! ["os-poll", "net"] }` and keep call sites unchanged.

#![cfg(unix)]

use std::io;
use std::ops::BitOr;
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::{Duration, Instant};

/// Caller-chosen identifier attached to a registration and echoed back on
/// every readiness event for that fd.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Readiness interests: readable, writable, or both (`READABLE | WRITABLE`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    pub const READABLE: Interest = Interest(0b01);
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combines two interests (mio's const-friendly `|`).
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    pub const fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// Anything with a raw fd can be registered. Blanket-implemented so call
/// sites pass `&mut UnixStream` exactly as they would with real mio's `net`
/// types.
pub trait Source {
    fn raw_fd(&self) -> RawFd;
}

impl<T: AsRawFd> Source for T {
    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

/// A single readiness event: which token, and which directions are ready.
/// Error/hang-up conditions surface as *both* readable and writable so a
/// loop that only watches one direction still wakes up and observes the
/// failure from the subsequent `read`/`write` return value.
#[derive(Copy, Clone, Debug)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
}

impl Event {
    pub fn token(&self) -> Token {
        self.token
    }

    pub fn is_readable(&self) -> bool {
        self.readable
    }

    pub fn is_writable(&self) -> bool {
        self.writable
    }
}

/// Reusable buffer of events filled by [`Poll::poll`].
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// Converts an optional timeout into whole milliseconds for the syscall,
/// rounding *up* so a 100µs request does not busy-spin as 0ms, with -1 as
/// "block forever".
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            let rounded = if d.subsec_nanos() % 1_000_000 != 0 {
                ms + 1
            } else {
                ms
            };
            rounded.min(i32::MAX as u128) as i32
        }
    }
}

/// Remaining budget after `started`, for retrying an `EINTR`ed wait.
fn remaining(timeout: Option<Duration>, started: Instant) -> Option<Duration> {
    timeout.map(|d| d.saturating_sub(started.elapsed()))
}

#[cfg(target_os = "linux")]
mod sys {
    //! epoll backend. `epoll_event` is packed on x86-64 only, matching the
    //! kernel ABI (`__EPOLL_PACKED`).

    use super::{remaining, timeout_ms, Event, Events, Interest, Token};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::{Duration, Instant};

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Copy, Clone)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interests: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interests.is_readable() {
            m |= EPOLLIN;
        }
        if interests.is_writable() {
            m |= EPOLLOUT;
        }
        m
    }

    pub struct Selector {
        epfd: RawFd,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            // SAFETY: epoll_create1 takes no pointers; a negative return is
            // mapped to the errno-derived io::Error.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Selector { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, ev: Option<&mut EpollEvent>) -> io::Result<()> {
            let ptr = ev.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is either null (only for EPOLL_CTL_DEL, where the
            // kernel ignores it) or a live &mut EpollEvent for the duration of
            // the call.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, ptr) }).map(|_| ())
        }

        pub fn register(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interests),
                data: token.0 as u64,
            };
            self.ctl(EPOLL_CTL_ADD, fd, Some(&mut ev))
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interests),
                data: token.0 as u64,
            };
            self.ctl(EPOLL_CTL_MOD, fd, Some(&mut ev))
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn select(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let started = Instant::now();
            let mut budget = timeout;
            loop {
                let cap = events.capacity;
                let mut buf = vec![EpollEvent { events: 0, data: 0 }; cap];
                // SAFETY: `buf` holds `cap` writable EpollEvents and outlives
                // the call; the kernel writes at most `cap` entries.
                let n = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), cap as i32, timeout_ms(budget))
                };
                match cvt(n) {
                    Ok(n) => {
                        for raw in buf.iter().take(n as usize) {
                            let bits = raw.events;
                            let hup = bits & (EPOLLERR | EPOLLHUP) != 0;
                            events.inner.push(Event {
                                token: Token(raw.data as usize),
                                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0 || hup,
                                writable: bits & EPOLLOUT != 0 || hup,
                            });
                        }
                        return Ok(());
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                        budget = remaining(timeout, started);
                        if budget == Some(Duration::ZERO) {
                            return Ok(());
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            // SAFETY: closing the epoll fd we created; errors at drop are
            // unreportable and ignored, as in real mio.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! poll(2) fallback for non-Linux unix: the selector keeps the
    //! registered fd set in a mutex and rebuilds the pollfd array per wait.

    use super::{remaining, timeout_ms, Event, Events, Interest, Token};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Copy, Clone)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    pub struct Selector {
        registered: Mutex<Vec<(RawFd, Token, Interest)>>,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            Ok(Selector {
                registered: Mutex::new(Vec::new()),
            })
        }

        pub fn register(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            if reg.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            reg.push((fd, token, interests));
            Ok(())
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            match reg.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(slot) => {
                    *slot = (fd, token, interests);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            let before = reg.len();
            reg.retain(|(f, _, _)| *f != fd);
            if reg.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn select(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let started = Instant::now();
            let mut budget = timeout;
            loop {
                let snapshot: Vec<(RawFd, Token, Interest)> =
                    self.registered.lock().unwrap().clone();
                let mut fds: Vec<PollFd> = snapshot
                    .iter()
                    .map(|(fd, _, interest)| {
                        let mut ev = 0i16;
                        if interest.is_readable() {
                            ev |= POLLIN;
                        }
                        if interest.is_writable() {
                            ev |= POLLOUT;
                        }
                        PollFd {
                            fd: *fd,
                            events: ev,
                            revents: 0,
                        }
                    })
                    .collect();
                // SAFETY: `fds` holds `len` writable PollFds and outlives the
                // call; the kernel only writes the `revents` fields.
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(budget)) };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        budget = remaining(timeout, started);
                        if budget == Some(Duration::ZERO) {
                            return Ok(());
                        }
                        continue;
                    }
                    return Err(e);
                }
                for (pfd, (_, token, _)) in fds.iter().zip(snapshot.iter()) {
                    if pfd.revents == 0 {
                        continue;
                    }
                    let hup = pfd.revents & (POLLERR | POLLHUP) != 0;
                    events.inner.push(Event {
                        token: *token,
                        readable: pfd.revents & POLLIN != 0 || hup,
                        writable: pfd.revents & POLLOUT != 0 || hup,
                    });
                    if events.inner.len() == events.capacity {
                        break;
                    }
                }
                return Ok(());
            }
        }
    }
}

/// Handle for registering event sources; borrowed from a [`Poll`].
pub struct Registry {
    selector: sys::Selector,
}

impl Registry {
    /// Starts watching `source` for `interests` under `token`
    /// (level-triggered).
    pub fn register<S: Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.selector.register(source.raw_fd(), token, interests)
    }

    /// Replaces the token/interests of an already-registered source.
    pub fn reregister<S: Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.selector.reregister(source.raw_fd(), token, interests)
    }

    /// Stops watching `source`.
    pub fn deregister<S: Source + ?Sized>(&self, source: &mut S) -> io::Result<()> {
        self.selector.deregister(source.raw_fd())
    }
}

/// The readiness selector: one per event-loop thread.
pub struct Poll {
    registry: Registry,
}

impl Poll {
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry {
                selector: sys::Selector::new()?,
            },
        })
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered source is ready or `timeout`
    /// elapses (`None` blocks indefinitely), filling `events`.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        self.registry.selector.select(events, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;
    use std::time::{Duration, Instant};

    fn nonblocking_pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn interest_combines() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
        assert_eq!(Interest::READABLE.add(Interest::WRITABLE), both);
    }

    #[test]
    fn timeout_rounds_up_not_down() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(7))), 7);
    }

    #[test]
    fn readable_after_peer_writes() {
        let (mut a, mut b) = nonblocking_pair();
        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&mut a, Token(7), Interest::READABLE)
            .unwrap();

        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "no data yet, must time out empty");

        b.write_all(b"x").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        let ev = events.iter().next().expect("readable event");
        assert_eq!(ev.token(), Token(7));
        assert!(ev.is_readable());

        let mut buf = [0u8; 4];
        assert_eq!(a.read(&mut buf).unwrap(), 1);
    }

    #[test]
    fn writable_reported_for_fresh_socket() {
        let (mut a, _b) = nonblocking_pair();
        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&mut a, Token(3), Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        let ev = events.iter().next().expect("writable event");
        assert_eq!(ev.token(), Token(3));
        assert!(ev.is_writable());
    }

    #[test]
    fn reregister_switches_token_and_interest() {
        let (mut a, mut b) = nonblocking_pair();
        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&mut a, Token(1), Interest::WRITABLE)
            .unwrap();
        poll.registry()
            .reregister(&mut a, Token(2), Interest::READABLE)
            .unwrap();

        b.write_all(b"y").unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        let ev = events.iter().next().expect("event after reregister");
        assert_eq!(ev.token(), Token(2));
        assert!(ev.is_readable());
    }

    #[test]
    fn deregistered_fd_stays_silent() {
        let (mut a, mut b) = nonblocking_pair();
        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&mut a, Token(1), Interest::READABLE)
            .unwrap();
        poll.registry().deregister(&mut a).unwrap();
        b.write_all(b"z").unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn hangup_wakes_a_read_watcher() {
        let (mut a, b) = nonblocking_pair();
        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&mut a, Token(9), Interest::READABLE)
            .unwrap();
        drop(b);
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        let ev = events.iter().next().expect("hangup event");
        assert!(ev.is_readable(), "peer close must surface as readable");
        let mut buf = [0u8; 4];
        assert_eq!(a.read(&mut buf).unwrap(), 0, "EOF after hangup");
    }

    #[test]
    fn timeout_is_honored() {
        let (mut a, _b) = nonblocking_pair();
        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&mut a, Token(0), Interest::READABLE)
            .unwrap();
        let started = Instant::now();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        let waited = started.elapsed();
        assert!(events.is_empty());
        assert!(
            waited >= Duration::from_millis(25),
            "returned after {waited:?}"
        );
        assert!(waited < Duration::from_secs(5), "did not block forever");
    }

    #[test]
    fn two_sources_two_tokens() {
        let (mut a1, mut b1) = nonblocking_pair();
        let (mut a2, mut b2) = nonblocking_pair();
        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&mut a1, Token(11), Interest::READABLE)
            .unwrap();
        poll.registry()
            .register(&mut a2, Token(22), Interest::READABLE)
            .unwrap();
        b1.write_all(b"1").unwrap();
        b2.write_all(b"2").unwrap();
        let mut events = Events::with_capacity(8);
        let mut seen = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while seen.len() < 2 && Instant::now() < deadline {
            poll.poll(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            for ev in &events {
                if !seen.contains(&ev.token()) {
                    seen.push(ev.token());
                }
            }
        }
        seen.sort();
        assert_eq!(seen, vec![Token(11), Token(22)]);
    }
}
