//! Offline shim for the `serde` derive macros.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! markers on plain-old-data types — no (de)serializer is ever invoked, and
//! nothing bounds on the serde traits. This shim therefore provides the two
//! derive macros as no-ops, which keeps every `#[derive(...)]` site
//! compiling unchanged while the build is offline. Swap this for the real
//! `serde = { version = "1", features = ["derive"] }` in the workspace
//! manifest when a registry is reachable.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
