//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the subset the workspace uses: [`Mutex`] and [`RwLock`] whose
//! lock methods return guards directly (no poisoning `Result`). Poisoning is
//! mapped to recovering the inner guard — a panic while holding the lock in
//! one test thread must not cascade into unrelated assertions, matching
//! parking_lot's semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive, API-compatible with `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock, API-compatible with `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_contended() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_blocks_only_when_held() {
        let m = Mutex::new(3);
        {
            let _g = m.lock();
            assert!(m.try_lock().is_none());
        }
        assert_eq!(m.try_lock().map(|g| *g), Some(3));
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }
}
