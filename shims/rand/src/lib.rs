//! Offline shim for the `rand` API subset the workspace uses.
//!
//! Provides [`Rng::gen_range`] / [`Rng::gen`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is xoshiro256** seeded via SplitMix64
//! — fully deterministic per seed, which is exactly what the simulator's
//! reproducible schedules require. It makes no cryptographic claims (neither
//! does the simulator's use of it).

/// Uniform sampling from a range, the subset of `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range using `rng`.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

/// The raw-word generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(self)
    }

    /// Samples a value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`] (subset of rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as usize
    }
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform draw from `[0, bound)` by Lemire-style widening multiply
/// (bias is < 2^-64 per draw, irrelevant for simulation schedules).
fn bounded(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_ranges!(u64, u32, u16, u8, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = r.gen_range(5u32..8);
            assert!((5..8).contains(&w));
        }
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut r = StdRng::seed_from_u64(4);
        let _ = r.gen_range(0u64..=u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(5);
        let _ = r.gen_range(3u64..3);
    }

    #[test]
    fn covers_small_range_uniformly_ish() {
        let mut r = StdRng::seed_from_u64(6);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[r.gen_range(0usize..4)] += 1;
        }
        for c in counts {
            assert!(c > 700, "counts: {counts:?}");
        }
    }
}
