//! Offline shim for the `proptest` API subset the workspace uses.
//!
//! Supports the `proptest!` macro with `name: Type` (arbitrary) and
//! `name in strategy` (range) parameters, `prop_assert!`/`prop_assert_eq!`,
//! and `ProptestConfig::with_cases`. Differences from real proptest, chosen
//! deliberately for CI determinism (and documented in the failure message):
//!
//! * **No shrinking.** A failing case reports the base seed and case index;
//!   rerunning with `PROPTEST_SEED=<seed>` replays the identical inputs.
//! * **Fully deterministic by default.** The base seed is a fixed constant
//!   unless `PROPTEST_SEED` overrides it, so CI failures always replay.
//! * **Case count** comes from `PROPTEST_CASES` when set, else from the
//!   test's `ProptestConfig`, else 64.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-suite configuration (subset of proptest's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values for one test case.
pub type TestRng = StdRng;

/// Something that can produce values for a `name in strategy` parameter.
pub trait Strategy {
    /// The type of value produced.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize);

/// Types with a default generation strategy (`name: Type` parameters).
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix edge values in: real proptest biases toward extremes,
                // and the boundary cases catch off-by-one bugs.
                match rng.gen_range(0u32..8) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => 1,
                    _ => rng.gen::<u64>() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.gen_range(0usize..256);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

/// Strategy wrapper for [`Arbitrary`] types, as returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T` (subset of proptest's `any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Fixed default base seed: runs are identical everywhere unless overridden.
const DEFAULT_BASE_SEED: u64 = 0x90c1_90c1;

fn base_seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
        Err(_) => DEFAULT_BASE_SEED,
    }
}

fn case_count(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_CASES must be a u32, got {s:?}")),
        Err(_) => config.cases,
    }
}

/// Runs `body` for each random case. Called by the `proptest!` expansion;
/// not part of the public proptest API.
pub fn run_cases<F: FnMut(&mut TestRng)>(config: ProptestConfig, name: &str, mut body: F) {
    let base = base_seed();
    let cases = case_count(&config);
    for case in 0..cases {
        // SplitMix-style derivation keeps per-case streams independent.
        let case_seed = base
            .wrapping_add(u64::from(case).wrapping_mul(0x9e3779b97f4a7c15))
            .wrapping_mul(0xbf58476d1ce4e5b9)
            | 1;
        let mut rng = TestRng::seed_from_u64(case_seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(&mut rng);
        }));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest shim: `{name}` failed at case {case}/{cases} \
                 (base seed {base}). Replay deterministically with \
                 PROPTEST_SEED={base} PROPTEST_CASES={cases}; no shrinking \
                 is performed."
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// Defines property tests (subset of proptest's `proptest!` grammar).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    (@tests ($cfg:expr) $(#[test] fn $name:ident ($($params:tt)*) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                $crate::run_cases($cfg, stringify!($name), |__proptest_rng| {
                    $crate::proptest!(@bind __proptest_rng, $($params)*);
                    $body
                });
            }
        )*
    };
    (@bind $rng:ident $(,)?) => {};
    (@bind $rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
    };
    (@bind $rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary($rng);
    };
    (@bind $rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary($rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn typed_and_strategy_params(seed: u64, flag: bool, small in 1u32..5, cap in 0usize..=3) {
            let _ = (seed, flag);
            prop_assert!((1..5).contains(&small));
            prop_assert!(cap <= 3);
        }

        #[test]
        fn vec_u8_arbitrary(data: Vec<u8>) {
            prop_assert!(data.len() < 256);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x: u64) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x.wrapping_add(1), x);
        }
    }

    #[test]
    fn deterministic_inputs_per_run() {
        let mut a = Vec::new();
        super::run_cases(ProptestConfig::with_cases(8), "det", |rng| {
            a.push(u64::arbitrary(rng));
        });
        let mut b = Vec::new();
        super::run_cases(ProptestConfig::with_cases(8), "det", |rng| {
            b.push(u64::arbitrary(rng));
        });
        assert_eq!(a, b);
        assert!(a.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }
}
