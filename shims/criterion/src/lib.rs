//! Offline shim for the `criterion` API subset the workspace's benches use.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! `criterion_group!` and `criterion_main!`. Instead of criterion's
//! statistical machinery it times `sample_size` runs of each closure and
//! reports min/median wall-clock time per iteration — enough to compare
//! protocol scenarios and to keep `cargo bench` runnable offline.
//!
//! # JSON summaries
//!
//! Setting `GCL_BENCH_JSON=<path>` (or calling
//! [`Criterion::with_json_summary`]) makes every measured benchmark also
//! land in a machine-readable summary file:
//!
//! ```json
//! {"schema": "gcl-bench/criterion/v1",
//!  "rows": [{"bench": "...", "mean_ns": 1, "median_ns": 1,
//!            "min_ns": 1, "samples": 10}]}
//! ```
//!
//! This is the same shape as the repo-root `BENCH_sim.json` trajectory
//! (schema + rows), so all bench targets feed one format. The file is
//! rewritten after each benchmark; rows merge **by bench name** with
//! whatever the file already holds, so a whole `cargo bench` run — five
//! separate bench binaries — accumulates into one summary, and re-runs
//! update rows in place. Delete the file to start a fresh set.

use gcl_bench::json::{self, JVal, RowsDoc};
use std::fmt::Display;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One accumulated summary row.
#[derive(Debug, Clone)]
struct SummaryRow {
    bench: String,
    mean_ns: u64,
    median_ns: u64,
    min_ns: u64,
    samples: u64,
}

impl SummaryRow {
    fn fields(&self) -> Vec<(&'static str, JVal)> {
        vec![
            ("bench", JVal::Str(self.bench.clone())),
            ("mean_ns", JVal::U64(self.mean_ns)),
            ("median_ns", JVal::U64(self.median_ns)),
            ("min_ns", JVal::U64(self.min_ns)),
            ("samples", JVal::U64(self.samples)),
        ]
    }
}

/// Process-wide accumulated JSON rows, keyed by summary path so that
/// concurrent writers (e.g. parallel tests) with distinct paths don't mix.
static JSON_ROWS: Mutex<Vec<(PathBuf, SummaryRow)>> = Mutex::new(Vec::new());

/// The summary schema — the same schema-plus-rows family as every other
/// trajectory document; rendering goes through [`RowsDoc`].
const SUMMARY_SCHEMA: &str = "gcl-bench/criterion/v1";

/// Re-reads the rows an earlier bench binary (same `cargo bench`
/// invocation, separate process) left on disk, so sibling targets
/// accumulate into one summary instead of clobbering it.
fn rows_on_disk(path: &Path) -> Vec<SummaryRow> {
    let Ok(existing) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = json::parse(&existing) else {
        return Vec::new();
    };
    if doc.field_str("schema") != Some(SUMMARY_SCHEMA) {
        return Vec::new();
    }
    let mut rows = Vec::new();
    for row in doc
        .field("rows")
        .and_then(json::Value::as_array)
        .unwrap_or(&[])
    {
        if let (Some(bench), Some(mean), Some(median), Some(min), Some(samples)) = (
            row.field_str("bench"),
            row.field_u64("mean_ns"),
            row.field_u64("median_ns"),
            row.field_u64("min_ns"),
            row.field_u64("samples"),
        ) {
            rows.push(SummaryRow {
                bench: bench.to_string(),
                mean_ns: mean,
                median_ns: median,
                min_ns: min,
                samples,
            });
        }
    }
    rows
}

fn write_json_summary(path: &Path, bench: &str, samples: &[Duration]) {
    let n = samples.len() as u64;
    let total: u128 = samples.iter().map(Duration::as_nanos).sum();
    let mut sorted: Vec<u64> = samples
        .iter()
        .map(|d| d.as_nanos().min(u128::from(u64::MAX)) as u64)
        .collect();
    sorted.sort_unstable();
    let row = SummaryRow {
        bench: bench.to_string(),
        mean_ns: (total / u128::from(n.max(1))).min(u128::from(u64::MAX)) as u64,
        median_ns: sorted[sorted.len() / 2],
        min_ns: sorted[0],
        samples: n,
    };
    let mut all = JSON_ROWS.lock().expect("summary lock");
    if !all.iter().any(|(p, _)| p == path) {
        for prior in rows_on_disk(path) {
            all.push((path.to_path_buf(), prior));
        }
    }
    // Re-measuring a bench updates its row in place.
    all.retain(|(p, r)| !(p == path && r.bench == bench));
    all.push((path.to_path_buf(), row));
    let mut doc = RowsDoc::new(SUMMARY_SCHEMA);
    for (_, row) in all.iter().filter(|(p, _)| p == path) {
        doc.row(row.fields());
    }
    if let Err(e) = std::fs::write(path, doc.render()) {
        eprintln!("criterion shim: cannot write {}: {e}", path.display());
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: Some(param.to_string()),
        }
    }

    /// An id carrying only a parameter rendering (criterion's
    /// `from_parameter`), for groups whose name already names the function.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
            param: None,
        }
    }

    fn render(&self) -> String {
        match &self.param {
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts both
/// string names and explicit ids (mirrors criterion's `IntoBenchmarkId`).
pub trait IntoBenchmarkId {
    /// Converts `self` into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
            param: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self,
            param: None,
        }
    }
}

/// Passed to bench closures; runs and times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks (subset of criterion's group).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().render());
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().render());
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (report-flushing no-op in the shim).
    pub fn finish(self) {}
}

/// The bench harness entry point (subset of criterion's `Criterion`).
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    filter: Option<String>,
    json_summary: Option<PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` narrows which benches run, like criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            default_sample_size: 10,
            filter,
            json_summary: std::env::var_os("GCL_BENCH_JSON").map(PathBuf::from),
        }
    }
}

impl Criterion {
    /// Applies CLI configuration (no-op beyond `Default` in the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Also writes every measured benchmark into the JSON summary at
    /// `path` (shim extension; see the crate docs for the format). The
    /// `GCL_BENCH_JSON` env var sets this for `Criterion::default()`.
    pub fn with_json_summary(mut self, path: impl Into<PathBuf>) -> Self {
        self.json_summary = Some(path.into());
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into_benchmark_id().render();
        let sample_size = self.default_sample_size;
        self.run_one(&full, sample_size, |b| f(b));
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{name}: no samples recorded");
            return;
        }
        if let Some(path) = &self.json_summary {
            write_json_summary(path, name, &samples);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        println!(
            "{name}: median {:>12?}  min {:>12?}  ({} samples)",
            median,
            min,
            samples.len()
        );
    }
}

/// Bundles bench functions under one group function (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion {
            default_sample_size: 10,
            filter: None,
            json_summary: None,
        };
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("f", |b| b.iter(|| runs += 1));
            g.bench_with_input(BenchmarkId::new("with_input", 7), &2u64, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(runs, 3);
    }

    #[test]
    fn filter_skips_unmatched() {
        let mut c = Criterion {
            default_sample_size: 4,
            filter: Some("only_this".into()),
            json_summary: None,
        };
        let mut runs = 0u32;
        c.bench_function("something_else", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
        c.bench_function("only_this_one", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 4);
    }

    #[test]
    fn json_summary_accumulates_valid_rows() {
        let path = std::env::temp_dir().join(format!(
            "criterion-shim-summary-{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut c = Criterion {
            default_sample_size: 3,
            filter: None,
            json_summary: None,
        }
        .with_json_summary(&path);
        c.bench_function("first", |b| b.iter(|| black_box(1 + 1)));
        c.bench_function("second", |b| b.iter(|| black_box(2 + 2)));
        let text = std::fs::read_to_string(&path).expect("summary written");
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("\"schema\": \"gcl-bench/criterion/v1\""));
        assert!(text.contains("\"bench\": \"first\""));
        assert!(text.contains("\"bench\": \"second\""));
        assert!(text.contains("\"mean_ns\": "));
        assert!(text.contains("\"median_ns\": "));
        // Rough well-formedness: balanced braces/brackets, one row per line.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn json_summary_merges_with_prior_process_rows() {
        let path =
            std::env::temp_dir().join(format!("criterion-shim-merge-{}.json", std::process::id()));
        // A summary left behind by a "previous bench binary".
        std::fs::write(
            &path,
            "{\n  \"schema\": \"gcl-bench/criterion/v1\",\n  \"rows\": [\n    \
             {\"bench\": \"older/target\", \"mean_ns\": 5, \"median_ns\": 5, \
             \"min_ns\": 5, \"samples\": 1}\n  ]\n}\n",
        )
        .unwrap();
        let mut c = Criterion {
            default_sample_size: 2,
            filter: None,
            json_summary: None,
        }
        .with_json_summary(&path);
        c.bench_function("newer/target", |b| b.iter(|| black_box(1 + 1)));
        let text = std::fs::read_to_string(&path).expect("summary written");
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("\"bench\": \"older/target\""), "{text}");
        assert!(text.contains("\"bench\": \"newer/target\""), "{text}");
    }

    #[test]
    fn json_summary_escapes_hostile_names() {
        let path =
            std::env::temp_dir().join(format!("criterion-shim-escape-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut c = Criterion {
            default_sample_size: 1,
            filter: None,
            json_summary: None,
        }
        .with_json_summary(&path);
        c.bench_function("quote\"and\\slash", |b| b.iter(|| black_box(0)));
        let text = std::fs::read_to_string(&path).expect("summary written");
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("quote\\\"and\\\\slash"), "{text}");
        // The document must still have balanced quoting: an even number of
        // unescaped double quotes.
        let unescaped = text.replace("\\\\", "").replace("\\\"", "");
        assert_eq!(unescaped.matches('"').count() % 2, 0, "{text}");
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("a", "p").render(), "a/p");
        assert_eq!("bare".into_benchmark_id().render(), "bare");
    }
}
