//! Offline shim for the `criterion` API subset the workspace's benches use.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! `criterion_group!` and `criterion_main!`. Instead of criterion's
//! statistical machinery it times `sample_size` runs of each closure and
//! reports min/median wall-clock time per iteration — enough to compare
//! protocol scenarios and to keep `cargo bench` runnable offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: Some(param.to_string()),
        }
    }

    /// An id carrying only a parameter rendering (criterion's
    /// `from_parameter`), for groups whose name already names the function.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
            param: None,
        }
    }

    fn render(&self) -> String {
        match &self.param {
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts both
/// string names and explicit ids (mirrors criterion's `IntoBenchmarkId`).
pub trait IntoBenchmarkId {
    /// Converts `self` into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
            param: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self,
            param: None,
        }
    }
}

/// Passed to bench closures; runs and times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks (subset of criterion's group).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().render());
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().render());
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (report-flushing no-op in the shim).
    pub fn finish(self) {}
}

/// The bench harness entry point (subset of criterion's `Criterion`).
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` narrows which benches run, like criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            default_sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Applies CLI configuration (no-op beyond `Default` in the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into_benchmark_id().render();
        let sample_size = self.default_sample_size;
        self.run_one(&full, sample_size, |b| f(b));
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{name}: no samples recorded");
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        println!(
            "{name}: median {:>12?}  min {:>12?}  ({} samples)",
            median,
            min,
            samples.len()
        );
    }
}

/// Bundles bench functions under one group function (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion {
            default_sample_size: 10,
            filter: None,
        };
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("f", |b| b.iter(|| runs += 1));
            g.bench_with_input(BenchmarkId::new("with_input", 7), &2u64, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(runs, 3);
    }

    #[test]
    fn filter_skips_unmatched() {
        let mut c = Criterion {
            default_sample_size: 4,
            filter: Some("only_this".into()),
        };
        let mut runs = 0u32;
        c.bench_function("something_else", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
        c.bench_function("only_this_one", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("a", "p").render(), "a/p");
        assert_eq!("bare".into_benchmark_id().render(), "bare");
    }
}
