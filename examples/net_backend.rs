//! Four backends, one scenario layer: run registry families on the
//! deterministic simulator, on the thread-per-party wall-clock runtime,
//! on the socket runtime (where every message crosses a Unix socket as
//! bytes), AND on the async runtime (where all n parties multiplex over
//! a readiness loop and a fixed worker pool), and compare what each
//! reports.
//!
//! ```text
//! cargo run --release --example net_backend
//! ```

use gcl::net::{AsyncBackend, NetBackend, SocketBackend};
use gcl_bench::conformance::wall_spec;

fn main() {
    let reg = gcl_bench::registry();
    let net = NetBackend::new();
    let socket = SocketBackend::new();
    let asynch = AsyncBackend::new();

    println!("== one spec, four execution targets ==\n");
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>14} {:>13}  committed",
        "family", "(n,f)", "sim lat us", "net lat us", "socket lat us", "async lat us"
    );
    for key in [
        "brb2",
        "vbb5f1",
        "bb_2delta",
        "dolev_strong",
        "flood",
        "smr",
    ] {
        let spec = wall_spec(reg, key);
        let sim = reg.run(&spec).expect("spec admitted");
        let wall = reg.run_on(&spec, &net).expect("spec admitted");
        let wired = reg.run_on(&spec, &socket).expect("spec admitted");
        let pooled = reg.run_on(&spec, &asynch).expect("spec admitted");
        for (backend, o) in [("net", &wall), ("socket", &wired), ("async", &pooled)] {
            assert!(o.agreement_holds(), "{key}: {backend} agreement");
            assert_eq!(
                o.committed_value(),
                sim.committed_value(),
                "{key}: {backend} must land on the simulator's value"
            );
        }
        let lat = |o: &gcl::sim::Outcome| {
            o.good_case_latency()
                .map(|d| d.as_micros().to_string())
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<14} {:>6} {:>12} {:>12} {:>14} {:>13}  {:?}",
            key,
            format!("({},{})", spec.n, spec.f),
            lat(&sim),
            lat(&wall),
            lat(&wired),
            lat(&pooled),
            wall.committed_value().expect("good case commits")
        );
    }

    println!(
        "\nSame protocols, same specs, same committed values. The simulator's\n\
         latencies are exact multiples of the injected bounds (delta = 2000 us\n\
         here); the net column is a wall-clock measurement over OS threads —\n\
         link latency plus scheduler noise, spawn overhead and channel hops;\n\
         the socket column additionally pays the wire codec and two socket\n\
         crossings per message, which is the point: its commits prove every\n\
         message type survives serialization; the async column pays the same\n\
         wire costs but schedules every party as a state machine on a fixed\n\
         worker pool — O(workers) threads however large n grows. Trust the\n\
         simulator for the paper's delta-exact tables; trust the wall\n\
         backends as evidence the protocols survive real concurrency — and,\n\
         over sockets, real bytes."
    );
}
