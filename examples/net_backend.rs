//! Two backends, one scenario layer: run registry families on the
//! deterministic simulator AND on the thread-per-party wall-clock runtime,
//! and compare what each reports.
//!
//! ```text
//! cargo run --release --example net_backend
//! ```

use gcl::net::NetBackend;
use gcl_bench::conformance::wall_spec;

fn main() {
    let reg = gcl_bench::registry();
    let net = NetBackend::new();

    println!("== one spec, two execution targets ==\n");
    println!(
        "{:<14} {:>6} {:>12} {:>12}  committed",
        "family", "(n,f)", "sim lat us", "net lat us"
    );
    for key in [
        "brb2",
        "vbb5f1",
        "bb_2delta",
        "dolev_strong",
        "flood",
        "smr",
    ] {
        let spec = wall_spec(reg, key);
        let sim = reg.run(&spec).expect("spec admitted");
        let wall = reg.run_on(&spec, &net).expect("spec admitted");
        assert!(wall.agreement_holds(), "{key}: net agreement");
        assert_eq!(
            wall.committed_value(),
            sim.committed_value(),
            "{key}: backends must land on the same value"
        );
        let lat = |o: &gcl::sim::Outcome| {
            o.good_case_latency()
                .map(|d| d.as_micros().to_string())
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<14} {:>6} {:>12} {:>12}  {:?}",
            key,
            format!("({},{})", spec.n, spec.f),
            lat(&sim),
            lat(&wall),
            wall.committed_value().expect("good case commits")
        );
    }

    println!(
        "\nSame protocols, same specs, same committed values. The simulator's\n\
         latencies are exact multiples of the injected bounds (delta = 2000 us\n\
         here); the net column is a wall-clock measurement over OS threads —\n\
         link latency plus scheduler noise, spawn overhead and channel hops.\n\
         Trust the simulator for the paper's delta-exact tables; trust the net\n\
         backend as evidence the protocols survive real concurrency."
    );
}
