//! Replay the paper's lower-bound executions: strawman protocols that
//! overclaim latency get split; the paper's protocols survive the same
//! adversaries.
//!
//! ```sh
//! cargo run --example adversary_gallery
//! ```

use gcl::core::lower_bounds::{theorem10, theorem4, theorem7, theorem9};

fn report(name: &str, claim: &str, violated: bool, expected_violation: bool) {
    let status = match (violated, expected_violation) {
        (true, true) => "SPLIT — exactly as the theorem predicts",
        (false, false) => "safe — the tight protocol absorbs the attack",
        (true, false) => "UNEXPECTED VIOLATION (bug!)",
        (false, true) => "unexpected survival (schedule too weak?)",
    };
    println!("{name:<46} {claim:<34} {status}");
}

fn main() {
    println!("Adversary gallery — the lower bounds, executed\n");

    let o = theorem4::split_one_round_brb(4, 1, 1);
    report(
        "Thm 4: equivocating broadcaster",
        "vs 1-round BRB strawman",
        !o.agreement_holds(),
        true,
    );
    let o = theorem4::split_two_round_brb(4, 1, 1);
    report(
        "Thm 4: equivocating broadcaster",
        "vs 2-round BRB (Fig 1)",
        !o.agreement_holds(),
        false,
    );

    let o = theorem7::split_fab_at_5f_minus_2();
    report(
        "Thm 7 / Fig 4: commit-then-steer view change",
        "vs FaB-style 2-round @ n=5f-2",
        !o.agreement_holds(),
        true,
    );

    let o = theorem9::split_early_commit();
    report(
        "Thm 9: equivocate + double-vote",
        "vs early-commit BB strawman",
        !o.agreement_holds(),
        true,
    );
    let o = theorem9::same_adversary_against_fig5();
    report(
        "Thm 9: equivocate + double-vote",
        "vs (Δ+δ)-n/3-BB (Fig 5)",
        !o.agreement_holds(),
        false,
    );

    let o = theorem10::adversarial_execution();
    report(
        "Thm 10 / Fig 7: skewed-start equivocation",
        "vs (Δ+1.5δ)-BB (Fig 9)",
        !o.agreement_holds(),
        false,
    );

    let o = theorem10::tightness_execution(5, 2);
    println!(
        "\nThm 10 tightness: (Δ+1.5δ)-BB committed at {} with skew 0.5δ — the bound is achieved.",
        o.good_case_latency().expect("commits")
    );
}
