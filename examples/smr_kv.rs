//! A replicated key-value store on the 2-round SMR engine — the paper's
//! motivating application (Section 1: BFT SMR from broadcast).
//!
//! ```sh
//! cargo run --example smr_kv
//! ```

use gcl::crypto::Keychain;
use gcl::sim::{FixedDelay, Simulation, TimingModel};
use gcl::smr::{KvStore, SlotEngine, SmrParams, StateMachine};
use gcl::types::{Config, ConfigError, Duration, GlobalTime, Value};
use parking_lot::Mutex;
use std::sync::Arc;

fn main() -> Result<(), ConfigError> {
    let n = 4;
    let cfg = Config::new(n, 1)?;
    let chain = Keychain::generate(n, 77);
    let delta = Duration::from_micros(100);

    // Client workload: 20 writes across 5 keys.
    let workload: Vec<Value> = (0..20u32).map(|i| KvStore::set(i % 5, 1000 + i)).collect();
    let slots = workload.len();

    let machines: Vec<Arc<Mutex<KvStore>>> = (0..n)
        .map(|_| Arc::new(Mutex::new(KvStore::default())))
        .collect();
    let ms = machines.clone();
    let wl = workload.clone();

    let outcome = Simulation::build(cfg)
        .timing(TimingModel::PartialSynchrony {
            gst: GlobalTime::ZERO,
            big_delta: delta,
        })
        .oracle(FixedDelay::new(delta))
        .spawn_honest(move |p| {
            SlotEngine::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                delta,
                SmrParams {
                    batch: 4,
                    pipeline: 4,
                    ..SmrParams::default()
                },
                ms[p.as_usize()].clone(),
            )
            .with_workload(wl.clone())
        })
        .run();

    assert!(outcome.agreement_holds(), "replica digests diverged");
    println!(
        "replicated {} commands across {n} replicas in {} simulated time",
        slots,
        outcome.end_time(),
    );
    println!(
        "steady-state decision latency: ~2 message delays per slot (the paper's 2-round good case)"
    );

    let kv = machines[0].lock();
    println!(
        "\nfinal store (replica 0, digest {:#x}):",
        kv.state_digest()
    );
    for key in 0..5u32 {
        println!("  key {key} -> {:?}", kv.get(key));
    }
    for m in &machines[1..] {
        assert_eq!(m.lock().state_digest(), kv.state_digest());
    }
    println!("\nall {n} replicas hold identical state.");
    Ok(())
}
