//! Quickstart: run the paper's headline protocols in their good case and
//! print the latencies next to the tight bounds.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gcl::core::asynchrony::TwoRoundBrb;
use gcl::core::psync::{PbftPsyncVbb, VbbFiveFMinusOne};
use gcl::core::sync::TwoDeltaBb;
use gcl::crypto::Keychain;
use gcl::sim::{FixedDelay, Simulation, TimingModel};
use gcl::types::{accept_all, Config, ConfigError, Duration, GlobalTime, PartyId, Value};

fn main() -> Result<(), ConfigError> {
    let delta = Duration::from_micros(100); // actual network delay δ
    let big_delta = Duration::from_micros(1_000); // conservative bound Δ
    let cfg = Config::new(4, 1)?;
    let chain = Keychain::generate(4, 1);
    let input = Value::new(42);

    println!("n = 4, f = 1, honest broadcaster, δ = {delta}, Δ = {big_delta}\n");

    // Asynchrony: 2 rounds, tight (Theorem 1).
    let o = Simulation::build(cfg)
        .timing(TimingModel::Asynchrony)
        .oracle(FixedDelay::new(delta))
        .spawn_honest(|p| {
            TwoRoundBrb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                PartyId::new(0),
                (p == PartyId::new(0)).then_some(input),
            )
        })
        .run();
    println!(
        "async   2-round-BRB (Fig 1):    {} rounds, {} (bound: 2 rounds)",
        o.good_case_rounds().expect("commits"),
        o.good_case_latency().expect("commits"),
    );

    // Partial synchrony: 2 rounds at n = 5f − 1 = 4 (Theorem 2) — beating
    // PBFT's 3 rounds on the same configuration.
    let psync = TimingModel::PartialSynchrony {
        gst: GlobalTime::ZERO,
        big_delta: delta,
    };
    let o = Simulation::build(cfg)
        .timing(psync)
        .oracle(FixedDelay::new(delta))
        .spawn_honest(|p| {
            VbbFiveFMinusOne::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                accept_all(),
                delta,
                (p == PartyId::new(0)).then_some(input),
            )
        })
        .run();
    println!(
        "psync   (5f-1)-VBB (Fig 3):     {} rounds, {} (bound: 2 rounds — PBFT is not optimal!)",
        o.good_case_rounds().expect("commits"),
        o.good_case_latency().expect("commits"),
    );
    let o = Simulation::build(cfg)
        .timing(psync)
        .oracle(FixedDelay::new(delta))
        .spawn_honest(|p| {
            PbftPsyncVbb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                accept_all(),
                delta,
                (p == PartyId::new(0)).then_some(input),
            )
        })
        .run();
    println!(
        "psync   PBFT baseline:          {} rounds, {}",
        o.good_case_rounds().expect("commits"),
        o.good_case_latency().expect("commits"),
    );

    // Synchrony, f < n/3: 2δ — latency tracks the real network, not Δ.
    let o = Simulation::build(cfg)
        .timing(TimingModel::Synchrony { delta, big_delta })
        .oracle(FixedDelay::new(delta))
        .spawn_honest(|p| {
            TwoDeltaBb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                big_delta,
                PartyId::new(0),
                (p == PartyId::new(0)).then_some(input),
            )
        })
        .run();
    println!(
        "sync    2δ-BB (Fig 10):         {} (bound: 2δ = {})",
        o.good_case_latency().expect("commits"),
        delta * 2,
    );

    println!("\nAll committed value {input} — validity, agreement and the tight bounds hold.");
    Ok(())
}
