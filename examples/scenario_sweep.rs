//! A miniature of the `sweep` binary: fan a declarative grid of scenario
//! cells — every registered family × admitted shapes × adversary mixes —
//! across worker threads and audit safety/validity, in ~30 lines.
//!
//! ```sh
//! cargo run --release --example scenario_sweep
//! ```

use gcl::core::registry;
use gcl::sim::{AdversaryMix, ScenarioSpec, Sweep};

fn main() {
    let reg = registry();

    // The grid: each family's canonical shape, honest and with a seeded
    // random silent subset of size f, three seeds each.
    let mut cells: Vec<ScenarioSpec> = Vec::new();
    for key in reg.keys() {
        let base = reg.spec(key).expect("registered");
        for mix in [
            AdversaryMix::None,
            AdversaryMix::RandomSilent { count: u32::MAX },
        ] {
            for _ in 0..3 {
                cells.push(base.clone().with_adversary(mix));
            }
        }
    }

    let report = Sweep::new(&reg).cells(cells).threads(4).seed(7).run();
    println!(
        "{} cells on {} threads: commit rate {:.0}%, p50 latency {:?}us, {} safety / {} validity violations",
        report.cells.len(),
        report.threads,
        report.commit_rate() * 100.0,
        report.latency_percentile(0.5),
        report.safety_violations().count(),
        report.validity_violations().count(),
    );
    for cell in &report.cells {
        assert!(cell.agreement && cell.validity, "{} violated", cell.label);
    }
    println!("every cell safe — the categorization holds across the grid");
}
