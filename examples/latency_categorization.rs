//! The complete categorization, live: sweeps every resilience regime of
//! Table 1 and prints measured good-case latency against the tight bound.
//!
//! ```sh
//! cargo run --release --example latency_categorization
//! ```

use gcl_bench_is_not_a_dependency::*;

// The bench crate owns the scenario harness; examples re-derive a compact
// version here so the example is self-contained on the public API.
mod gcl_bench_is_not_a_dependency {
    pub use gcl::core::dishonest::BbMajority;
    pub use gcl::core::psync::VbbFiveFMinusOne;
    pub use gcl::core::sync::{SyncStartBb, ThirdBb, TwoDeltaBb, UnsyncBb};
    pub use gcl::crypto::Keychain;
    pub use gcl::sim::{FixedDelay, Outcome, Silent, Simulation, TimingModel};
    pub use gcl::types::{accept_all, Config, Duration, GlobalTime, PartyId, SkewSchedule, Value};
}

const DELTA: Duration = Duration::from_micros(100);
const BIG_DELTA: Duration = Duration::from_micros(1_000);

fn sync() -> TimingModel {
    TimingModel::Synchrony {
        delta: DELTA,
        big_delta: BIG_DELTA,
    }
}

fn show(label: &str, bound: &str, o: &Outcome) {
    println!(
        "{label:<52} bound {bound:<16} measured {}",
        o.good_case_latency().expect("good case commits"),
    );
}

fn main() {
    let input = Value::new(7);
    println!("Good-case latency categorization (δ = {DELTA}, Δ = {BIG_DELTA})\n");

    {
        // 0 < f < n/3 — 2δ.
        let cfg = Config::new(4, 1).expect("config");
        let chain = Keychain::generate(4, 2);
        let o = Simulation::build(cfg)
            .timing(sync())
            .oracle(FixedDelay::new(DELTA))
            .spawn_honest(|p| {
                TwoDeltaBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(input),
                )
            })
            .run();
        show("0 < f < n/3          2δ-BB, n=4 f=1", "2δ = 200us", &o);
    }
    {
        // f = n/3 — Δ + δ.
        let cfg = Config::new(3, 1).expect("config");
        let chain = Keychain::generate(3, 3);
        let o = Simulation::build(cfg)
            .timing(sync())
            .oracle(FixedDelay::new(DELTA))
            .spawn_honest(|p| {
                ThirdBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(input),
                )
            })
            .run();
        show(
            "f = n/3              (Δ+δ)-n/3-BB, n=3 f=1",
            "Δ+δ = 1100us",
            &o,
        );
    }
    {
        // n/3 < f < n/2, synchronized start — Δ + δ.
        let cfg = Config::new(5, 2).expect("config");
        let chain = Keychain::generate(5, 4);
        let o = Simulation::build(cfg)
            .timing(sync())
            .oracle(FixedDelay::new(DELTA))
            .spawn_honest(|p| {
                SyncStartBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(input),
                )
            })
            .run();
        show("n/3 < f < n/2 sync   (Δ+δ)-BB, n=5 f=2", "Δ+δ = 1100us", &o);
    }
    {
        // n/3 < f < n/2, unsynchronized start — Δ + 1.5δ (!).
        let cfg = Config::new(5, 2).expect("config");
        let chain = Keychain::generate(5, 5);
        let o = Simulation::build(cfg)
            .timing(sync())
            .oracle(FixedDelay::new(DELTA))
            .skew(SkewSchedule::with_late_parties(
                5,
                &[(PartyId::new(1), DELTA.halved())],
            ))
            .spawn_honest(|p| {
                UnsyncBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    10,
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(input),
                )
            })
            .run();
        show(
            "n/3 < f < n/2 unsync (Δ+1.5δ)-BB, n=5 f=2",
            "Δ+1.5δ = 1150us",
            &o,
        );
    }
    {
        // n/2 ≤ f — Θ(n/(n−f))Δ with silent Byzantine parties.
        for (n, f) in [(4usize, 2usize), (10, 8)] {
            let cfg = Config::new(n, f).expect("config");
            let chain = Keychain::generate(n, 6);
            let mut b = Simulation::build(cfg)
                .timing(TimingModel::lockstep(BIG_DELTA))
                .oracle(FixedDelay::new(BIG_DELTA));
            for i in (n - f) as u32..n as u32 {
                b = b.byzantine(PartyId::new(i), Silent::new());
            }
            let o = b
                .spawn_honest(|p| {
                    BbMajority::new(
                        cfg,
                        chain.signer(p),
                        chain.pki(),
                        BIG_DELTA,
                        PartyId::new(0),
                        (p == PartyId::new(0)).then_some(input),
                    )
                })
                .run();
            let k = n / (n - f);
            show(
                &format!("n/2 ≤ f              TrustCast BB, n={n} f={f}"),
                &format!("Θ({k}·Δ)"),
                &o,
            );
        }
    }
    {
        // Partial synchrony comparison at n = 4 (the Liskov question).
        let cfg = Config::new(4, 1).expect("config");
        let chain = Keychain::generate(4, 7);
        let o = Simulation::build(cfg)
            .timing(TimingModel::PartialSynchrony {
                gst: GlobalTime::ZERO,
                big_delta: DELTA,
            })
            .oracle(FixedDelay::new(DELTA))
            .spawn_honest(|p| {
                VbbFiveFMinusOne::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    accept_all(),
                    DELTA,
                    (p == PartyId::new(0)).then_some(input),
                )
            })
            .run();
        println!(
            "\npsync n=4 f=1: (5f−1)-VBB commits in {} rounds — PBFT's 3 rounds are NOT optimal.",
            o.good_case_rounds().expect("commits")
        );
    }
}
