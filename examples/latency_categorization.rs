//! The complete categorization, live: sweeps every resilience regime of
//! Table 1 and prints measured good-case latency against the tight bound —
//! every measurement a registry [`gcl::sim::ScenarioSpec`], no per-protocol
//! wiring.
//!
//! ```sh
//! cargo run --release --example latency_categorization
//! ```
//!
//! Adding a protocol variant to this output takes **one** registration in
//! its `gcl_core` module (`register_fn(key, description, band, validity,
//! canonical_spec, runner)`); the catalog printed below, the tables, the
//! sweep grid and the property suites all pick it up from the registry.

use gcl::core::registry;
use gcl::sim::{Outcome, ScenarioRegistry};

fn show(label: &str, bound: &str, o: &Outcome) {
    println!(
        "{label:<52} bound {bound:<16} measured {}",
        o.good_case_latency().expect("good case commits"),
    );
}

fn run_row(reg: &ScenarioRegistry, family: &str, n: usize, f: usize) -> Outcome {
    let spec = reg.spec(family).expect("registered").with_shape(n, f);
    reg.run(&spec).expect("shape in band")
}

fn main() {
    let reg = registry();

    println!("Registered protocol families ({}):", reg.len());
    for key in reg.keys() {
        let fam = reg.family(key).expect("listed");
        println!(
            "  {key:<16} [{:<14}] {}",
            fam.admission().describe(),
            fam.describe()
        );
    }

    println!("\nGood-case latency categorization (δ = 100us, Δ = 1000us)\n");

    // (family, n, f, band label, bound label) — presentation only; the
    // execution comes entirely from the registry spec.
    let rows = [
        (
            "bb_2delta",
            4,
            1,
            "0 < f < n/3          2δ-BB, n=4 f=1",
            "2δ = 200us",
        ),
        (
            "bb_third",
            3,
            1,
            "f = n/3              (Δ+δ)-n/3-BB, n=3 f=1",
            "Δ+δ = 1100us",
        ),
        (
            "bb_sync_start",
            5,
            2,
            "n/3 < f < n/2 sync   (Δ+δ)-BB, n=5 f=2",
            "Δ+δ = 1100us",
        ),
        (
            "bb_unsync",
            5,
            2,
            "n/3 < f < n/2 unsync (Δ+1.5δ)-BB, n=5 f=2",
            "Δ+1.5δ = 1150us",
        ),
    ];
    for (family, n, f, label, bound) in rows {
        show(label, bound, &run_row(&reg, family, n, f));
    }

    // n/2 ≤ f — Θ(n/(n−f))Δ; the canonical bb_majority spec carries its
    // all-f-silent adversary mix.
    for (n, f) in [(4usize, 2usize), (10, 8)] {
        let o = run_row(&reg, "bb_majority", n, f);
        let k = n / (n - f);
        show(
            &format!("n/2 ≤ f              TrustCast BB, n={n} f={f}"),
            &format!("Θ({k}·Δ)"),
            &o,
        );
    }

    // Partial synchrony comparison at n = 4 (the Liskov question).
    let o = run_row(&reg, "vbb5f1", 4, 1);
    println!(
        "\npsync n=4 f=1: (5f−1)-VBB commits in {} rounds — PBFT's 3 rounds are NOT optimal.",
        o.good_case_rounds().expect("commits")
    );
}
