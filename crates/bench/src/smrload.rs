//! Open-loop SMR load generation: client request streams through the
//! serving backends, rendered as the repo-root `BENCH_smr.json`.
//!
//! The other trajectories measure the substrate (`BENCH_sim.json`:
//! simulator throughput) and the runtimes (`BENCH_net.json`: per-family
//! wall latency). This one measures the *service*: a [`SlotEngine`]
//! replica group in serving mode — no pre-baked workload, no known log
//! length — fed by an **open-loop** client that submits requests on a
//! fixed schedule regardless of how fast the replicas keep up. Open loop
//! is the honest methodology for a replicated service: a closed-loop
//! client (next request only after the last commit) hides queueing delay
//! exactly when the system saturates, which is when latency matters.
//!
//! Each measured configuration is a `(batch, pipeline)` point: requests
//! fan out to every replica's mempool as [`SmrMsg::Submit`] frames over a
//! real Unix-domain socket, leaders drain them into batched proposals,
//! and every replica applies committed batches in slot order. When the
//! stream stops the log quiesces (trailing no-op slots), so the run
//! terminates without anyone knowing the workload length in advance.
//!
//! Since the serving layer grew client acknowledgements, per-request
//! latency is **acknowledged end-to-end time**: first submit to first
//! [`SmrMsg::Ack`] received back over the client channel — not
//! follower-observed applies. The client retries unacknowledged requests
//! on a budget, so the measured tail includes retransmission cost, and a
//! **failover row** crashes the first two rotation leaders mid-run
//! ([`AdversaryMix::LeaderCascade`]) to measure commits/sec and ack
//! latency *through* leader failover. Every row carries an exactly-once
//! audit (no command applied twice, every acked command applied) and the
//! probed replica's mempool counters.
//!
//! v3 adds the **backend** column: the same open-loop client drives either
//! serving backend that exposes the `execute_with_client` path
//! ([`ServeBackend`]) — the thread-per-party socket engine, or the
//! readiness-loop async engine, which multiplexes all replicas over a
//! fixed worker pool and thereby serves the `(24, 5)` scale rows the
//! socket engine's thread budget made impractical. The scale rows run
//! with leader rotation intact, including a failover row that kills the
//! initial leader mid-stream.
//!
//! Wall numbers are machine-dependent, so the CI gate ([`check_doc`])
//! validates *structure*, not speed: right schema, at least three
//! distinct `(batch, pipeline)` configurations, a failover row, and
//! every row committed with agreement, a measured p50, and a passing
//! exactly-once audit. Regeneration:
//!
//! ```text
//! cargo run --release -p gcl_bench --bin smr_load -- --out BENCH_smr.json
//! ```

use crate::conformance::{wall_spec, WALL_DELTA};
use crate::json::{parse, JVal, RowsDoc, Value as JsonValue};
use crate::registry;
use gcl_crypto::Keychain;
use gcl_net::{AsyncBackend, ClientHandle, SocketBackend};
use gcl_sim::{AdversaryMix, AdversaryRole, MsgCodec, ScenarioSpec};
use gcl_smr::{MempoolStats, SlotEngine, SmrMsg, SmrParams, StateMachine};
use gcl_types::{Decode, Encode, PartyId, SlotId, Value};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// The `schema` field of every `BENCH_smr.json` document. v3: every row
/// names its serving backend, and the async backend's `(24, 5)` scale
/// rows (with a leader-crash failover variant) join the grid.
pub const SMR_SCHEMA: &str = "gcl-bench/smr-load/v3";

/// A serving backend the open-loop client can drive: any wall backend
/// exposing the `execute_with_client` path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeBackend {
    /// Thread-per-party socket engine ([`SocketBackend`]).
    Socket,
    /// Readiness-loop worker-pool engine ([`AsyncBackend`]).
    Async,
}

impl ServeBackend {
    /// The backend's stable name — the row's `backend` column.
    pub const fn name(self) -> &'static str {
        match self {
            ServeBackend::Socket => "socket",
            ServeBackend::Async => "async",
        }
    }
}

/// A shared `(command, apply-instant)` side log one replica's
/// [`RecordingMachine`] appends to.
pub type ApplyLog = Arc<Mutex<Vec<(Value, Instant)>>>;

/// The measured `(batch, pipeline)` grid: serial baseline, the moderate
/// default, and a deep/wide point that exercises coalescing under burst.
pub const LOAD_CONFIGS: [(usize, usize); 3] = [(1, 4), (4, 4), (32, 8)];

/// Retries the client may spend per unacknowledged request.
const RETRY_BUDGET: u32 = 3;
/// How long a request stays unacknowledged before the client retries it.
const RETRY_AFTER: Duration = Duration::from_millis(300);
/// How long the client keeps waiting after the last acknowledgement made
/// progress before it gives up on the stragglers.
const ACK_PATIENCE: Duration = Duration::from_secs(3);

/// Knobs of one load run (how much traffic, how fast, how long to wait).
#[derive(Debug, Clone, Copy)]
pub struct LoadOptions {
    /// Requests the open-loop client submits.
    pub requests: u64,
    /// Inter-arrival gap of the open-loop schedule.
    pub gap: Duration,
    /// Per-run wall deadline (quiesce exits long before this).
    pub deadline: Duration,
}

impl LoadOptions {
    /// CI smoke shape: enough traffic to span several slots per config
    /// without dominating the job's wall time.
    pub fn quick() -> Self {
        LoadOptions {
            requests: 48,
            gap: Duration::from_millis(1),
            deadline: Duration::from_secs(20),
        }
    }

    /// The committed-baseline shape.
    pub fn full() -> Self {
        LoadOptions {
            requests: 300,
            gap: Duration::from_millis(1),
            deadline: Duration::from_secs(30),
        }
    }
}

/// One `(backend, batch, pipeline)` configuration's measured row.
#[derive(Debug, Clone)]
pub struct SmrLoadRow {
    /// Serving backend that produced the row (`"socket"`, `"async"`).
    pub backend: &'static str,
    /// Proposal batch cap.
    pub batch: usize,
    /// Pipeline depth.
    pub pipeline: usize,
    /// Parties.
    pub n: usize,
    /// Fault budget.
    pub f: usize,
    /// Leaders crashed by the run's kill schedule.
    pub crashes: u64,
    /// Requests the client submitted.
    pub requests: u64,
    /// Requests acknowledged back to the client.
    pub acked: u64,
    /// Retransmissions the client spent.
    pub retries: u64,
    /// Back-pressure rejects the client observed.
    pub client_rejects: u64,
    /// Requests observed applied at the probe replica.
    pub committed: u64,
    /// Whether replica log digests agreed at termination.
    pub agreement: bool,
    /// Exactly-once audit: no command applied twice at the probe replica.
    pub exactly_once: bool,
    /// Liveness audit: every acknowledged command is in the probe log.
    pub acked_applied: bool,
    /// First-submit-to-last-apply wall time, µs.
    pub elapsed_us: u64,
    /// Sustained commit rate over `elapsed_us`.
    pub commits_per_sec: f64,
    /// Median submit-to-ack latency, µs.
    pub p50_us: Option<u64>,
    /// 95th-percentile submit-to-ack latency, µs.
    pub p95_us: Option<u64>,
    /// 99th-percentile submit-to-ack latency, µs.
    pub p99_us: Option<u64>,
    /// The probe replica's mempool counters at the end of the run.
    pub mempool: MempoolStats,
}

/// A [`Counter`]-equivalent state machine that also timestamps every
/// applied command into a shared side log, so the harness can join
/// applies against the client's submit schedule.
///
/// The digest is command-content only (no timestamps), so replicas still
/// agree byte-for-byte with each other.
///
/// [`Counter`]: gcl_smr::Counter
#[derive(Debug)]
pub struct RecordingMachine {
    total: u64,
    applied: u64,
    log: ApplyLog,
}

impl RecordingMachine {
    /// A fresh machine appending `(command, apply-instant)` to `log`.
    pub fn new(log: ApplyLog) -> Self {
        RecordingMachine {
            total: 0,
            applied: 0,
            log,
        }
    }
}

impl StateMachine for RecordingMachine {
    fn apply(&mut self, _slot: SlotId, value: Value) {
        self.total = self.total.wrapping_add(value.as_u64());
        self.applied += 1;
        self.log.lock().push((value, Instant::now()));
    }

    fn state_digest(&self) -> u64 {
        self.total ^ (self.applied << 48)
    }
}

/// The wall-safe serving-mode spec the load runs use: the `smr` family's
/// conformance bounds (2 ms links, ≥ 20 ms Δ so view timers cannot fire
/// spuriously between back-to-back requests).
pub fn load_spec() -> ScenarioSpec {
    wall_spec(registry(), "smr")
}

/// The failover scenario: `(9, 2)` — the smallest shape whose fault
/// budget admits two dead leaders under `n ≥ 5f − 1` — with a
/// [`AdversaryMix::LeaderCascade`] killing the view-1 leader early in the
/// stream and its first rotation successor shortly after it takes over.
pub fn failover_spec() -> ScenarioSpec {
    load_spec()
        .with_shape(9, 2)
        .with_adversary(AdversaryMix::LeaderCascade {
            count: 2,
            first_handled: 40,
            stagger: 120,
        })
}

/// The async scale spec: the load spec reshaped to `(24, 5)` — the
/// smallest shape saturating `n = 5f − 1` at `f = 5`, and well past the
/// thread-per-party backends' comfortable range. Δ' is raised so view
/// timers (leader rotation stays armed throughout) cannot fire spuriously
/// while one worker drains 24 replicas' traffic.
pub fn scale_spec() -> ScenarioSpec {
    let spec = load_spec().with_shape(24, 5);
    let big = gcl_types::Duration::from_micros(spec.big_delta.as_micros().max(200_000));
    let delta = spec.delta;
    spec.with_bounds(delta, big)
}

/// The async failover scenario: the `(24, 5)` scale shape with a
/// [`AdversaryMix::LeaderCascade`] killing the initial leader mid-stream,
/// so the row measures serving *through* a rotation on the readiness
/// loop.
pub fn scale_failover_spec() -> ScenarioSpec {
    scale_spec().with_adversary(AdversaryMix::LeaderCascade {
        count: 1,
        first_handled: 40,
        stagger: 120,
    })
}

fn percentile(sorted_us: &[u64], p: f64) -> Option<u64> {
    if sorted_us.is_empty() {
        return None;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    Some(sorted_us[idx.min(sorted_us.len() - 1)])
}

/// What the open-loop client measured: per-request first-submit and
/// first-ack instants, plus retry/reject counters.
#[derive(Debug, Default)]
struct ClientReport {
    sends: Vec<Instant>,
    acks: Vec<Option<Instant>>,
    retries: u64,
    rejects: u64,
}

/// Decodes one client-addressed delivery, recording a fresh ack. Returns
/// whether the delivery acknowledged a previously-unacked request.
fn note_delivery(bytes: &[u8], report: &mut ClientReport) -> bool {
    match SmrMsg::from_wire(bytes) {
        Ok(SmrMsg::Ack { cmd, .. }) => {
            let Some(idx) = cmd.as_u64().checked_sub(1) else {
                return false;
            };
            let idx = idx as usize;
            if idx < report.acks.len() && report.acks[idx].is_none() {
                report.acks[idx] = Some(Instant::now());
                return true;
            }
            false
        }
        Ok(SmrMsg::Reject { .. }) => {
            report.rejects += 1;
            false
        }
        _ => false,
    }
}

/// The open-loop client: submits `requests` commands on a fixed `gap`
/// schedule, fanning each out to every replica (all serving replicas
/// admit, so a failover leader holds the command), drains
/// acknowledgements, and retries unacked requests on a budget.
fn drive_open_loop(client: &ClientHandle, n: usize, requests: u64, gap: Duration) -> ClientReport {
    let submit_fan = |client: &ClientHandle, i: u64| -> bool {
        let frame = SmrMsg::Submit {
            cmd: Value::new(i + 1),
        }
        .to_wire();
        let mut live = true;
        for p in 0..n as u32 {
            live &= client.submit(PartyId::new(p), frame.clone());
        }
        live
    };

    let mut report = ClientReport {
        sends: Vec::with_capacity(requests as usize),
        acks: vec![None; requests as usize],
        retries: 0,
        rejects: 0,
    };
    let mut last_attempt: Vec<Instant> = Vec::with_capacity(requests as usize);
    let mut budget = vec![RETRY_BUDGET; requests as usize];
    let mut live = true;

    // Submission phase: request i goes out at `start + i·gap` no matter
    // how far behind the replicas are; acks drain between submits.
    let start = Instant::now();
    for i in 0..requests {
        let due = start + gap * (i as u32);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            thread::sleep(wait);
        }
        report.sends.push(Instant::now());
        last_attempt.push(Instant::now());
        if !submit_fan(client, i) {
            live = false; // run already over (deadline) — stop submitting
            break;
        }
        while let Some(bytes) = client.try_recv() {
            note_delivery(&bytes, &mut report);
        }
    }

    // Drain-and-retry phase: wait for the stragglers, retransmitting any
    // request unacked past RETRY_AFTER while its budget lasts. Gives up
    // once nothing has been acknowledged for ACK_PATIENCE.
    let mut last_progress = Instant::now();
    while live
        && last_progress.elapsed() < ACK_PATIENCE
        && report.acks[..report.sends.len()]
            .iter()
            .any(Option::is_none)
    {
        if let Some(bytes) = client.recv_timeout(Duration::from_millis(20)) {
            if note_delivery(&bytes, &mut report) {
                last_progress = Instant::now();
            }
        }
        let now = Instant::now();
        for i in 0..report.sends.len() {
            if report.acks[i].is_none()
                && budget[i] > 0
                && now.duration_since(last_attempt[i]) >= RETRY_AFTER
            {
                budget[i] -= 1;
                last_attempt[i] = now;
                report.retries += 1;
                if !submit_fan(client, i as u64) {
                    live = false;
                    break;
                }
            }
        }
    }
    report
}

/// Runs one open-loop load experiment over the chosen serving backend.
///
/// The client thread fans `opts.requests` commands (`Value::new(1)`,
/// `Value::new(2)`, …) out to every replica on a fixed `opts.gap`
/// schedule and measures first-submit-to-first-ack latency; the run ends
/// when the idle log quiesces. Applies and mempool counters are probed at
/// the highest-indexed honest replica (a follower — its applies ride the
/// full commit path, and it survives every kill schedule).
///
/// # Panics
///
/// Panics if `spec` is not a valid shape for the engine.
pub fn run_load(
    spec: &ScenarioSpec,
    backend: ServeBackend,
    batch: usize,
    pipeline: usize,
    opts: LoadOptions,
) -> SmrLoadRow {
    let cfg = spec.config().expect("validated shape");
    let chain = Keychain::generate(spec.n, spec.seed);
    let params = SmrParams {
        batch,
        pipeline,
        ..SmrParams::default()
    };
    let byzantine: BTreeSet<usize> = spec
        .adversary_slots()
        .iter()
        .map(|(p, _)| p.as_usize())
        .collect();
    let crashes = spec
        .adversary_slots()
        .iter()
        .filter(|(_, r)| matches!(r, AdversaryRole::Crash { .. }))
        .count() as u64;
    let probe_id = (0..spec.n)
        .rev()
        .find(|i| !byzantine.contains(i))
        .expect("at least one honest replica");
    let logs: Vec<ApplyLog> = (0..spec.n)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    let stats: Vec<Arc<Mutex<MempoolStats>>> = (0..spec.n)
        .map(|_| Arc::new(Mutex::new(MempoolStats::default())))
        .collect();
    let engine_logs = logs.clone();
    let engine_stats = stats.clone();
    let slots = spec.erased_slots(|p| {
        SlotEngine::new(
            cfg,
            chain.signer(p),
            chain.pki(),
            spec.big_delta,
            params,
            Arc::new(Mutex::new(RecordingMachine::new(
                engine_logs[p.as_usize()].clone(),
            ))),
        )
        .with_stats_probe(engine_stats[p.as_usize()].clone())
    });

    let report: Arc<Mutex<ClientReport>> = Arc::new(Mutex::new(ClientReport::default()));
    let client_report = Arc::clone(&report);
    let requests = opts.requests;
    let gap = opts.gap;
    let n = spec.n;
    let driver = move |client: ClientHandle| {
        *client_report.lock() = drive_open_loop(&client, n, requests, gap);
    };
    let o = match backend {
        ServeBackend::Socket => SocketBackend::new()
            .deadline(opts.deadline)
            .execute_with_client(spec, slots, MsgCodec::of::<SmrMsg>(), driver),
        ServeBackend::Async => AsyncBackend::new()
            .deadline(opts.deadline)
            .execute_with_client(spec, slots, MsgCodec::of::<SmrMsg>(), driver),
    };

    let report = report.lock();
    // Ack-based latency: first submit to first acknowledgement.
    let mut lats_us: Vec<u64> = report
        .sends
        .iter()
        .zip(&report.acks)
        .filter_map(|(sent, acked)| acked.map(|at| at.duration_since(*sent).as_micros() as u64))
        .collect();
    lats_us.sort_unstable();
    let acked = report.acks.iter().flatten().count() as u64;

    // Exactly-once + liveness audit at the probe replica: no command may
    // appear twice in its apply log, and every acknowledged command must
    // have been applied there.
    let probe = logs[probe_id].lock();
    let mut applied_set: BTreeSet<Value> = BTreeSet::new();
    let exactly_once = probe.iter().all(|(v, _)| applied_set.insert(*v));
    let acked_applied = report
        .acks
        .iter()
        .enumerate()
        .filter(|(_, a)| a.is_some())
        .all(|(i, _)| applied_set.contains(&Value::new(i as u64 + 1)));

    let committed = probe.len() as u64;
    let elapsed_us = match (report.sends.first(), probe.last()) {
        (Some(first), Some((_, last))) => last.duration_since(*first).as_micros() as u64,
        _ => 0,
    };
    let commits_per_sec = if elapsed_us > 0 {
        committed as f64 * 1e6 / elapsed_us as f64
    } else {
        0.0
    };
    let mempool = *stats[probe_id].lock();
    SmrLoadRow {
        backend: backend.name(),
        batch,
        pipeline,
        n: spec.n,
        f: spec.f,
        crashes,
        requests,
        acked,
        retries: report.retries,
        client_rejects: report.rejects,
        committed,
        agreement: o.agreement_holds(),
        exactly_once,
        acked_applied,
        elapsed_us,
        commits_per_sec,
        p50_us: percentile(&lats_us, 0.50),
        p95_us: percentile(&lats_us, 0.95),
        p99_us: percentile(&lats_us, 0.99),
        mempool,
    }
}

/// Measures every [`LOAD_CONFIGS`] point plus the leader-failover
/// scenario on the socket backend, then the `(24, 5)` scale rows (clean
/// and leader-crash) on the async backend.
pub fn smr_load_rows(opts: LoadOptions) -> Vec<SmrLoadRow> {
    let spec = load_spec();
    let mut rows: Vec<SmrLoadRow> = LOAD_CONFIGS
        .iter()
        .map(|&(batch, pipeline)| run_load(&spec, ServeBackend::Socket, batch, pipeline, opts))
        .collect();
    rows.push(run_load(&failover_spec(), ServeBackend::Socket, 4, 4, opts));
    rows.push(run_load(&scale_spec(), ServeBackend::Async, 4, 4, opts));
    rows.push(run_load(
        &scale_failover_spec(),
        ServeBackend::Async,
        4,
        4,
        opts,
    ));
    rows
}

/// Renders rows as the `BENCH_smr.json` document ([`RowsDoc`] format).
pub fn render_json(rows: &[SmrLoadRow]) -> String {
    let mut doc = RowsDoc::new(SMR_SCHEMA);
    doc.top("delta_us", JVal::U64(WALL_DELTA.as_micros()));
    for r in rows {
        doc.row(vec![
            ("backend", JVal::Str(r.backend.into())),
            ("batch", JVal::U64(r.batch as u64)),
            ("pipeline", JVal::U64(r.pipeline as u64)),
            ("n", JVal::U64(r.n as u64)),
            ("f", JVal::U64(r.f as u64)),
            ("crashes", JVal::U64(r.crashes)),
            ("requests", JVal::U64(r.requests)),
            ("acked", JVal::U64(r.acked)),
            ("retries", JVal::U64(r.retries)),
            ("client_rejects", JVal::U64(r.client_rejects)),
            ("committed", JVal::U64(r.committed)),
            ("agreement", JVal::Bool(r.agreement)),
            ("exactly_once", JVal::Bool(r.exactly_once)),
            ("acked_applied", JVal::Bool(r.acked_applied)),
            ("elapsed_us", JVal::U64(r.elapsed_us)),
            ("commits_per_sec", JVal::F1(r.commits_per_sec)),
            ("p50_us", r.p50_us.map_or(JVal::Null, JVal::U64)),
            ("p95_us", r.p95_us.map_or(JVal::Null, JVal::U64)),
            ("p99_us", r.p99_us.map_or(JVal::Null, JVal::U64)),
            ("mp_occupancy", JVal::U64(r.mempool.occupancy as u64)),
            ("mp_admitted", JVal::U64(r.mempool.admitted)),
            ("mp_rejected", JVal::U64(r.mempool.rejected)),
            ("mp_requeued", JVal::U64(r.mempool.requeued)),
            ("mp_committed", JVal::U64(r.mempool.committed)),
        ]);
    }
    doc.render()
}

/// Structural CI check of a `BENCH_smr.json` document: parseable, right
/// schema, at least three distinct `(batch, pipeline)` configurations, a
/// leader-failover row, an async scale row at `n ≥ 16`, and every row
/// (named by its serving backend) committed traffic with agreement, a
/// measured ack median, and a passing exactly-once audit. Deliberately
/// **no** rate or latency gate — wall numbers are machine noise across CI
/// runners; the trajectory file exists so humans can diff the serving
/// envelope per PR.
///
/// # Errors
///
/// A human-readable description of the first structural violation.
pub fn check_doc(text: &str) -> Result<usize, String> {
    let doc = parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
    check_parsed(&doc)
}

fn check_parsed(doc: &JsonValue) -> Result<usize, String> {
    if doc.field_str("schema") != Some(SMR_SCHEMA) {
        return Err(format!(
            "schema is {:?}, expected {SMR_SCHEMA:?}",
            doc.field_str("schema")
        ));
    }
    let rows = doc
        .field("rows")
        .and_then(JsonValue::as_array)
        .ok_or("missing rows array")?;
    let mut configs = Vec::new();
    let mut failover_rows = 0usize;
    let mut async_scale_rows = 0usize;
    for (i, row) in rows.iter().enumerate() {
        let backend = row
            .field_str("backend")
            .ok_or_else(|| format!("row {i}: missing serving backend"))?;
        let batch = row
            .field_u64("batch")
            .ok_or_else(|| format!("row {i}: missing batch"))?;
        let pipeline = row
            .field_u64("pipeline")
            .ok_or_else(|| format!("row {i}: missing pipeline"))?;
        let crashes = row
            .field_u64("crashes")
            .ok_or_else(|| format!("row {i}: missing crashes"))?;
        if row.field_bool("agreement") != Some(true) {
            return Err(format!(
                "row {i} (batch {batch}, pipeline {pipeline}): agreement violated"
            ));
        }
        match row.field_u64("committed") {
            Some(c) if c > 0 => {}
            _ => {
                return Err(format!(
                    "row {i} (batch {batch}, pipeline {pipeline}): no committed requests"
                ))
            }
        }
        match row.field_u64("acked") {
            Some(a) if a > 0 => {}
            _ => {
                return Err(format!(
                    "row {i} (batch {batch}, pipeline {pipeline}): no acknowledged requests"
                ))
            }
        }
        if row.field_bool("exactly_once") != Some(true) {
            return Err(format!(
                "row {i} (batch {batch}, pipeline {pipeline}): exactly-once audit failed"
            ));
        }
        if row.field_bool("acked_applied") != Some(true) {
            return Err(format!(
                "row {i} (batch {batch}, pipeline {pipeline}): an acked command was never applied"
            ));
        }
        if row.field_u64("p50_us").is_none() {
            return Err(format!(
                "row {i} (batch {batch}, pipeline {pipeline}): no measured p50 ack latency"
            ));
        }
        if row.field_u64("mp_admitted").is_none() {
            return Err(format!(
                "row {i} (batch {batch}, pipeline {pipeline}): missing mempool counters"
            ));
        }
        if crashes >= 1 {
            failover_rows += 1;
        }
        if backend == "async" && row.field_u64("n").is_some_and(|n| n >= 16) {
            async_scale_rows += 1;
        }
        if !configs.contains(&(batch, pipeline)) {
            configs.push((batch, pipeline));
        }
    }
    if configs.len() < 3 {
        return Err(format!(
            "only {} distinct (batch, pipeline) configurations; need >= 3",
            configs.len()
        ));
    }
    if failover_rows == 0 {
        return Err("no leader-failover row (crashes >= 1)".to_string());
    }
    if async_scale_rows == 0 {
        return Err("no async serving row at scale (backend \"async\", n >= 16)".to_string());
    }
    Ok(rows.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_sim::AdversaryMix;

    #[test]
    fn open_loop_socket_load_commits_and_passes_check() {
        // Three tiny configurations plus a follower-crash failover row
        // keep the unit test cheap while still producing a full-shape
        // document the structural gate accepts (which since v3 also
        // requires an async scale row).
        let spec = load_spec();
        let opts = LoadOptions {
            requests: 24,
            gap: Duration::from_millis(1),
            deadline: Duration::from_secs(20),
        };
        let mut rows: Vec<SmrLoadRow> = [(1, 4), (4, 4), (8, 8)]
            .iter()
            .map(|&(b, p)| run_load(&spec, ServeBackend::Socket, b, p, opts))
            .collect();
        rows.push(run_load(
            &spec.with_adversary(AdversaryMix::CrashAt {
                party: PartyId::new(0),
                handled: 30,
            }),
            ServeBackend::Socket,
            4,
            4,
            opts,
        ));
        let scale_opts = LoadOptions {
            requests: 16,
            gap: Duration::from_millis(1),
            deadline: Duration::from_secs(30),
        };
        rows.push(run_load(
            &scale_spec(),
            ServeBackend::Async,
            4,
            4,
            scale_opts,
        ));
        for r in &rows {
            assert!(r.agreement, "batch {} pipeline {}", r.batch, r.pipeline);
            assert!(
                r.committed > 0,
                "batch {} pipeline {}: no traffic committed",
                r.batch,
                r.pipeline
            );
            assert!(r.exactly_once, "a command applied twice");
            assert!(r.acked_applied, "an acked command was lost");
            let p50 = r.p50_us.expect("median measured");
            // Two injected 2 ms hops bound the commit path from below
            // (the ack adds at least one more, but two is the floor).
            assert!(
                p50 >= 2 * WALL_DELTA.as_micros(),
                "batch {} pipeline {}: p50 {p50}µs under the 2-hop floor",
                r.batch,
                r.pipeline
            );
            assert!(r.p95_us.unwrap() >= p50);
            assert!(r.p99_us.unwrap() >= r.p95_us.unwrap());
            assert!(r.mempool.admitted > 0, "probe admitted no commands");
        }
        let doc = render_json(&rows);
        let n = check_doc(&doc).expect("fresh rows pass the structural gate");
        assert_eq!(n, 5);
    }

    #[test]
    fn load_survives_f_crashed_replicas() {
        // Satellite coverage: the full client path with f replicas down.
        // Replica 3 crashes almost immediately; the three live replicas
        // must keep serving the stream and land on identical logs.
        let spec = load_spec().with_adversary(AdversaryMix::CrashAt {
            party: PartyId::new(3),
            handled: 3,
        });
        let row = run_load(
            &spec,
            ServeBackend::Socket,
            4,
            4,
            LoadOptions {
                requests: 24,
                gap: Duration::from_millis(1),
                deadline: Duration::from_secs(20),
            },
        );
        assert!(row.agreement, "live replicas must agree with f crashed");
        assert!(
            row.committed > 0,
            "a crashed follower must not stop the service"
        );
        assert!(row.exactly_once && row.acked_applied);
    }

    #[test]
    fn leader_cascade_failover_serves_the_full_acked_workload() {
        // The acceptance scenario: the initial leader AND its first
        // rotation successor die mid-run under open-loop load. The
        // service must acknowledge the entire stream (retries allowed),
        // apply every acked command exactly once, and agree.
        let opts = LoadOptions {
            requests: 32,
            gap: Duration::from_millis(1),
            deadline: Duration::from_secs(30),
        };
        let row = run_load(&failover_spec(), ServeBackend::Socket, 4, 4, opts);
        assert_eq!(row.crashes, 2, "two successive leaders die");
        assert!(row.agreement, "survivors agree through failover");
        assert_eq!(
            row.acked, row.requests,
            "the full workload must be acknowledged through failover \
             (retries: {}, rejects: {})",
            row.retries, row.client_rejects
        );
        assert!(row.exactly_once, "failover double-applied a command");
        assert!(row.acked_applied, "an acked command was lost in failover");
        assert!(
            row.committed >= row.requests,
            "probe applied {} of {} requests",
            row.committed,
            row.requests
        );
    }

    #[test]
    fn async_leader_cascade_keeps_serving_exactly_once() {
        // Satellite fault-injection coverage for the readiness loop: the
        // initial leader of a (24, 5) replica group — all 24 multiplexed
        // over a small worker pool — dies mid-stream. Rotation must keep
        // the service live, every acknowledged command must land exactly
        // once, and the survivors must agree.
        let opts = LoadOptions {
            requests: 16,
            gap: Duration::from_millis(1),
            deadline: Duration::from_secs(30),
        };
        let row = run_load(&scale_failover_spec(), ServeBackend::Async, 4, 4, opts);
        assert_eq!(row.backend, "async");
        assert_eq!((row.n, row.f), (24, 5), "the scale shape");
        assert_eq!(row.crashes, 1, "the initial leader dies");
        assert!(row.agreement, "survivors agree through failover");
        assert!(row.acked > 0, "service stays live across the rotation");
        assert!(row.exactly_once, "failover double-applied a command");
        assert!(row.acked_applied, "an acked command was lost in failover");
    }

    #[test]
    fn check_rejects_malformed_documents() {
        assert!(check_doc("not json").is_err());
        assert!(check_doc("{\"schema\": \"other/v9\", \"rows\": []}").is_err());
        assert!(
            check_doc("{\"schema\": \"gcl-bench/smr-load/v2\", \"rows\": []}").is_err(),
            "v2 documents no longer pass the v3 gate"
        );
        let empty = format!("{{\"schema\": \"{SMR_SCHEMA}\", \"rows\": []}}");
        let err = check_doc(&empty).unwrap_err();
        assert!(err.contains("configurations"), "{err}");
        // A row that never committed is a liveness failure, not a shape
        // variation.
        let dead = format!(
            "{{\"schema\": \"{SMR_SCHEMA}\", \"rows\": [{{\"backend\": \"socket\", \
             \"batch\": 1, \"pipeline\": 1, \"crashes\": 0, \"agreement\": true, \
             \"committed\": 0}}]}}"
        );
        let err = check_doc(&dead).unwrap_err();
        assert!(err.contains("no committed requests"), "{err}");
        // A failed exactly-once audit must be fatal even with traffic.
        let dup = format!(
            "{{\"schema\": \"{SMR_SCHEMA}\", \"rows\": [{{\"backend\": \"socket\", \
             \"batch\": 1, \"pipeline\": 1, \"crashes\": 1, \"agreement\": true, \
             \"committed\": 5, \"acked\": 5, \"exactly_once\": false}}]}}"
        );
        let err = check_doc(&dup).unwrap_err();
        assert!(err.contains("exactly-once"), "{err}");
        // A v2-shaped row (no backend column) is structural drift.
        let anon = format!(
            "{{\"schema\": \"{SMR_SCHEMA}\", \"rows\": [{{\"batch\": 1, \
             \"pipeline\": 1, \"crashes\": 0, \"agreement\": true, \"committed\": 5}}]}}"
        );
        let err = check_doc(&anon).unwrap_err();
        assert!(err.contains("missing serving backend"), "{err}");
        // A document with socket rows only lacks the async scale row.
        let socket_only = format!(
            "{{\"schema\": \"{SMR_SCHEMA}\", \"rows\": [\
             {{\"backend\": \"socket\", \"batch\": 1, \"pipeline\": 4, \"n\": 4, \
              \"crashes\": 0, \"agreement\": true, \"committed\": 5, \"acked\": 5, \
              \"exactly_once\": true, \"acked_applied\": true, \"p50_us\": 9000, \
              \"mp_admitted\": 5}}, \
             {{\"backend\": \"socket\", \"batch\": 4, \"pipeline\": 4, \"n\": 4, \
              \"crashes\": 1, \"agreement\": true, \"committed\": 5, \"acked\": 5, \
              \"exactly_once\": true, \"acked_applied\": true, \"p50_us\": 9000, \
              \"mp_admitted\": 5}}, \
             {{\"backend\": \"socket\", \"batch\": 8, \"pipeline\": 8, \"n\": 4, \
              \"crashes\": 0, \"agreement\": true, \"committed\": 5, \"acked\": 5, \
              \"exactly_once\": true, \"acked_applied\": true, \"p50_us\": 9000, \
              \"mp_admitted\": 5}}]}}"
        );
        let err = check_doc(&socket_only).unwrap_err();
        assert!(err.contains("async serving row"), "{err}");
    }
}
