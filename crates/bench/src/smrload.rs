//! Open-loop SMR load generation: client request streams through the
//! socket backend, rendered as the repo-root `BENCH_smr.json`.
//!
//! The other trajectories measure the substrate (`BENCH_sim.json`:
//! simulator throughput) and the runtimes (`BENCH_net.json`: per-family
//! wall latency). This one measures the *service*: a [`SlotEngine`]
//! replica group in serving mode — no pre-baked workload, no known log
//! length — fed by an **open-loop** client that submits requests on a
//! fixed schedule regardless of how fast the replicas keep up. Open loop
//! is the honest methodology for a replicated service: a closed-loop
//! client (next request only after the last commit) hides queueing delay
//! exactly when the system saturates, which is when latency matters.
//!
//! Each measured configuration is a `(batch, pipeline)` point: requests
//! stream into the leader's mempool as [`SmrMsg::Submit`] frames over a
//! real Unix-domain socket, the leader drains them into batched
//! proposals, and every replica applies committed batches in slot order.
//! When the stream stops the log quiesces (trailing no-op slots), so the
//! run terminates without anyone knowing the workload length in advance.
//! Per-request latency is submit-to-apply wall time at a follower
//! replica; the row reports p50/p95/p99 and sustained commits/sec.
//!
//! Wall numbers are machine-dependent, so the CI gate ([`check_doc`])
//! validates *structure*, not speed: right schema, at least three
//! distinct `(batch, pipeline)` configurations, every row committed with
//! agreement and a measured p50. Regeneration:
//!
//! ```text
//! cargo run --release -p gcl_bench --bin smr_load -- --out BENCH_smr.json
//! ```

use crate::conformance::{wall_spec, WALL_DELTA};
use crate::json::{parse, JVal, RowsDoc, Value as JsonValue};
use crate::registry;
use gcl_crypto::Keychain;
use gcl_net::SocketBackend;
use gcl_sim::{MsgCodec, ScenarioSpec};
use gcl_smr::{SlotEngine, SmrMsg, SmrParams, StateMachine};
use gcl_types::{Encode, PartyId, SlotId, Value};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// The `schema` field of every `BENCH_smr.json` document.
pub const SMR_SCHEMA: &str = "gcl-bench/smr-load/v1";

/// A shared `(command, apply-instant)` side log one replica's
/// [`RecordingMachine`] appends to.
pub type ApplyLog = Arc<Mutex<Vec<(Value, Instant)>>>;

/// The measured `(batch, pipeline)` grid: serial baseline, the moderate
/// default, and a deep/wide point that exercises coalescing under burst.
pub const LOAD_CONFIGS: [(usize, usize); 3] = [(1, 4), (4, 4), (32, 8)];

/// Knobs of one load run (how much traffic, how fast, how long to wait).
#[derive(Debug, Clone, Copy)]
pub struct LoadOptions {
    /// Requests the open-loop client submits.
    pub requests: u64,
    /// Inter-arrival gap of the open-loop schedule.
    pub gap: Duration,
    /// Per-run wall deadline (quiesce exits long before this).
    pub deadline: Duration,
}

impl LoadOptions {
    /// CI smoke shape: enough traffic to span several slots per config
    /// without dominating the job's wall time.
    pub fn quick() -> Self {
        LoadOptions {
            requests: 48,
            gap: Duration::from_millis(1),
            deadline: Duration::from_secs(20),
        }
    }

    /// The committed-baseline shape.
    pub fn full() -> Self {
        LoadOptions {
            requests: 300,
            gap: Duration::from_millis(1),
            deadline: Duration::from_secs(30),
        }
    }
}

/// One `(batch, pipeline)` configuration's measured row.
#[derive(Debug, Clone)]
pub struct SmrLoadRow {
    /// Proposal batch cap.
    pub batch: usize,
    /// Pipeline depth.
    pub pipeline: usize,
    /// Parties.
    pub n: usize,
    /// Fault budget.
    pub f: usize,
    /// Requests the client submitted.
    pub requests: u64,
    /// Requests observed applied at the probe replica.
    pub committed: u64,
    /// Whether replica log digests agreed at termination.
    pub agreement: bool,
    /// First-submit-to-last-apply wall time, µs.
    pub elapsed_us: u64,
    /// Sustained commit rate over `elapsed_us`.
    pub commits_per_sec: f64,
    /// Median submit-to-apply latency, µs.
    pub p50_us: Option<u64>,
    /// 95th-percentile submit-to-apply latency, µs.
    pub p95_us: Option<u64>,
    /// 99th-percentile submit-to-apply latency, µs.
    pub p99_us: Option<u64>,
}

/// A [`Counter`]-equivalent state machine that also timestamps every
/// applied command into a shared side log, so the harness can join
/// applies against the client's submit schedule.
///
/// The digest is command-content only (no timestamps), so replicas still
/// agree byte-for-byte with each other.
///
/// [`Counter`]: gcl_smr::Counter
#[derive(Debug)]
pub struct RecordingMachine {
    total: u64,
    applied: u64,
    log: ApplyLog,
}

impl RecordingMachine {
    /// A fresh machine appending `(command, apply-instant)` to `log`.
    pub fn new(log: ApplyLog) -> Self {
        RecordingMachine {
            total: 0,
            applied: 0,
            log,
        }
    }
}

impl StateMachine for RecordingMachine {
    fn apply(&mut self, _slot: SlotId, value: Value) {
        self.total = self.total.wrapping_add(value.as_u64());
        self.applied += 1;
        self.log.lock().push((value, Instant::now()));
    }

    fn state_digest(&self) -> u64 {
        self.total ^ (self.applied << 48)
    }
}

/// The wall-safe serving-mode spec the load runs use: the `smr` family's
/// conformance bounds (2 ms links, ≥ 20 ms Δ so view timers cannot fire
/// spuriously between back-to-back requests).
pub fn load_spec() -> ScenarioSpec {
    wall_spec(registry(), "smr")
}

fn percentile(sorted_us: &[u64], p: f64) -> Option<u64> {
    if sorted_us.is_empty() {
        return None;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    Some(sorted_us[idx.min(sorted_us.len() - 1)])
}

/// Runs one open-loop load experiment over the socket backend.
///
/// The client thread submits `opts.requests` commands (`Value::new(1)`,
/// `Value::new(2)`, …) to the leader on a fixed `opts.gap` schedule; the
/// run ends when the idle log quiesces. Latency is measured at replica 1
/// (a follower — its applies ride the full two-round commit path).
///
/// # Panics
///
/// Panics if `spec` is not a valid shape for the engine.
pub fn run_load(
    spec: &ScenarioSpec,
    batch: usize,
    pipeline: usize,
    opts: LoadOptions,
) -> SmrLoadRow {
    let cfg = spec.config().expect("validated shape");
    let chain = Keychain::generate(spec.n, spec.seed);
    let params = SmrParams {
        batch,
        pipeline,
        ..SmrParams::default()
    };
    let logs: Vec<ApplyLog> = (0..spec.n)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    let engine_logs = logs.clone();
    let slots = spec.erased_slots(|p| {
        SlotEngine::new(
            cfg,
            chain.signer(p),
            chain.pki(),
            spec.big_delta,
            params,
            Arc::new(Mutex::new(RecordingMachine::new(
                engine_logs[p.as_usize()].clone(),
            ))),
        )
    });

    let sends: Arc<Mutex<Vec<Instant>>> = Arc::new(Mutex::new(Vec::new()));
    let client_sends = Arc::clone(&sends);
    let requests = opts.requests;
    let gap = opts.gap;
    let leader = PartyId::new(0);
    let o = SocketBackend::new()
        .deadline(opts.deadline)
        .execute_with_client(spec, slots, MsgCodec::of::<SmrMsg>(), move |client| {
            let start = Instant::now();
            for i in 0..requests {
                // Open loop: request i goes out at `start + i·gap` no
                // matter how far behind the replicas are.
                let due = start + gap * (i as u32);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    thread::sleep(wait);
                }
                let frame = SmrMsg::Submit {
                    cmd: Value::new(i + 1),
                }
                .to_wire();
                client_sends.lock().push(Instant::now());
                if !client.submit(leader, frame) {
                    break; // run already over (deadline) — stop submitting
                }
            }
        });

    let sends = sends.lock();
    // Probe at replica 1: a follower, so each apply crosses the full
    // propose→vote→commit path plus payload dissemination.
    let probe = logs[1].lock();
    let mut lats_us: Vec<u64> = probe
        .iter()
        .filter_map(|(v, at)| {
            let idx = v.as_u64().checked_sub(1)? as usize;
            let sent = sends.get(idx)?;
            Some(at.duration_since(*sent).as_micros() as u64)
        })
        .collect();
    lats_us.sort_unstable();
    let committed = probe.len() as u64;
    let elapsed_us = match (sends.first(), probe.last()) {
        (Some(first), Some((_, last))) => last.duration_since(*first).as_micros() as u64,
        _ => 0,
    };
    let commits_per_sec = if elapsed_us > 0 {
        committed as f64 * 1e6 / elapsed_us as f64
    } else {
        0.0
    };
    SmrLoadRow {
        batch,
        pipeline,
        n: spec.n,
        f: spec.f,
        requests,
        committed,
        agreement: o.agreement_holds(),
        elapsed_us,
        commits_per_sec,
        p50_us: percentile(&lats_us, 0.50),
        p95_us: percentile(&lats_us, 0.95),
        p99_us: percentile(&lats_us, 0.99),
    }
}

/// Measures every [`LOAD_CONFIGS`] point on the socket backend.
pub fn smr_load_rows(opts: LoadOptions) -> Vec<SmrLoadRow> {
    let spec = load_spec();
    LOAD_CONFIGS
        .iter()
        .map(|&(batch, pipeline)| run_load(&spec, batch, pipeline, opts))
        .collect()
}

/// Renders rows as the `BENCH_smr.json` document ([`RowsDoc`] format).
pub fn render_json(rows: &[SmrLoadRow]) -> String {
    let mut doc = RowsDoc::new(SMR_SCHEMA);
    doc.top("delta_us", JVal::U64(WALL_DELTA.as_micros()));
    for r in rows {
        doc.row(vec![
            ("batch", JVal::U64(r.batch as u64)),
            ("pipeline", JVal::U64(r.pipeline as u64)),
            ("n", JVal::U64(r.n as u64)),
            ("f", JVal::U64(r.f as u64)),
            ("requests", JVal::U64(r.requests)),
            ("committed", JVal::U64(r.committed)),
            ("agreement", JVal::Bool(r.agreement)),
            ("elapsed_us", JVal::U64(r.elapsed_us)),
            ("commits_per_sec", JVal::F1(r.commits_per_sec)),
            ("p50_us", r.p50_us.map_or(JVal::Null, JVal::U64)),
            ("p95_us", r.p95_us.map_or(JVal::Null, JVal::U64)),
            ("p99_us", r.p99_us.map_or(JVal::Null, JVal::U64)),
        ]);
    }
    doc.render()
}

/// Structural CI check of a `BENCH_smr.json` document: parseable, right
/// schema, at least three distinct `(batch, pipeline)` configurations,
/// and every row committed traffic with agreement and a measured median.
/// Deliberately **no** rate or latency gate — wall numbers are machine
/// noise across CI runners; the trajectory file exists so humans can
/// diff the serving envelope per PR.
///
/// # Errors
///
/// A human-readable description of the first structural violation.
pub fn check_doc(text: &str) -> Result<usize, String> {
    let doc = parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
    check_parsed(&doc)
}

fn check_parsed(doc: &JsonValue) -> Result<usize, String> {
    if doc.field_str("schema") != Some(SMR_SCHEMA) {
        return Err(format!(
            "schema is {:?}, expected {SMR_SCHEMA:?}",
            doc.field_str("schema")
        ));
    }
    let rows = doc
        .field("rows")
        .and_then(JsonValue::as_array)
        .ok_or("missing rows array")?;
    let mut configs = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let batch = row
            .field_u64("batch")
            .ok_or_else(|| format!("row {i}: missing batch"))?;
        let pipeline = row
            .field_u64("pipeline")
            .ok_or_else(|| format!("row {i}: missing pipeline"))?;
        if row.field_bool("agreement") != Some(true) {
            return Err(format!(
                "row {i} (batch {batch}, pipeline {pipeline}): agreement violated"
            ));
        }
        match row.field_u64("committed") {
            Some(c) if c > 0 => {}
            _ => {
                return Err(format!(
                    "row {i} (batch {batch}, pipeline {pipeline}): no committed requests"
                ))
            }
        }
        if row.field_u64("p50_us").is_none() {
            return Err(format!(
                "row {i} (batch {batch}, pipeline {pipeline}): no measured p50 latency"
            ));
        }
        if !configs.contains(&(batch, pipeline)) {
            configs.push((batch, pipeline));
        }
    }
    if configs.len() < 3 {
        return Err(format!(
            "only {} distinct (batch, pipeline) configurations; need >= 3",
            configs.len()
        ));
    }
    Ok(rows.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_sim::AdversaryMix;

    #[test]
    fn open_loop_socket_load_commits_and_passes_check() {
        // Three tiny configurations keep the unit test cheap while still
        // producing a full-shape document the structural gate accepts.
        let spec = load_spec();
        let opts = LoadOptions {
            requests: 24,
            gap: Duration::from_millis(1),
            deadline: Duration::from_secs(20),
        };
        let rows: Vec<SmrLoadRow> = [(1, 4), (4, 4), (8, 8)]
            .iter()
            .map(|&(b, p)| run_load(&spec, b, p, opts))
            .collect();
        for r in &rows {
            assert!(r.agreement, "batch {} pipeline {}", r.batch, r.pipeline);
            assert!(
                r.committed > 0,
                "batch {} pipeline {}: no traffic committed",
                r.batch,
                r.pipeline
            );
            let p50 = r.p50_us.expect("median measured");
            // Two injected 2 ms hops bound the commit path from below.
            assert!(
                p50 >= 2 * WALL_DELTA.as_micros(),
                "batch {} pipeline {}: p50 {p50}µs under the 2-hop floor",
                r.batch,
                r.pipeline
            );
            assert!(r.p95_us.unwrap() >= p50);
            assert!(r.p99_us.unwrap() >= r.p95_us.unwrap());
        }
        let doc = render_json(&rows);
        let n = check_doc(&doc).expect("fresh rows pass the structural gate");
        assert_eq!(n, 3);
    }

    #[test]
    fn load_survives_f_crashed_replicas() {
        // Satellite coverage: the full client path with f replicas down.
        // Replica 3 crashes almost immediately; the three live replicas
        // must keep serving the stream and land on identical logs.
        let spec = load_spec().with_adversary(AdversaryMix::CrashAt {
            party: PartyId::new(3),
            handled: 3,
        });
        let row = run_load(
            &spec,
            4,
            4,
            LoadOptions {
                requests: 24,
                gap: Duration::from_millis(1),
                deadline: Duration::from_secs(20),
            },
        );
        assert!(row.agreement, "live replicas must agree with f crashed");
        assert!(
            row.committed > 0,
            "a crashed follower must not stop the service"
        );
    }

    #[test]
    fn check_rejects_malformed_documents() {
        assert!(check_doc("not json").is_err());
        assert!(check_doc("{\"schema\": \"other/v9\", \"rows\": []}").is_err());
        let empty = format!("{{\"schema\": \"{SMR_SCHEMA}\", \"rows\": []}}");
        let err = check_doc(&empty).unwrap_err();
        assert!(err.contains("configurations"), "{err}");
        // A row that never committed is a liveness failure, not a shape
        // variation.
        let dead = format!(
            "{{\"schema\": \"{SMR_SCHEMA}\", \"rows\": [{{\"batch\": 1, \
             \"pipeline\": 1, \"agreement\": true, \"committed\": 0}}]}}"
        );
        let err = check_doc(&dead).unwrap_err();
        assert!(err.contains("no committed requests"), "{err}");
    }
}
