//! Wall-trajectory diffing: a fresh `BENCH_net.json` / `BENCH_smr.json`
//! measurement against the committed baseline.
//!
//! The per-document structure checks ([`netlat`], [`smrload`]) validate
//! one document in isolation; they deliberately say nothing about how a
//! fresh measurement *relates* to the committed one, so a PR could
//! silently drop a scenario row, rename a column, or make the serving
//! pipeline 100× slower and the gates would still pass. This module
//! closes that hole: [`diff_docs`] joins the two documents row-by-row and
//! fails on
//!
//! * **structural drift** — schema mismatch, a baseline row with no
//!   fresh counterpart (a scenario disappeared), a fresh row with no
//!   baseline counterpart (the committed file is stale), or matched rows
//!   whose column sets differ;
//! * **gross regression** — a matched metric worse than the baseline by
//!   more than `factor` (default [`DEFAULT_FACTOR`]×).
//!
//! The regression factor is deliberately enormous: wall numbers bounce
//! around across CI runners, so a tight gate would be flake, not signal.
//! What a 25× bound *does* catch is categorical breakage — an early-exit
//! path regressing to sleep-to-deadline, a serving path that only
//! commits on retransmission — while letting ordinary machine noise
//! through. Tighter judgement stays with humans reading the committed
//! trajectory diff in review.
//!
//! Rows are keyed by their identity columns, not their position:
//! `(family, backend, n)` for the net-latency trajectory (the async
//! backend measures the same family at several scales),
//! `(backend, batch, pipeline, n, f, crashes)` for the SMR serving
//! trajectory, and `scenario` for the simulator-throughput trajectory, so
//! reordering rows is not drift but re-shaping a scenario is.
//!
//! [`netlat`]: crate::netlat
//! [`smrload`]: crate::smrload

use crate::json::{parse, Value};
use crate::netlat::NET_SCHEMA;
use crate::smrload::SMR_SCHEMA;
use crate::throughput::SIM_SCHEMA;

/// Default gross-regression bound: a metric may be up to this many times
/// worse than the committed baseline before the diff fails.
pub const DEFAULT_FACTOR: f64 = 25.0;

/// Which direction of change is a regression for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Better {
    /// Smaller is better (latencies).
    Lower,
    /// Larger is better (rates).
    Higher,
}

/// A gated metric column of one trajectory schema.
struct Metric {
    field: &'static str,
    better: Better,
}

/// The identity and metric columns of one known trajectory schema.
struct Shape {
    /// Columns whose values form a row's identity.
    key: &'static [&'static str],
    /// Columns gated against gross regression.
    metrics: &'static [Metric],
}

fn shape_of(schema: &str) -> Option<Shape> {
    match schema {
        s if s == NET_SCHEMA => Some(Shape {
            key: &["family", "backend", "n"],
            metrics: &[Metric {
                field: "latency_us",
                better: Better::Lower,
            }],
        }),
        s if s == SMR_SCHEMA => Some(Shape {
            key: &["backend", "batch", "pipeline", "n", "f", "crashes"],
            metrics: &[
                Metric {
                    field: "commits_per_sec",
                    better: Better::Higher,
                },
                Metric {
                    field: "p50_us",
                    better: Better::Lower,
                },
            ],
        }),
        s if s == SIM_SCHEMA => Some(Shape {
            key: &["scenario"],
            metrics: &[
                Metric {
                    field: "events_per_sec",
                    better: Better::Higher,
                },
                // Deterministic, not noisy: a jump in MACs actually
                // computed means a verify cache stopped amortizing.
                Metric {
                    field: "verify_macs",
                    better: Better::Lower,
                },
                // Retained event-queue memory: a jump means the slab or
                // the calendar directories stopped recycling.
                Metric {
                    field: "queue_bytes",
                    better: Better::Lower,
                },
                // Deterministic like verify_macs: a jump means parties
                // are flooding dead recipients harder — protocol-level
                // termination drift, not measurement noise. (All-zero
                // scenarios are skipped by the positive-value guard.)
                Metric {
                    field: "drops_at_enqueue",
                    better: Better::Lower,
                },
            ],
        }),
        _ => None,
    }
}

/// Renders a row's identity columns as a stable display/join key.
fn row_key(row: &Value, key: &[&str], i: usize) -> Result<String, String> {
    let mut parts = Vec::with_capacity(key.len());
    for col in key {
        let part = match row.field(col) {
            Some(Value::String(s)) => s.clone(),
            Some(Value::Number(x)) => format!("{x}"),
            _ => return Err(format!("row {i}: missing identity column {col:?}")),
        };
        parts.push(format!("{col}={part}"));
    }
    Ok(parts.join(" "))
}

/// Indexes a parsed document's rows by identity key.
fn index_rows<'doc>(
    doc: &'doc Value,
    shape: &Shape,
    which: &str,
) -> Result<Vec<(String, &'doc Value)>, String> {
    let rows = doc
        .field("rows")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{which}: missing rows array"))?;
    let mut indexed = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let key = row_key(row, shape.key, i).map_err(|e| format!("{which}: {e}"))?;
        if indexed.iter().any(|(k, _)| *k == key) {
            return Err(format!("{which}: duplicate row [{key}]"));
        }
        indexed.push((key, row));
    }
    Ok(indexed)
}

/// Diffs a fresh trajectory document against the committed baseline.
///
/// Both texts must parse, share a known schema, and join row-for-row on
/// the schema's identity columns with identical column sets; every gated
/// metric must stay within `factor`× of the baseline. Returns a short
/// human-readable summary of the worst observed ratio.
///
/// # Errors
///
/// A description of the first structural drift or gross regression.
pub fn diff_docs(baseline: &str, fresh: &str, factor: f64) -> Result<String, String> {
    let baseline = parse(baseline).map_err(|e| format!("baseline: malformed JSON: {e}"))?;
    let fresh = parse(fresh).map_err(|e| format!("fresh: malformed JSON: {e}"))?;

    let schema = baseline
        .field_str("schema")
        .ok_or("baseline: missing schema")?;
    let fresh_schema = fresh.field_str("schema").ok_or("fresh: missing schema")?;
    if schema != fresh_schema {
        return Err(format!(
            "schema drift: baseline {schema:?} vs fresh {fresh_schema:?}"
        ));
    }
    let shape = shape_of(schema).ok_or_else(|| format!("unknown trajectory schema {schema:?}"))?;

    let base_rows = index_rows(&baseline, &shape, "baseline")?;
    let fresh_rows = index_rows(&fresh, &shape, "fresh")?;
    for (key, _) in &base_rows {
        if !fresh_rows.iter().any(|(k, _)| k == key) {
            return Err(format!(
                "structural drift: baseline row [{key}] has no fresh counterpart \
                 (scenario disappeared from the harness?)"
            ));
        }
    }
    for (key, _) in &fresh_rows {
        if !base_rows.iter().any(|(k, _)| k == key) {
            return Err(format!(
                "structural drift: fresh row [{key}] is not in the baseline \
                 (regenerate the committed trajectory file)"
            ));
        }
    }

    let mut worst: Option<(f64, String)> = None;
    for (key, base_row) in &base_rows {
        let fresh_row = fresh_rows
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, r)| *r)
            .expect("join checked above");
        let base_cols: Vec<&String> = base_row
            .as_object()
            .ok_or_else(|| format!("baseline row [{key}] is not an object"))?
            .keys()
            .collect();
        let fresh_cols: Vec<&String> = fresh_row
            .as_object()
            .ok_or_else(|| format!("fresh row [{key}] is not an object"))?
            .keys()
            .collect();
        if base_cols != fresh_cols {
            return Err(format!(
                "structural drift: row [{key}] columns differ \
                 (baseline {base_cols:?} vs fresh {fresh_cols:?})"
            ));
        }
        for m in shape.metrics {
            let (Some(b), Some(f)) = (base_row.field_f64(m.field), fresh_row.field_f64(m.field))
            else {
                // A null metric (e.g. no measured latency) is caught by
                // the per-document structure checks; the diff only gates
                // values both documents actually measured.
                continue;
            };
            if b <= 0.0 || f <= 0.0 {
                continue;
            }
            let ratio = match m.better {
                Better::Lower => f / b,
                Better::Higher => b / f,
            };
            if ratio > factor {
                return Err(format!(
                    "gross regression: row [{key}] {} went {b:.1} -> {f:.1} \
                     ({ratio:.1}x worse; bound {factor}x)",
                    m.field
                ));
            }
            if worst.as_ref().is_none_or(|(w, _)| ratio > *w) {
                worst = Some((ratio, format!("[{key}] {}", m.field)));
            }
        }
    }

    Ok(match worst {
        Some((ratio, label)) => format!(
            "{} rows matched; worst metric ratio {ratio:.2}x ({label}; bound {factor}x)",
            base_rows.len()
        ),
        None => format!("{} rows matched; no comparable metrics", base_rows.len()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net_doc(rows: &[(&str, &str, u64, u64)]) -> String {
        let body: Vec<String> = rows
            .iter()
            .map(|(fam, be, n, lat)| {
                format!(
                    "{{\"family\": \"{fam}\", \"backend\": \"{be}\", \"n\": {n}, \
                     \"latency_us\": {lat}, \"agreement\": true}}"
                )
            })
            .collect();
        format!(
            "{{\"schema\": \"{NET_SCHEMA}\", \"rows\": [{}]}}",
            body.join(", ")
        )
    }

    #[test]
    fn identical_documents_pass() {
        let doc = net_doc(&[("flood", "net", 4, 2000), ("flood", "socket", 4, 2500)]);
        let summary = diff_docs(&doc, &doc, DEFAULT_FACTOR).expect("identity diff passes");
        assert!(summary.contains("2 rows matched"), "{summary}");
    }

    #[test]
    fn scale_rows_are_distinct_by_n() {
        // The async backend measures the same family at several shapes;
        // the n column keeps those rows distinct identities.
        let base = net_doc(&[
            ("flood", "async", 4, 2300),
            ("flood", "async", 256, 90_000),
            ("flood", "async", 1024, 900_000),
        ]);
        let summary = diff_docs(&base, &base, DEFAULT_FACTOR).expect("per-n rows join");
        assert!(summary.contains("3 rows matched"), "{summary}");
        // Dropping one scale point is structural drift, not noise.
        let shrunk = net_doc(&[("flood", "async", 4, 2300), ("flood", "async", 256, 90_000)]);
        let err = diff_docs(&base, &shrunk, DEFAULT_FACTOR).unwrap_err();
        assert!(err.contains("no fresh counterpart"), "{err}");
    }

    #[test]
    fn noise_within_factor_passes_and_gross_regression_fails() {
        let base = net_doc(&[("flood", "net", 4, 2000)]);
        let noisy = net_doc(&[("flood", "net", 4, 9000)]);
        diff_docs(&base, &noisy, DEFAULT_FACTOR).expect("4.5x is machine noise");
        // An improvement is never a regression, however large.
        diff_docs(&base, &net_doc(&[("flood", "net", 4, 10)]), DEFAULT_FACTOR)
            .expect("fast is fine");
        let broken = net_doc(&[("flood", "net", 4, 2_000_000)]);
        let err = diff_docs(&base, &broken, DEFAULT_FACTOR).unwrap_err();
        assert!(err.contains("gross regression"), "{err}");
        assert!(err.contains("latency_us"), "{err}");
    }

    #[test]
    fn missing_and_extra_rows_are_structural_drift() {
        let base = net_doc(&[("flood", "net", 4, 2000), ("bracha", "net", 4, 6000)]);
        let missing = net_doc(&[("flood", "net", 4, 2000)]);
        let err = diff_docs(&base, &missing, DEFAULT_FACTOR).unwrap_err();
        assert!(err.contains("no fresh counterpart"), "{err}");
        let extra = net_doc(&[
            ("flood", "net", 4, 2000),
            ("bracha", "net", 4, 6000),
            ("pbft3", "net", 4, 7000),
        ]);
        let err = diff_docs(&base, &extra, DEFAULT_FACTOR).unwrap_err();
        assert!(err.contains("not in the baseline"), "{err}");
        // Reordering rows is NOT drift: the join is by identity columns.
        let reordered = net_doc(&[("bracha", "net", 4, 6000), ("flood", "net", 4, 2000)]);
        diff_docs(&base, &reordered, DEFAULT_FACTOR).expect("order is irrelevant");
    }

    #[test]
    fn column_drift_and_schema_drift_fail() {
        let base = net_doc(&[("flood", "net", 4, 2000)]);
        let renamed = format!(
            "{{\"schema\": \"{NET_SCHEMA}\", \"rows\": [{{\"family\": \"flood\", \
             \"backend\": \"net\", \"n\": 4, \"lat_us\": 2000, \"agreement\": true}}]}}"
        );
        let err = diff_docs(&base, &renamed, DEFAULT_FACTOR).unwrap_err();
        assert!(err.contains("columns differ"), "{err}");
        let other_schema = base.replace(NET_SCHEMA, "gcl-bench/net-latency/v9");
        let err = diff_docs(&base, &other_schema, DEFAULT_FACTOR).unwrap_err();
        assert!(err.contains("schema drift"), "{err}");
        let err = diff_docs(&other_schema, &other_schema, DEFAULT_FACTOR).unwrap_err();
        assert!(err.contains("unknown trajectory schema"), "{err}");
        assert!(diff_docs("nope", &base, DEFAULT_FACTOR).is_err());
    }

    #[test]
    fn smr_rows_gate_rate_and_ack_latency() {
        let row = |rate: f64, p50: u64| {
            format!(
                "{{\"backend\": \"socket\", \"batch\": 4, \"pipeline\": 4, \"n\": 4, \
                 \"f\": 1, \"crashes\": 0, \
                 \"commits_per_sec\": {rate}, \"p50_us\": {p50}}}"
            )
        };
        let doc = |rate: f64, p50: u64| {
            format!(
                "{{\"schema\": \"{SMR_SCHEMA}\", \"rows\": [{}]}}",
                row(rate, p50)
            )
        };
        diff_docs(&doc(1000.0, 8000), &doc(400.0, 30000), DEFAULT_FACTOR)
            .expect("ordinary noise passes");
        // A serving pipeline that slowed 100x is categorical breakage.
        let err = diff_docs(&doc(1000.0, 8000), &doc(9.0, 8000), DEFAULT_FACTOR).unwrap_err();
        assert!(err.contains("commits_per_sec"), "{err}");
        let err = diff_docs(&doc(1000.0, 8000), &doc(1000.0, 900_000), DEFAULT_FACTOR).unwrap_err();
        assert!(err.contains("p50_us"), "{err}");
    }

    #[test]
    fn sim_rows_gate_throughput_and_verifier_work() {
        let doc = |eps: f64, macs: u64| {
            format!(
                "{{\"schema\": \"{SIM_SCHEMA}\", \"rows\": [{{\"scenario\": \"brb2_n256_f85\", \
                 \"events_per_sec\": {eps}, \"verify_macs\": {macs}}}]}}"
            )
        };
        diff_docs(&doc(50_000.0, 1000), &doc(20_000.0, 1000), DEFAULT_FACTOR)
            .expect("ordinary noise passes");
        let err = diff_docs(&doc(50_000.0, 1000), &doc(100.0, 1000), DEFAULT_FACTOR).unwrap_err();
        assert!(err.contains("events_per_sec"), "{err}");
        // A verify cache that stopped amortizing shows up as a
        // deterministic explosion in MACs computed.
        let err = diff_docs(
            &doc(50_000.0, 1000),
            &doc(50_000.0, 700_000),
            DEFAULT_FACTOR,
        )
        .unwrap_err();
        assert!(err.contains("verify_macs"), "{err}");
    }

    #[test]
    fn sim_rows_gate_queue_memory_and_enqueue_drops() {
        let doc = |bytes: u64, drops: u64| {
            format!(
                "{{\"schema\": \"{SIM_SCHEMA}\", \"rows\": [{{\"scenario\": \"brb2_n1024_f341\", \
                 \"events_per_sec\": 1000000.0, \"queue_bytes\": {bytes}, \
                 \"drops_at_enqueue\": {drops}}}]}}"
            )
        };
        diff_docs(
            &doc(500_000, 1_400_000),
            &doc(600_000, 1_400_000),
            DEFAULT_FACTOR,
        )
        .expect("small retained-memory drift passes");
        // A slab or directory that stopped recycling is a deterministic
        // memory blow-up, not noise.
        let err = diff_docs(
            &doc(500_000, 1_400_000),
            &doc(500_000_000, 1_400_000),
            DEFAULT_FACTOR,
        )
        .unwrap_err();
        assert!(err.contains("queue_bytes"), "{err}");
        // Drop counts are exact per scenario; a 30x jump means parties
        // now flood dead recipients that used to be live.
        let err = diff_docs(
            &doc(500_000, 40_000),
            &doc(500_000, 1_400_000),
            DEFAULT_FACTOR,
        )
        .unwrap_err();
        assert!(err.contains("drops_at_enqueue"), "{err}");
        // Zero-drop scenarios (all-honest floods) are skipped, never
        // divided by.
        diff_docs(&doc(500_000, 0), &doc(500_000, 0), DEFAULT_FACTOR).expect("zeros skipped");
    }

    #[test]
    fn committed_baselines_diff_cleanly_against_themselves() {
        // The repo-root trajectory files must be valid diff inputs — this
        // is what CI runs (against a fresh measurement) on every push.
        for path in [
            "../../BENCH_net.json",
            "../../BENCH_smr.json",
            "../../BENCH_sim.json",
        ] {
            let text = std::fs::read_to_string(path).expect(path);
            let summary = diff_docs(&text, &text, DEFAULT_FACTOR).expect(path);
            assert!(summary.contains("rows matched"), "{summary}");
        }
    }
}
