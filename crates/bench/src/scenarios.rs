//! The measured scenarios behind every table/figure row — all built from
//! registry [`ScenarioSpec`]s.
//!
//! Until PR 3 this module hand-wired one `run_*` function per protocol
//! (534 lines of builder glue, duplicated again in `throughput.rs`, four
//! criterion benches, the examples and the integration suites). Every
//! consumer now goes through [`crate::registry`]: a row is a spec plus
//! presentation metadata, and adding a protocol variant is **one**
//! `register_fn` in its `gcl_core` module.

use crate::registry;
use gcl_core::lower_bounds::theorem19;
use gcl_sim::{Outcome, ScenarioSpec, SkewChoice};
use gcl_types::{Config, Duration};

/// Canonical δ for all scenarios: 100µs.
pub const DELTA: Duration = Duration::from_micros(100);
/// Canonical conservative Δ: 1000µs (δ ≪ Δ, as in practice).
pub const BIG_DELTA: Duration = Duration::from_micros(1_000);

/// The registered family's canonical spec at shape `(n, f)` — keychain
/// seed, timing model, δ/Δ, skew and adversary mix all come from the
/// family's registration.
///
/// # Panics
///
/// Panics if `family` is not registered.
pub fn canonical(family: &str, n: usize, f: usize) -> ScenarioSpec {
    registry()
        .spec(family)
        .unwrap_or_else(|e| panic!("{e}"))
        .with_shape(n, f)
}

/// Runs one spec through the registry.
///
/// # Panics
///
/// Panics (with the offending label) if the spec's family is unknown or
/// the shape is outside the family's resilience band — the canonical
/// tables are all statically in-band.
pub fn run(spec: &ScenarioSpec) -> Outcome {
    registry()
        .run(spec)
        .unwrap_or_else(|e| panic!("{}: {e}", spec.label()))
}

/// One measured row of the Table 1 reproduction.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Table row label (problem + timing model).
    pub problem: &'static str,
    /// Resilience band.
    pub resilience: &'static str,
    /// Protocol under test.
    pub protocol: &'static str,
    /// `(n, f)` used.
    pub n: usize,
    /// `(n, f)` used.
    pub f: usize,
    /// The paper's tight bound, rendered.
    pub paper: String,
    /// Measured good-case latency in µs.
    pub measured_us: u64,
    /// Measured commit round (causal depth), where meaningful.
    pub rounds: Option<u32>,
    /// The bound evaluated at the canonical δ/Δ, in µs.
    pub bound_us: u64,
}

impl Table1Row {
    /// Whether the measurement matches the paper's bound exactly (for
    /// round-measured rows) or within one δ (time-measured rows with
    /// skewed starts).
    pub fn matches(&self) -> bool {
        self.measured_us <= self.bound_us
    }
}

/// Presentation metadata + the paper bound for one Table 1 band; the
/// measurements come from the family's registry spec.
struct Table1Def {
    family: &'static str,
    problem: &'static str,
    resilience: &'static str,
    protocol: &'static str,
    shapes: &'static [(usize, usize)],
    paper: fn(Config) -> String,
    /// The bound at the canonical δ/Δ; `rounds` flags round-counted rows.
    bound_us: fn(Config) -> u64,
    rounds_counted: bool,
}

/// The declarative Table 1: every band, its family key, and its bound.
fn table1_defs() -> Vec<Table1Def> {
    const D: u64 = DELTA.as_micros();
    const BIG: u64 = BIG_DELTA.as_micros();
    vec![
        Table1Def {
            family: "brb2",
            problem: "BRB / asynchrony",
            resilience: "n >= 3f+1",
            protocol: "2-round-BRB (Fig 1)",
            shapes: &[(4, 1), (7, 2), (10, 3)],
            paper: |_| "2 rounds".into(),
            bound_us: |_| 2 * D,
            rounds_counted: true,
        },
        Table1Def {
            family: "bracha",
            problem: "BRB / asynchrony (baseline)",
            resilience: "n >= 3f+1",
            protocol: "Bracha'87",
            shapes: &[(4, 1)],
            paper: |_| "3 rounds (unauth UB)".into(),
            bound_us: |_| 3 * D,
            rounds_counted: true,
        },
        Table1Def {
            family: "vbb5f1",
            problem: "psync-BB / partial synchrony",
            resilience: "n >= 5f-1",
            protocol: "(5f-1)-psync-VBB (Fig 3)",
            shapes: &[(4, 1), (9, 2), (14, 3)],
            paper: |_| "2 rounds".into(),
            bound_us: |_| 2 * D,
            rounds_counted: true,
        },
        Table1Def {
            family: "pbft3",
            problem: "psync-BB / partial synchrony",
            resilience: "3f+1 <= n <= 5f-2",
            protocol: "PBFT-style (3 rounds)",
            shapes: &[(8, 2), (11, 3)],
            paper: |_| "3 rounds".into(),
            bound_us: |_| 3 * D,
            rounds_counted: true,
        },
        Table1Def {
            family: "bb_2delta",
            problem: "BB / synchrony",
            resilience: "0 < f < n/3",
            protocol: "2delta-BB (Fig 10)",
            shapes: &[(4, 1), (10, 3)],
            paper: |_| "2*delta".into(),
            bound_us: |_| 2 * D,
            rounds_counted: false,
        },
        Table1Def {
            family: "bb_third",
            problem: "BB / synchrony",
            resilience: "f = n/3",
            protocol: "(Delta+delta)-n/3-BB (Fig 5)",
            shapes: &[(3, 1), (6, 2)],
            paper: |_| "Delta + delta".into(),
            bound_us: |_| BIG + D,
            rounds_counted: false,
        },
        Table1Def {
            family: "bb_sync_start",
            problem: "BB / synchrony (sync start)",
            resilience: "n/3 < f < n/2",
            protocol: "(Delta+delta)-BB (Fig 6)",
            shapes: &[(5, 2), (7, 3)],
            paper: |_| "Delta + delta".into(),
            bound_us: |_| BIG + D,
            rounds_counted: false,
        },
        Table1Def {
            family: "bb_unsync",
            problem: "BB / synchrony (unsync start)",
            resilience: "n/3 < f < n/2",
            protocol: "(Delta+1.5delta)-BB (Fig 9)",
            shapes: &[(5, 2), (7, 3)],
            paper: |_| "Delta + 1.5*delta".into(),
            // + σ = 0.5δ slack for the skewed laggards.
            bound_us: |_| BIG + D + D / 2 + D / 2,
            rounds_counted: false,
        },
        Table1Def {
            family: "bb_majority",
            problem: "BB / synchrony (dishonest majority)",
            resilience: "n/2 <= f < n",
            protocol: "TrustCast fast-path (Wan et al.)",
            shapes: &[(4, 2), (6, 4), (10, 8)],
            paper: |cfg| {
                format!(
                    "[{}Delta, O(n/(n-f))Delta]",
                    cfg.majority_lower_bound_factor()
                )
            },
            bound_us: |cfg| theorem19::upper_bound(cfg, BIG_DELTA).as_micros(),
            rounds_counted: false,
        },
    ]
}

fn lat(o: &Outcome) -> u64 {
    o.good_case_latency()
        .expect("good case must commit")
        .as_micros()
}

/// Every row of Table 1, measured from registry specs.
pub fn table1_rows() -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for def in table1_defs() {
        for &(n, f) in def.shapes {
            let cfg = Config::new(n, f).expect("config");
            let o = run(&canonical(def.family, n, f));
            rows.push(Table1Row {
                problem: def.problem,
                resilience: def.resilience,
                protocol: def.protocol,
                n,
                f,
                paper: (def.paper)(cfg),
                measured_us: lat(&o),
                rounds: def.rounds_counted.then(|| o.good_case_rounds()).flatten(),
                bound_us: (def.bound_us)(cfg),
            });
        }
    }
    rows
}

/// One point of the Figure 8 tradeoff sweep.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Grid resolution.
    pub m: u64,
    /// Measured good-case latency (µs).
    pub measured_us: u64,
    /// The paper's predicted `(1 + 1/2m)Δ + 1.5δ` (µs).
    pub predicted_us: u64,
    /// Point-to-point messages sent.
    pub messages: u64,
}

/// The spec behind one Figure 8 point: the `bb_unsync` family at
/// `(5, 2)`, synchronized start (so the measurement is exact), grid `m`.
pub fn fig8_spec(m: u64) -> ScenarioSpec {
    canonical("bb_unsync", 5, 2)
        .with_seed(208)
        .with_skew(SkewChoice::Synchronized)
        .with_m(m)
}

/// The Figure 8 sweep: latency and message cost vs grid resolution `m`.
pub fn fig8_rows(ms: &[u64]) -> Vec<Fig8Row> {
    ms.iter()
        .map(|&m| {
            let o = run(&fig8_spec(m));
            // Predicted: commit at δ + Δ + 0.5·d* with d* = δ rounded up to
            // the grid = min over grid points ≥ δ; the paper's summary form
            // is (1 + 1/2m)Δ + 1.5δ.
            let grid_step = BIG_DELTA.as_micros() / m;
            let d_star = DELTA.as_micros().div_ceil(grid_step) * grid_step;
            let predicted = DELTA.as_micros() + BIG_DELTA.as_micros() + d_star / 2;
            Fig8Row {
                m,
                measured_us: o.good_case_latency().expect("commits").as_micros(),
                predicted_us: predicted,
                messages: o.messages_sent(),
            }
        })
        .collect()
}

/// One point of the dishonest-majority scaling series.
#[derive(Debug, Clone)]
pub struct MajorityRow {
    /// Parties.
    pub n: usize,
    /// Fault budget.
    pub f: usize,
    /// `⌊n/(n−f)⌋ − 1` lower-bound factor.
    pub lower_bound_us: u64,
    /// Measured (µs).
    pub measured_us: u64,
    /// Implementation upper bound (µs).
    pub upper_bound_us: u64,
}

/// The Theorem 19 / Section 5.5 scaling series (the `bb_majority` family
/// with its canonical all-`f`-silent adversary mix).
pub fn majority_rows(pairs: &[(usize, usize)]) -> Vec<MajorityRow> {
    pairs
        .iter()
        .map(|&(n, f)| {
            let cfg = Config::new(n, f).expect("config");
            let o = run(&canonical("bb_majority", n, f));
            MajorityRow {
                n,
                f,
                lower_bound_us: theorem19::lower_bound(cfg, BIG_DELTA).as_micros(),
                measured_us: o.good_case_latency().expect("commits").as_micros(),
                upper_bound_us: theorem19::upper_bound(cfg, BIG_DELTA).as_micros(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table1_row_within_bound() {
        for row in table1_rows() {
            assert!(
                row.matches(),
                "{} {} (n={}, f={}): measured {}us > bound {}us",
                row.problem,
                row.protocol,
                row.n,
                row.f,
                row.measured_us,
                row.bound_us
            );
        }
    }

    #[test]
    fn table1_round_counts_exact() {
        let rows = table1_rows();
        for row in &rows {
            match row.protocol {
                "2-round-BRB (Fig 1)" => assert_eq!(row.rounds, Some(2)),
                "Bracha'87" => assert_eq!(row.rounds, Some(3)),
                "(5f-1)-psync-VBB (Fig 3)" => assert_eq!(row.rounds, Some(2)),
                "PBFT-style (3 rounds)" => assert_eq!(row.rounds, Some(3)),
                _ => {}
            }
        }
    }

    #[test]
    fn table1_shapes_all_inside_registered_bands() {
        let reg = crate::registry();
        for def in table1_defs() {
            let family = reg
                .family(def.family)
                .unwrap_or_else(|| panic!("table references unregistered family {:?}", def.family));
            for &(n, f) in def.shapes {
                assert!(
                    family.admission().admits(n, f),
                    "{}: ({n}, {f}) outside {}",
                    def.family,
                    family.admission().describe()
                );
            }
        }
    }

    #[test]
    fn fig8_monotone_latency_and_messages() {
        let rows = fig8_rows(&[1, 2, 5, 10]);
        for w in rows.windows(2) {
            assert!(w[1].measured_us <= w[0].measured_us, "latency shrinks");
            assert!(w[1].messages >= w[0].messages, "messages grow");
        }
        for r in &rows {
            assert_eq!(r.measured_us, r.predicted_us, "m={}", r.m);
        }
    }

    #[test]
    fn majority_between_bounds() {
        for r in majority_rows(&[(4, 2), (6, 4), (10, 8)]) {
            assert!(r.measured_us >= r.lower_bound_us, "n={}", r.n);
            assert!(r.measured_us <= r.upper_bound_us, "n={}", r.n);
        }
    }
}
