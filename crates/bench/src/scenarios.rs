//! The measured scenarios behind every table/figure row.

use gcl_core::asynchrony::{BrachaBrb, TwoRoundBrb};
use gcl_core::dishonest::BbMajority;
use gcl_core::lower_bounds::theorem19;
use gcl_core::psync::{PbftPsyncVbb, VbbFiveFMinusOne};
use gcl_core::sync::{SyncStartBb, ThirdBb, TwoDeltaBb, UnsyncBb};
use gcl_crypto::Keychain;
use gcl_sim::{FixedDelay, Outcome, Silent, Simulation, TimingModel};
use gcl_types::{accept_all, Config, Duration, GlobalTime, PartyId, SkewSchedule, Value};

/// Canonical δ for all scenarios: 100µs.
pub const DELTA: Duration = Duration::from_micros(100);
/// Canonical conservative Δ: 1000µs (δ ≪ Δ, as in practice).
pub const BIG_DELTA: Duration = Duration::from_micros(1_000);

const INPUT: Value = Value::new(42);

fn sync_model() -> TimingModel {
    TimingModel::Synchrony {
        delta: DELTA,
        big_delta: BIG_DELTA,
    }
}

fn psync_model() -> TimingModel {
    TimingModel::PartialSynchrony {
        gst: GlobalTime::ZERO,
        big_delta: DELTA,
    }
}

/// One measured row of the Table 1 reproduction.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Table row label (problem + timing model).
    pub problem: &'static str,
    /// Resilience band.
    pub resilience: &'static str,
    /// Protocol under test.
    pub protocol: &'static str,
    /// `(n, f)` used.
    pub n: usize,
    /// `(n, f)` used.
    pub f: usize,
    /// The paper's tight bound, rendered.
    pub paper: String,
    /// Measured good-case latency in µs.
    pub measured_us: u64,
    /// Measured commit round (causal depth), where meaningful.
    pub rounds: Option<u32>,
    /// The bound evaluated at the canonical δ/Δ, in µs.
    pub bound_us: u64,
}

impl Table1Row {
    /// Whether the measurement matches the paper's bound exactly (for
    /// round-measured rows) or within one δ (time-measured rows with
    /// skewed starts).
    pub fn matches(&self) -> bool {
        self.measured_us <= self.bound_us
    }
}

/// Good case of the 2-round BRB (async row of Table 1).
pub fn run_brb2(n: usize, f: usize) -> Outcome {
    let cfg = Config::new(n, f).expect("config");
    let chain = Keychain::generate(n, 200);
    Simulation::build(cfg)
        .timing(TimingModel::Asynchrony)
        .oracle(FixedDelay::new(DELTA))
        .spawn_honest(|p| {
            TwoRoundBrb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                PartyId::new(0),
                (p == PartyId::new(0)).then_some(INPUT),
            )
        })
        .run()
}

/// Good case of Bracha's BRB (the 3-round unauthenticated baseline).
pub fn run_bracha(n: usize, f: usize) -> Outcome {
    let cfg = Config::new(n, f).expect("config");
    Simulation::build(cfg)
        .timing(TimingModel::Asynchrony)
        .oracle(FixedDelay::new(DELTA))
        .spawn_honest(|p| {
            BrachaBrb::new(
                cfg,
                p,
                PartyId::new(0),
                (p == PartyId::new(0)).then_some(INPUT),
            )
        })
        .run()
}

/// Good case of the (5f−1)-psync-VBB.
pub fn run_vbb(n: usize, f: usize) -> Outcome {
    let cfg = Config::new(n, f).expect("config");
    let chain = Keychain::generate(n, 201);
    Simulation::build(cfg)
        .timing(psync_model())
        .oracle(FixedDelay::new(DELTA))
        .spawn_honest(|p| {
            VbbFiveFMinusOne::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                accept_all(),
                DELTA,
                (p == PartyId::new(0)).then_some(INPUT),
            )
        })
        .run()
}

/// Good case of PBFT-style 3-round psync-VBB.
pub fn run_pbft(n: usize, f: usize) -> Outcome {
    let cfg = Config::new(n, f).expect("config");
    let chain = Keychain::generate(n, 202);
    Simulation::build(cfg)
        .timing(psync_model())
        .oracle(FixedDelay::new(DELTA))
        .spawn_honest(|p| {
            PbftPsyncVbb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                accept_all(),
                DELTA,
                (p == PartyId::new(0)).then_some(INPUT),
            )
        })
        .run()
}

/// Good case of 2δ-BB (f < n/3), unsynchronized start.
pub fn run_2delta(n: usize, f: usize) -> Outcome {
    let cfg = Config::new(n, f).expect("config");
    let chain = Keychain::generate(n, 203);
    Simulation::build(cfg)
        .timing(sync_model())
        .oracle(FixedDelay::new(DELTA))
        .spawn_honest(|p| {
            TwoDeltaBb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                BIG_DELTA,
                PartyId::new(0),
                (p == PartyId::new(0)).then_some(INPUT),
            )
        })
        .run()
}

/// Good case of (Δ+δ)-n/3-BB (f = n/3), unsynchronized start.
pub fn run_third(n: usize, f: usize) -> Outcome {
    let cfg = Config::new(n, f).expect("config");
    let chain = Keychain::generate(n, 204);
    Simulation::build(cfg)
        .timing(sync_model())
        .oracle(FixedDelay::new(DELTA))
        .spawn_honest(|p| {
            ThirdBb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                BIG_DELTA,
                PartyId::new(0),
                (p == PartyId::new(0)).then_some(INPUT),
            )
        })
        .run()
}

/// Good case of (Δ+δ)-BB (n/3 < f < n/2), synchronized start.
pub fn run_sync_start(n: usize, f: usize) -> Outcome {
    let cfg = Config::new(n, f).expect("config");
    let chain = Keychain::generate(n, 205);
    Simulation::build(cfg)
        .timing(sync_model())
        .oracle(FixedDelay::new(DELTA))
        .spawn_honest(|p| {
            SyncStartBb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                BIG_DELTA,
                PartyId::new(0),
                (p == PartyId::new(0)).then_some(INPUT),
            )
        })
        .run()
}

/// Good case of (Δ+1.5δ)-BB (n/3 < f < n/2), unsynchronized start with
/// skew 0.5δ, grid resolution `m`.
pub fn run_unsync(n: usize, f: usize, m: u64) -> Outcome {
    let cfg = Config::new(n, f).expect("config");
    let chain = Keychain::generate(n, 206);
    let late: Vec<(PartyId, Duration)> = (1..n as u32)
        .filter(|i| i % 2 == 1)
        .map(|i| (PartyId::new(i), DELTA.halved()))
        .collect();
    Simulation::build(cfg)
        .timing(sync_model())
        .oracle(FixedDelay::new(DELTA))
        .skew(SkewSchedule::with_late_parties(n, &late))
        .spawn_honest(|p| {
            UnsyncBb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                BIG_DELTA,
                m,
                PartyId::new(0),
                (p == PartyId::new(0)).then_some(INPUT),
            )
        })
        .run()
}

/// Good case of the dishonest-majority BB with all `f` Byzantine silent.
pub fn run_majority(n: usize, f: usize) -> Outcome {
    let cfg = Config::new(n, f).expect("config");
    let chain = Keychain::generate(n, 207);
    let mut b = Simulation::build(cfg)
        .timing(TimingModel::lockstep(BIG_DELTA))
        .oracle(FixedDelay::new(BIG_DELTA));
    for i in (n - f) as u32..n as u32 {
        b = b.byzantine(PartyId::new(i), Silent::new());
    }
    b.spawn_honest(|p| {
        BbMajority::new(
            cfg,
            chain.signer(p),
            chain.pki(),
            BIG_DELTA,
            PartyId::new(0),
            (p == PartyId::new(0)).then_some(INPUT),
        )
    })
    .run()
}

fn lat(o: &Outcome) -> u64 {
    o.good_case_latency()
        .expect("good case must commit")
        .as_micros()
}

/// Every row of Table 1, measured.
pub fn table1_rows() -> Vec<Table1Row> {
    let d = DELTA.as_micros();
    let big = BIG_DELTA.as_micros();
    let mut rows = Vec::new();

    for (n, f) in [(4, 1), (7, 2), (10, 3)] {
        let o = run_brb2(n, f);
        rows.push(Table1Row {
            problem: "BRB / asynchrony",
            resilience: "n >= 3f+1",
            protocol: "2-round-BRB (Fig 1)",
            n,
            f,
            paper: "2 rounds".into(),
            measured_us: lat(&o),
            rounds: o.good_case_rounds(),
            bound_us: 2 * d,
        });
    }
    {
        let o = run_bracha(4, 1);
        rows.push(Table1Row {
            problem: "BRB / asynchrony (baseline)",
            resilience: "n >= 3f+1",
            protocol: "Bracha'87",
            n: 4,
            f: 1,
            paper: "3 rounds (unauth UB)".into(),
            measured_us: lat(&o),
            rounds: o.good_case_rounds(),
            bound_us: 3 * d,
        });
    }
    for (n, f) in [(4, 1), (9, 2), (14, 3)] {
        let o = run_vbb(n, f);
        rows.push(Table1Row {
            problem: "psync-BB / partial synchrony",
            resilience: "n >= 5f-1",
            protocol: "(5f-1)-psync-VBB (Fig 3)",
            n,
            f,
            paper: "2 rounds".into(),
            measured_us: lat(&o),
            rounds: o.good_case_rounds(),
            bound_us: 2 * d,
        });
    }
    for (n, f) in [(8, 2), (11, 3)] {
        let o = run_pbft(n, f);
        rows.push(Table1Row {
            problem: "psync-BB / partial synchrony",
            resilience: "3f+1 <= n <= 5f-2",
            protocol: "PBFT-style (3 rounds)",
            n,
            f,
            paper: "3 rounds".into(),
            measured_us: lat(&o),
            rounds: o.good_case_rounds(),
            bound_us: 3 * d,
        });
    }
    for (n, f) in [(4, 1), (10, 3)] {
        let o = run_2delta(n, f);
        rows.push(Table1Row {
            problem: "BB / synchrony",
            resilience: "0 < f < n/3",
            protocol: "2delta-BB (Fig 10)",
            n,
            f,
            paper: "2*delta".into(),
            measured_us: lat(&o),
            rounds: None,
            bound_us: 2 * d,
        });
    }
    for (n, f) in [(3, 1), (6, 2)] {
        let o = run_third(n, f);
        rows.push(Table1Row {
            problem: "BB / synchrony",
            resilience: "f = n/3",
            protocol: "(Delta+delta)-n/3-BB (Fig 5)",
            n,
            f,
            paper: "Delta + delta".into(),
            measured_us: lat(&o),
            rounds: None,
            bound_us: big + d,
        });
    }
    for (n, f) in [(5, 2), (7, 3)] {
        let o = run_sync_start(n, f);
        rows.push(Table1Row {
            problem: "BB / synchrony (sync start)",
            resilience: "n/3 < f < n/2",
            protocol: "(Delta+delta)-BB (Fig 6)",
            n,
            f,
            paper: "Delta + delta".into(),
            measured_us: lat(&o),
            rounds: None,
            bound_us: big + d,
        });
    }
    for (n, f) in [(5, 2), (7, 3)] {
        let o = run_unsync(n, f, 10);
        rows.push(Table1Row {
            problem: "BB / synchrony (unsync start)",
            resilience: "n/3 < f < n/2",
            protocol: "(Delta+1.5delta)-BB (Fig 9)",
            n,
            f,
            paper: "Delta + 1.5*delta".into(),
            measured_us: lat(&o),
            rounds: None,
            // + σ = 0.5δ slack for the skewed laggards.
            bound_us: big + d + d / 2 + d / 2,
        });
    }
    for (n, f) in [(4, 2), (6, 4), (10, 8)] {
        let cfg = Config::new(n, f).expect("config");
        let o = run_majority(n, f);
        rows.push(Table1Row {
            problem: "BB / synchrony (dishonest majority)",
            resilience: "n/2 <= f < n",
            protocol: "TrustCast fast-path (Wan et al.)",
            n,
            f,
            paper: format!(
                "[{}Delta, O(n/(n-f))Delta]",
                cfg.majority_lower_bound_factor()
            ),
            measured_us: lat(&o),
            rounds: None,
            bound_us: theorem19::upper_bound(cfg, BIG_DELTA).as_micros(),
        });
    }
    rows
}

/// One point of the Figure 8 tradeoff sweep.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Grid resolution.
    pub m: u64,
    /// Measured good-case latency (µs).
    pub measured_us: u64,
    /// The paper's predicted `(1 + 1/2m)Δ + 1.5δ` (µs).
    pub predicted_us: u64,
    /// Point-to-point messages sent.
    pub messages: u64,
}

/// The Figure 8 sweep: latency and message cost vs grid resolution `m`
/// (synchronized start so the measurement is exact).
pub fn fig8_rows(ms: &[u64]) -> Vec<Fig8Row> {
    let cfg = Config::new(5, 2).expect("config");
    let chain = Keychain::generate(5, 208);
    ms.iter()
        .map(|&m| {
            let o = Simulation::build(cfg)
                .timing(sync_model())
                .oracle(FixedDelay::new(DELTA))
                .spawn_honest(|p| {
                    UnsyncBb::new(
                        cfg,
                        chain.signer(p),
                        chain.pki(),
                        BIG_DELTA,
                        m,
                        PartyId::new(0),
                        (p == PartyId::new(0)).then_some(INPUT),
                    )
                })
                .run();
            // Predicted: commit at δ + Δ + 0.5·d* with d* = δ rounded up to
            // the grid = min over grid points ≥ δ; the paper's summary form
            // is (1 + 1/2m)Δ + 1.5δ.
            let grid_step = BIG_DELTA.as_micros() / m;
            let d_star = DELTA.as_micros().div_ceil(grid_step) * grid_step;
            let predicted = DELTA.as_micros() + BIG_DELTA.as_micros() + d_star / 2;
            Fig8Row {
                m,
                measured_us: o.good_case_latency().expect("commits").as_micros(),
                predicted_us: predicted,
                messages: o.messages_sent(),
            }
        })
        .collect()
}

/// One point of the dishonest-majority scaling series.
#[derive(Debug, Clone)]
pub struct MajorityRow {
    /// Parties.
    pub n: usize,
    /// Fault budget.
    pub f: usize,
    /// `⌊n/(n−f)⌋ − 1` lower-bound factor.
    pub lower_bound_us: u64,
    /// Measured (µs).
    pub measured_us: u64,
    /// Implementation upper bound (µs).
    pub upper_bound_us: u64,
}

/// The Theorem 19 / Section 5.5 scaling series.
pub fn majority_rows(pairs: &[(usize, usize)]) -> Vec<MajorityRow> {
    pairs
        .iter()
        .map(|&(n, f)| {
            let cfg = Config::new(n, f).expect("config");
            let o = run_majority(n, f);
            MajorityRow {
                n,
                f,
                lower_bound_us: theorem19::lower_bound(cfg, BIG_DELTA).as_micros(),
                measured_us: o.good_case_latency().expect("commits").as_micros(),
                upper_bound_us: theorem19::upper_bound(cfg, BIG_DELTA).as_micros(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table1_row_within_bound() {
        for row in table1_rows() {
            assert!(
                row.matches(),
                "{} {} (n={}, f={}): measured {}us > bound {}us",
                row.problem,
                row.protocol,
                row.n,
                row.f,
                row.measured_us,
                row.bound_us
            );
        }
    }

    #[test]
    fn table1_round_counts_exact() {
        let rows = table1_rows();
        for row in &rows {
            match row.protocol {
                "2-round-BRB (Fig 1)" => assert_eq!(row.rounds, Some(2)),
                "Bracha'87" => assert_eq!(row.rounds, Some(3)),
                "(5f-1)-psync-VBB (Fig 3)" => assert_eq!(row.rounds, Some(2)),
                "PBFT-style (3 rounds)" => assert_eq!(row.rounds, Some(3)),
                _ => {}
            }
        }
    }

    #[test]
    fn fig8_monotone_latency_and_messages() {
        let rows = fig8_rows(&[1, 2, 5, 10]);
        for w in rows.windows(2) {
            assert!(w[1].measured_us <= w[0].measured_us, "latency shrinks");
            assert!(w[1].messages >= w[0].messages, "messages grow");
        }
        for r in &rows {
            assert_eq!(r.measured_us, r.predicted_us, "m={}", r.m);
        }
    }

    #[test]
    fn majority_between_bounds() {
        for r in majority_rows(&[(4, 2), (6, 4), (10, 8)]) {
            assert!(r.measured_us >= r.lower_bound_us, "n={}", r.n);
            assert!(r.measured_us <= r.upper_bound_us, "n={}", r.n);
        }
    }
}
