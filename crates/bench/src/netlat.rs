//! The wall-clock latency trajectory: per-family good-case latencies on
//! the wall backends, rendered as the repo-root `BENCH_net.json`.
//!
//! `BENCH_sim.json` tracks simulator *throughput* per PR; this module
//! tracks wall-clock *runtime overhead* the same way. For every registered
//! family it runs the wall-safe conformance spec on each wall backend
//! ([`crate::conformance::wall_backends`]: the in-memory thread engine and
//! the socket engine) and records the good-case wall latency next to the
//! spec's injected ideal — δ' per hop, so a 2-round protocol's floor is
//! `2δ'`. The gap between the measured column and the floor is scheduler,
//! channel, and (for the socket rows) codec + syscall overhead; watching
//! it per PR is how a runtime regression (a lost fast path, an accidental
//! sleep) shows up before anyone reads a profile.
//!
//! Wall numbers are machine-dependent, so unlike the throughput gate this
//! file's CI check ([`check_rows`]) validates *shape*, not speed: same
//! schema, every registered family present per backend, every row
//! committed with agreement. Regeneration:
//!
//! ```text
//! cargo run --release -p gcl_bench --bin net_latency -- --out BENCH_net.json
//! ```

use crate::conformance::{wall_backends, wall_spec, WALL_DELTA};
use crate::json::{parse, JVal, RowsDoc, Value as JsonValue};
use crate::registry;
use std::time::Duration;

/// The `schema` field of every `BENCH_net.json` document.
pub const NET_SCHEMA: &str = "gcl-bench/net-latency/v1";

/// One family × backend wall-clock measurement.
#[derive(Debug, Clone)]
pub struct NetLatencyRow {
    /// Registered family key.
    pub family: &'static str,
    /// Wall backend that produced the row (`"net"`, `"socket"`).
    pub backend: &'static str,
    /// Parties in the wall-safe spec.
    pub n: usize,
    /// Fault budget.
    pub f: usize,
    /// Injected per-hop link latency in µs (the spec's δ').
    pub delta_us: u64,
    /// Measured good-case wall latency in µs (`None`: not every honest
    /// party committed — a liveness failure the check rejects).
    pub latency_us: Option<u64>,
    /// Whether agreement held.
    pub agreement: bool,
    /// Point-to-point messages delivered.
    pub messages: u64,
}

/// Runs every registered family on every wall backend (each run bounded
/// by `deadline`) and reports rows in (family, backend) order.
pub fn net_latency_rows(deadline: Duration) -> Vec<NetLatencyRow> {
    let reg = registry();
    let backends = wall_backends(deadline);
    reg.keys()
        .flat_map(|key| {
            let spec = wall_spec(reg, key);
            backends
                .iter()
                .map(|backend| {
                    let o = reg
                        .run_on(&spec, backend.as_ref())
                        .unwrap_or_else(|e| panic!("{key}: {} run rejected: {e}", backend.name()));
                    NetLatencyRow {
                        family: key,
                        backend: backend.name(),
                        n: spec.n,
                        f: spec.f,
                        delta_us: WALL_DELTA.as_micros(),
                        latency_us: o.good_case_latency().map(|d| d.as_micros()),
                        agreement: o.agreement_holds(),
                        messages: o.messages_sent(),
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Renders rows as the `BENCH_net.json` document ([`RowsDoc`] format, the
/// same schema-plus-rows shape as every other trajectory file).
pub fn render_json(rows: &[NetLatencyRow]) -> String {
    let mut doc = RowsDoc::new(NET_SCHEMA);
    doc.top("delta_us", JVal::U64(WALL_DELTA.as_micros()));
    for r in rows {
        doc.row(vec![
            ("family", JVal::Str(r.family.into())),
            ("backend", JVal::Str(r.backend.into())),
            ("n", JVal::U64(r.n as u64)),
            ("f", JVal::U64(r.f as u64)),
            ("delta_us", JVal::U64(r.delta_us)),
            ("latency_us", r.latency_us.map_or(JVal::Null, JVal::U64)),
            ("agreement", JVal::Bool(r.agreement)),
            ("messages", JVal::U64(r.messages)),
        ]);
    }
    doc.render()
}

/// Structural CI check of a `BENCH_net.json` document: parseable, right
/// schema, one committed-with-agreement row per (registered family × wall
/// backend). Deliberately **no** latency-regression gate — wall latency is
/// machine noise across CI runners; the trajectory file exists so humans
/// (and future tooling pinned to one machine) can diff the overhead per
/// PR.
///
/// # Errors
///
/// A human-readable description of the first structural violation.
pub fn check_doc(text: &str) -> Result<usize, String> {
    let doc = parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
    check_parsed(&doc)
}

fn check_parsed(doc: &JsonValue) -> Result<usize, String> {
    if doc.field_str("schema") != Some(NET_SCHEMA) {
        return Err(format!(
            "schema is {:?}, expected {NET_SCHEMA:?}",
            doc.field_str("schema")
        ));
    }
    let rows = doc
        .field("rows")
        .and_then(JsonValue::as_array)
        .ok_or("missing rows array")?;
    let reg = registry();
    // Derive the required column set from the canonical backend catalog,
    // so a wall backend added to `wall_backends` is automatically
    // *required* here — measured-but-unchecked rows would defeat the gate.
    let backends: Vec<&'static str> = wall_backends(Duration::from_secs(1))
        .iter()
        .map(|b| b.name())
        .collect();
    for key in reg.keys() {
        for backend in backends.iter().copied() {
            let row = rows
                .iter()
                .find(|r| {
                    r.field_str("family") == Some(key) && r.field_str("backend") == Some(backend)
                })
                .ok_or_else(|| format!("no row for family {key:?} on backend {backend:?}"))?;
            if row.field_bool("agreement") != Some(true) {
                return Err(format!("{key}/{backend}: agreement violated"));
            }
            if row.field_u64("latency_us").is_none() {
                return Err(format!(
                    "{key}/{backend}: no good-case latency (liveness failure)"
                ));
            }
        }
    }
    Ok(rows.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_rows_pass_their_own_check() {
        // Two fast families keep the unit test cheap; the full-catalog
        // document is exercised by the net_latency bin and its CI job.
        let reg = registry();
        let backends = wall_backends(Duration::from_secs(2));
        let rows: Vec<NetLatencyRow> = ["brb2", "one_round_brb"]
            .iter()
            .flat_map(|key| {
                let spec = wall_spec(reg, key);
                backends
                    .iter()
                    .map(|b| {
                        let o = reg.run_on(&spec, b.as_ref()).unwrap();
                        NetLatencyRow {
                            family: reg.family(key).unwrap().key(),
                            backend: b.name(),
                            n: spec.n,
                            f: spec.f,
                            delta_us: WALL_DELTA.as_micros(),
                            latency_us: o.good_case_latency().map(|d| d.as_micros()),
                            agreement: o.agreement_holds(),
                            messages: o.messages_sent(),
                        }
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let doc = render_json(&rows);
        let parsed = parse(&doc).expect("well-formed");
        assert_eq!(parsed.field_str("schema"), Some(NET_SCHEMA));
        // The partial document fails the full-catalog check (families are
        // missing), which is exactly what the check is for.
        assert!(check_doc(&doc).is_err(), "partial catalog must be rejected");
        // Each measured row carries a latency at or above the 2-hop floor.
        for r in &rows {
            assert!(r.agreement, "{}/{}", r.family, r.backend);
            let lat = r.latency_us.expect("good case commits");
            assert!(
                lat >= r.delta_us,
                "{}/{}: {lat}µs under the single-hop floor",
                r.family,
                r.backend
            );
        }
    }

    #[test]
    fn check_rejects_malformed_documents() {
        assert!(check_doc("not json").is_err());
        assert!(check_doc("{\"schema\": \"other/v9\", \"rows\": []}").is_err());
        let empty = format!("{{\"schema\": \"{NET_SCHEMA}\", \"rows\": []}}");
        let err = check_doc(&empty).unwrap_err();
        assert!(err.contains("no row for family"), "{err}");
    }
}
