//! The wall-clock latency trajectory: per-family good-case latencies on
//! the wall backends, rendered as the repo-root `BENCH_net.json`.
//!
//! `BENCH_sim.json` tracks simulator *throughput* per PR; this module
//! tracks wall-clock *runtime overhead* the same way. For every registered
//! family it runs the wall-safe conformance spec on each wall backend
//! ([`crate::conformance::wall_backends`]: the in-memory thread engine,
//! the socket engine, and the readiness-loop engine) and records the
//! good-case wall latency next to the spec's injected ideal — δ' per hop,
//! so a 2-round protocol's floor is `2δ'`. The gap between the measured
//! column and the floor is scheduler, channel, and (for the socket/async
//! rows) codec + syscall overhead; watching it per PR is how a runtime
//! regression (a lost fast path, an accidental sleep) shows up before
//! anyone reads a profile.
//!
//! v2 adds the **scale rows**: [`SCALE_FAMILIES`] × [`SCALE_NS`] on the
//! async backend only — the thread-per-party backends cap out in the low
//! hundreds of parties, the readiness loop multiplexes n = 1024 over a
//! handful of workers. Scale rows (and every async row) carry the
//! backend's [`SchedCounters`]: worker-pool size, readiness wakeups, and
//! the peak outbound-queue depth, so a backpressure regression is visible
//! in the trajectory diff. Row identity is now `(family, backend, n)`.
//!
//! Wall numbers are machine-dependent, so unlike the throughput gate this
//! file's CI check ([`check_doc`]) validates *shape*, not speed: same
//! schema, every registered family present per backend, every scale row
//! present, every row committed with agreement. Regeneration:
//!
//! ```text
//! cargo run --release -p gcl_bench --bin net_latency -- --out BENCH_net.json
//! ```

use crate::conformance::{wall_backends, wall_spec, WALL_DELTA};
use crate::json::{parse, JVal, RowsDoc, Value as JsonValue};
use crate::registry;
use gcl_net::AsyncBackend;
use gcl_sim::SchedCounters;
use gcl_types::Duration as SimDuration;
use std::time::Duration;

/// The `schema` field of every `BENCH_net.json` document. v2: row
/// identity is `(family, backend, n)` (the async backend measures the
/// same family at several scales), async rows carry scheduler counters.
pub const NET_SCHEMA: &str = "gcl-bench/net-latency/v2";

/// Families measured at scale on the async backend: the pure event-loop
/// stress (`flood`, `O(n²)` trivial messages) and the crypto-bearing
/// 2-round broadcast (`brb2`, `O(n²)` signed votes).
pub const SCALE_FAMILIES: [&str; 2] = ["flood", "brb2"];

/// Party counts of the scale rows — up to the simulator's own largest
/// measured shape (`BENCH_sim.json` stops at n = 1024 too).
pub const SCALE_NS: [usize; 3] = [256, 512, 1024];

/// One family × backend × shape wall-clock measurement.
#[derive(Debug, Clone)]
pub struct NetLatencyRow {
    /// Registered family key.
    pub family: &'static str,
    /// Wall backend that produced the row (`"net"`, `"socket"`,
    /// `"async"`).
    pub backend: &'static str,
    /// Parties in the measured spec.
    pub n: usize,
    /// Fault budget.
    pub f: usize,
    /// Injected per-hop link latency in µs (the spec's δ').
    pub delta_us: u64,
    /// Measured good-case wall latency in µs (`None`: not every honest
    /// party committed — a liveness failure the check rejects).
    pub latency_us: Option<u64>,
    /// Whether agreement held.
    pub agreement: bool,
    /// Point-to-point messages delivered.
    pub messages: u64,
    /// Worker-pool scheduler counters — `Some` on the async backend,
    /// `None` on the thread-per-party backends.
    pub sched: Option<SchedCounters>,
}

/// Runs every registered family on every wall backend (each run bounded
/// by `deadline`) and reports rows in (family, backend) order.
pub fn net_latency_rows(deadline: Duration) -> Vec<NetLatencyRow> {
    let reg = registry();
    let backends = wall_backends(deadline);
    reg.keys()
        .flat_map(|key| {
            let spec = wall_spec(reg, key);
            backends
                .iter()
                .map(|backend| {
                    let o = reg
                        .run_on(&spec, backend.as_ref())
                        .unwrap_or_else(|e| panic!("{key}: {} run rejected: {e}", backend.name()));
                    NetLatencyRow {
                        family: key,
                        backend: backend.name(),
                        n: spec.n,
                        f: spec.f,
                        delta_us: WALL_DELTA.as_micros(),
                        latency_us: o.good_case_latency().map(|d| d.as_micros()),
                        agreement: o.agreement_holds(),
                        messages: o.messages_sent(),
                        sched: o.sched_counters(),
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// The wall-safe spec of one scale row: the family's conformance spec
/// reshaped to `(n, 1)`, with Δ' raised to seconds — at n = 1024 a single
/// good-case round is ~10⁶ frames of real socket I/O, so the conformance
/// Δ' (tens of ms) would let view timers fire spuriously mid-round.
/// Timers never fire on the good-case path, so the huge Δ' costs no wall
/// time.
pub fn scale_spec(key: &str, n: usize) -> gcl_sim::ScenarioSpec {
    wall_spec(registry(), key)
        .with_shape(n, 1)
        .with_bounds(WALL_DELTA, SimDuration::from_millis(5_000))
}

/// Measures the [`SCALE_FAMILIES`] × [`SCALE_NS`] grid on the async
/// backend (its worker pool at the default `min(cores, 8)`), each run
/// bounded by `deadline` — pass a generous one: the n = 1024 rows move
/// ~2 M real frames.
pub fn scale_rows(deadline: Duration) -> Vec<NetLatencyRow> {
    let reg = registry();
    let backend = AsyncBackend::new().deadline(deadline);
    SCALE_FAMILIES
        .iter()
        .flat_map(|&key| {
            SCALE_NS.iter().map(move |&n| {
                let spec = scale_spec(key, n);
                let o = reg
                    .run_on(&spec, &backend)
                    .unwrap_or_else(|e| panic!("{key} n={n}: async run rejected: {e}"));
                NetLatencyRow {
                    family: key,
                    backend: "async",
                    n: spec.n,
                    f: spec.f,
                    delta_us: WALL_DELTA.as_micros(),
                    latency_us: o.good_case_latency().map(|d| d.as_micros()),
                    agreement: o.agreement_holds(),
                    messages: o.messages_sent(),
                    sched: o.sched_counters(),
                }
            })
        })
        .collect()
}

/// Renders rows as the `BENCH_net.json` document ([`RowsDoc`] format, the
/// same schema-plus-rows shape as every other trajectory file).
pub fn render_json(rows: &[NetLatencyRow]) -> String {
    let mut doc = RowsDoc::new(NET_SCHEMA);
    doc.top("delta_us", JVal::U64(WALL_DELTA.as_micros()));
    for r in rows {
        doc.row(vec![
            ("family", JVal::Str(r.family.into())),
            ("backend", JVal::Str(r.backend.into())),
            ("n", JVal::U64(r.n as u64)),
            ("f", JVal::U64(r.f as u64)),
            ("delta_us", JVal::U64(r.delta_us)),
            ("latency_us", r.latency_us.map_or(JVal::Null, JVal::U64)),
            ("agreement", JVal::Bool(r.agreement)),
            ("messages", JVal::U64(r.messages)),
            (
                "workers",
                r.sched.map_or(JVal::Null, |s| JVal::U64(s.workers as u64)),
            ),
            (
                "wakeups",
                r.sched.map_or(JVal::Null, |s| JVal::U64(s.wakeups)),
            ),
            (
                "peak_out_bytes",
                r.sched
                    .map_or(JVal::Null, |s| JVal::U64(s.peak_outbound_bytes as u64)),
            ),
        ]);
    }
    doc.render()
}

/// Structural CI check of a `BENCH_net.json` document: parseable, right
/// schema, one committed-with-agreement row per (registered family × wall
/// backend), every [`SCALE_FAMILIES`] × [`SCALE_NS`] async scale row
/// present and committed, and every async row carrying scheduler
/// counters. Deliberately **no** latency-regression gate — wall latency
/// is machine noise across CI runners; the trajectory file exists so
/// humans (and future tooling pinned to one machine) can diff the
/// overhead per PR.
///
/// # Errors
///
/// A human-readable description of the first structural violation.
pub fn check_doc(text: &str) -> Result<usize, String> {
    let doc = parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
    check_parsed(&doc)
}

fn check_parsed(doc: &JsonValue) -> Result<usize, String> {
    if doc.field_str("schema") != Some(NET_SCHEMA) {
        return Err(format!(
            "schema is {:?}, expected {NET_SCHEMA:?}",
            doc.field_str("schema")
        ));
    }
    let rows = doc
        .field("rows")
        .and_then(JsonValue::as_array)
        .ok_or("missing rows array")?;
    let reg = registry();
    // Derive the required column set from the canonical backend catalog,
    // so a wall backend added to `wall_backends` is automatically
    // *required* here — measured-but-unchecked rows would defeat the gate.
    let backends: Vec<&'static str> = wall_backends(Duration::from_secs(1))
        .iter()
        .map(|b| b.name())
        .collect();
    for key in reg.keys() {
        for backend in backends.iter().copied() {
            let row = rows
                .iter()
                .find(|r| {
                    r.field_str("family") == Some(key) && r.field_str("backend") == Some(backend)
                })
                .ok_or_else(|| format!("no row for family {key:?} on backend {backend:?}"))?;
            row_committed(row, key, backend)?;
        }
    }
    // The scale rows: every (family × n) on the async backend.
    for key in SCALE_FAMILIES {
        for n in SCALE_NS {
            let row = rows
                .iter()
                .find(|r| {
                    r.field_str("family") == Some(key)
                        && r.field_str("backend") == Some("async")
                        && r.field_u64("n") == Some(n as u64)
                })
                .ok_or_else(|| format!("no async scale row for family {key:?} at n = {n}"))?;
            row_committed(row, key, "async")?;
        }
    }
    // Async rows must carry the worker-pool observability columns.
    for row in rows {
        if row.field_str("backend") != Some("async") {
            continue;
        }
        let label = row.field_str("family").unwrap_or("?");
        match row.field_u64("workers") {
            Some(w) if w >= 1 => {}
            _ => return Err(format!("{label}/async: missing worker-pool size")),
        }
        if row.field_u64("wakeups").is_none() {
            return Err(format!("{label}/async: missing readiness-wakeup count"));
        }
    }
    Ok(rows.len())
}

fn row_committed(row: &JsonValue, key: &str, backend: &str) -> Result<(), String> {
    if row.field_bool("agreement") != Some(true) {
        return Err(format!("{key}/{backend}: agreement violated"));
    }
    if row.field_u64("latency_us").is_none() {
        return Err(format!(
            "{key}/{backend}: no good-case latency (liveness failure)"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_rows_pass_their_own_check() {
        // Two fast families keep the unit test cheap; the full-catalog
        // document is exercised by the net_latency bin and its CI job.
        let reg = registry();
        let backends = wall_backends(Duration::from_secs(2));
        let rows: Vec<NetLatencyRow> = ["brb2", "one_round_brb"]
            .iter()
            .flat_map(|key| {
                let spec = wall_spec(reg, key);
                backends
                    .iter()
                    .map(|b| {
                        let o = reg.run_on(&spec, b.as_ref()).unwrap();
                        NetLatencyRow {
                            family: reg.family(key).unwrap().key(),
                            backend: b.name(),
                            n: spec.n,
                            f: spec.f,
                            delta_us: WALL_DELTA.as_micros(),
                            latency_us: o.good_case_latency().map(|d| d.as_micros()),
                            agreement: o.agreement_holds(),
                            messages: o.messages_sent(),
                            sched: o.sched_counters(),
                        }
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let doc = render_json(&rows);
        let parsed = parse(&doc).expect("well-formed");
        assert_eq!(parsed.field_str("schema"), Some(NET_SCHEMA));
        // The partial document fails the full-catalog check (families are
        // missing), which is exactly what the check is for.
        assert!(check_doc(&doc).is_err(), "partial catalog must be rejected");
        // Each measured row carries a latency at or above the 2-hop floor,
        // and only the async rows carry scheduler counters.
        for r in &rows {
            assert!(r.agreement, "{}/{}", r.family, r.backend);
            let lat = r.latency_us.expect("good case commits");
            assert!(
                lat >= r.delta_us,
                "{}/{}: {lat}µs under the single-hop floor",
                r.family,
                r.backend
            );
            assert_eq!(
                r.sched.is_some(),
                r.backend == "async",
                "{}/{}: sched counters are async-only",
                r.family,
                r.backend
            );
        }
    }

    #[test]
    fn a_scale_row_measures_flood_beyond_the_conformance_shape() {
        // A miniature of the real grid (n = 48 instead of 256+ keeps the
        // unit test cheap): the async backend must commit flood well past
        // the conformance (4, 1) shape and report its pool counters.
        let reg = registry();
        let spec = scale_spec("flood", 48);
        let o = reg
            .run_on(
                &spec,
                &AsyncBackend::new().deadline(Duration::from_secs(20)),
            )
            .unwrap();
        assert!(o.agreement_holds());
        assert!(o.all_honest_committed());
        assert_eq!(o.messages_sent(), 48 * 48);
        let sched = o.sched_counters().expect("async reports its pool");
        assert!(sched.workers >= 1);
        assert!(sched.wakeups > 0);
    }

    #[test]
    fn check_requires_scale_rows_and_async_counters() {
        // Synthesize a full catalog without running anything: every
        // (family × backend) row present and committed, but no scale rows
        // — the v2 gate must reject it.
        let reg = registry();
        let catalog_row = |key: &str, backend: &str, sched: bool| {
            vec![
                ("family", JVal::Str(key.into())),
                ("backend", JVal::Str(backend.into())),
                ("n", JVal::U64(4)),
                ("f", JVal::U64(1)),
                ("latency_us", JVal::U64(5_000)),
                ("agreement", JVal::Bool(true)),
                ("workers", if sched { JVal::U64(1) } else { JVal::Null }),
                ("wakeups", if sched { JVal::U64(9) } else { JVal::Null }),
            ]
        };
        let mut doc = RowsDoc::new(NET_SCHEMA);
        for key in reg.keys() {
            for backend in ["net", "socket", "async"] {
                doc.row(catalog_row(key, backend, backend == "async"));
            }
        }
        let err = check_doc(&doc.render()).unwrap_err();
        assert!(err.contains("scale row"), "{err}");

        // With the scale rows present but an async row missing its
        // counters, the observability gate fires.
        let mut doc = RowsDoc::new(NET_SCHEMA);
        for key in reg.keys() {
            for backend in ["net", "socket", "async"] {
                doc.row(catalog_row(key, backend, backend == "async"));
            }
        }
        for key in SCALE_FAMILIES {
            for n in SCALE_NS {
                let mut row = catalog_row(key, "async", n != 512);
                row[2] = ("n", JVal::U64(n as u64));
                doc.row(row);
            }
        }
        let err = check_doc(&doc.render()).unwrap_err();
        assert!(err.contains("worker-pool size"), "{err}");
    }

    #[test]
    fn check_rejects_malformed_documents() {
        assert!(check_doc("not json").is_err());
        assert!(check_doc("{\"schema\": \"other/v9\", \"rows\": []}").is_err());
        assert!(
            check_doc("{\"schema\": \"gcl-bench/net-latency/v1\", \"rows\": []}").is_err(),
            "v1 documents no longer pass the v2 gate"
        );
        let empty = format!("{{\"schema\": \"{NET_SCHEMA}\", \"rows\": []}}");
        let err = check_doc(&empty).unwrap_err();
        assert!(err.contains("no row for family"), "{err}");
    }
}
