//! A minimal JSON reader **and the one shared writer** for the bench
//! trajectory files.
//!
//! The container builds offline (no `serde_json`), and the CI smoke job
//! must detect a malformed `BENCH_sim.json`, so this is a small strict
//! recursive-descent parser for the full JSON grammar (including `\uXXXX`
//! escapes with surrogate pairs). Swap for `serde_json` when a registry
//! is reachable.
//!
//! Every trajectory document the workspace emits — the throughput bin's
//! `BENCH_sim.json`, the sweep bin's report, and the criterion shim's
//! `GCL_BENCH_JSON` summaries — is the same *schema-plus-rows* shape and
//! is rendered by one serializer: [`RowsDoc`]. There used to be two
//! hand-rolled emitters (`throughput::render_json` and the criterion
//! shim's writer); they both build a `RowsDoc` now, so the on-disk format
//! can only drift in one place.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`; the bench files stay well within
    /// `f64`'s 2^53 integer range).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys ordered for determinism).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object member `k`, if this is an object containing it.
    pub fn field(&self, k: &str) -> Option<&Value> {
        self.as_object()?.get(k)
    }

    /// Object member `k`'s string payload — the one row-reader idiom for
    /// every schema-plus-rows document (see [`RowsDoc`]).
    pub fn field_str(&self, k: &str) -> Option<&str> {
        self.field(k)?.as_str()
    }

    /// Object member `k` as a float.
    pub fn field_f64(&self, k: &str) -> Option<f64> {
        self.field(k)?.as_f64()
    }

    /// Object member `k` truncated to `u64` (row counters and ns fields).
    pub fn field_u64(&self, k: &str) -> Option<u64> {
        self.field_f64(k).map(|x| x as u64)
    }

    /// Object member `k` as a boolean.
    pub fn field_bool(&self, k: &str) -> Option<bool> {
        self.field(k)?.as_bool()
    }
}

/// A writable JSON scalar for [`RowsDoc`] fields.
#[derive(Debug, Clone, PartialEq)]
pub enum JVal {
    /// An unsigned integer, rendered exactly (no `f64` precision loss).
    U64(u64),
    /// A float rendered with one decimal (the trajectory format for
    /// rates like events/sec).
    F1(f64),
    /// A string (escaped on render).
    Str(String),
    /// A boolean.
    Bool(bool),
    /// `null` (e.g. "no latency: not every honest party committed").
    Null,
}

impl JVal {
    fn render_into(&self, out: &mut String) {
        match self {
            JVal::U64(x) => {
                let _ = write!(out, "{x}");
            }
            JVal::F1(x) => {
                let _ = write!(out, "{x:.1}");
            }
            JVal::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            JVal::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JVal::Null => out.push_str("null"),
        }
    }
}

/// Escapes `\`, `"` and every control character (named escapes where JSON
/// has them, `\u00XX` otherwise) so arbitrary labels — e.g. criterion
/// bench ids built from any `Display` value — can't produce a document a
/// conforming parser rejects.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            other => out.push(other),
        }
    }
    out
}

/// One field of a row or of the document header.
pub type Field = (&'static str, JVal);

/// The workspace's shared *schema-plus-rows* document writer: a `schema`
/// string, optional scalar header fields, and an array of flat rows, one
/// row per line. Output round-trips through [`parse`].
///
/// # Examples
///
/// ```
/// use gcl_bench::json::{parse, JVal, RowsDoc};
///
/// let mut doc = RowsDoc::new("gcl-bench/example/v1");
/// doc.top("mode", JVal::Str("quick".into()));
/// doc.row(vec![("name", JVal::Str("a".into())), ("x", JVal::U64(1))]);
/// let text = doc.render();
/// assert!(parse(&text).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RowsDoc {
    schema: &'static str,
    top: Vec<Field>,
    rows: Vec<Vec<Field>>,
}

impl RowsDoc {
    /// An empty document carrying `schema`.
    pub fn new(schema: &'static str) -> Self {
        RowsDoc {
            schema,
            top: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Appends a scalar header field (rendered between `schema` and
    /// `rows`).
    pub fn top(&mut self, key: &'static str, val: JVal) -> &mut Self {
        self.top.push((key, val));
        self
    }

    /// Appends one row.
    pub fn row(&mut self, fields: Vec<Field>) -> &mut Self {
        self.rows.push(fields);
        self
    }

    /// Renders the document (pretty header, one row per line — the exact
    /// layout of every committed trajectory file).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", escape(self.schema));
        for (key, val) in &self.top {
            let _ = write!(out, "  \"{}\": ", escape(key));
            val.render_into(&mut out);
            out.push_str(",\n");
        }
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {");
            for (j, (key, val)) in row.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": ", escape(key));
                val.render_into(&mut out);
            }
            out.push('}');
            out.push_str(if i + 1 == self.rows.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Parses `text` as one JSON document (trailing garbage is an error).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => s.push(self.unicode_escape()?),
                        other => {
                            return Err(format!("unsupported escape \\{}", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|e| e.to_string())?
                        .chars()
                        .next()
                        .expect("peek saw a byte");
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (the `\u` is consumed),
    /// combining a UTF-16 surrogate pair into one scalar when present.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let unit = self.hex4()?;
        match unit {
            0xD800..=0xDBFF => {
                // High surrogate: a low surrogate must follow.
                if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                    self.pos += 2;
                    let low = self.hex4()?;
                    if !(0xDC00..=0xDFFF).contains(&low) {
                        return Err(format!("invalid low surrogate {low:04x}"));
                    }
                    let scalar =
                        0x10000 + ((u32::from(unit) - 0xD800) << 10) + (u32::from(low) - 0xDC00);
                    char::from_u32(scalar).ok_or_else(|| "invalid surrogate pair".to_string())
                } else {
                    Err(format!("lone high surrogate \\u{unit:04x}"))
                }
            }
            0xDC00..=0xDFFF => Err(format!("lone low surrogate \\u{unit:04x}")),
            _ => char::from_u32(u32::from(unit)).ok_or_else(|| "invalid scalar".to_string()),
        }
    }

    /// Reads exactly four hex digits (`from_str_radix` alone would also
    /// accept a leading `+`, which JSON forbids).
    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or("truncated \\u escape")?;
        if !digits.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("invalid \\u escape {digits:?}"));
        }
        let v = u16::from_str_radix(digits, 16)
            .map_err(|_| format!("invalid \\u escape {digits:?}"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Greedily take every byte a JSON number may contain (including
        // exponent signs); `f64::parse` rejects malformed arrangements.
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(parse("1e-5").unwrap(), Value::Number(1e-5));
        assert!(parse("1-2").is_err(), "embedded minus is not a number");
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            Value::String("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"rows": [{"x": 1, "ok": true}, {"x": 2}], "s": "hi"}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("s").unwrap().as_str(), Some("hi"));
        let rows = obj.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[1].as_object().unwrap().get("x").unwrap().as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "[1,]", "{\"a\": }", "1 2", "\"open", "{\"a\" 1}", ""] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(BTreeMap::new()));
    }

    #[test]
    fn rows_doc_round_trips_through_parser() {
        let mut doc = RowsDoc::new("gcl-bench/test/v1");
        doc.top("mode", JVal::Str("full".into()))
            .top("threads", JVal::U64(4));
        doc.row(vec![
            ("name", JVal::Str("a \"quoted\"\nname".into())),
            ("events", JVal::U64(u64::MAX)),
            ("rate", JVal::F1(123.456)),
            ("ok", JVal::Bool(true)),
            ("latency", JVal::Null),
        ]);
        doc.row(vec![("name", JVal::Str("b".into()))]);
        let text = doc.render();
        let v = parse(&text).expect("round trip");
        let obj = v.as_object().unwrap();
        assert_eq!(
            obj.get("schema").unwrap().as_str(),
            Some("gcl-bench/test/v1")
        );
        assert_eq!(obj.get("mode").unwrap().as_str(), Some("full"));
        assert_eq!(obj.get("threads").unwrap().as_f64(), Some(4.0));
        let rows = obj.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        let r0 = rows[0].as_object().unwrap();
        assert_eq!(r0.get("name").unwrap().as_str(), Some("a \"quoted\"\nname"));
        assert_eq!(r0.get("rate").unwrap().as_f64(), Some(123.5));
        assert_eq!(r0.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(r0.get("latency"), Some(&Value::Null));
    }

    #[test]
    fn unicode_escapes_parse_including_surrogate_pairs() {
        assert_eq!(
            parse("\"\\u0041\\u00e9\"").unwrap(),
            Value::String("Aé".to_string())
        );
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".to_string())
        );
        assert!(parse("\"\\ud83d\"").is_err(), "lone high surrogate");
        assert!(parse("\"\\udc00\"").is_err(), "lone low surrogate");
        assert!(parse("\"\\u12g4\"").is_err(), "bad hex digit");
        assert!(parse("\"\\u12\"").is_err(), "truncated escape");
        assert!(parse("\"\\u+0ff\"").is_err(), "leading '+' is not hex");
        assert_eq!(
            parse("\"\\b\\f\"").unwrap(),
            Value::String("\u{8}\u{c}".to_string())
        );
    }

    #[test]
    fn control_characters_escape_and_round_trip() {
        // A hostile bench id with an ANSI escape and a backspace must
        // still render into a document a strict parser accepts.
        let hostile = "evil\u{1b}[31m\u{8}name";
        let mut doc = RowsDoc::new("s");
        doc.row(vec![("name", JVal::Str(hostile.to_string()))]);
        let text = doc.render();
        assert!(
            !text.contains('\u{1b}') && !text.contains('\u{8}'),
            "raw control bytes must not reach the document"
        );
        let v = parse(&text).expect("round trip");
        let rows = v.as_object().unwrap().get("rows").unwrap();
        let row = rows.as_array().unwrap()[0].as_object().unwrap();
        assert_eq!(row.get("name").unwrap().as_str(), Some(hostile));
    }

    #[test]
    fn rows_doc_empty_rows_is_valid() {
        let doc = RowsDoc::new("s");
        let v = parse(&doc.render()).unwrap();
        assert_eq!(
            v.as_object().unwrap().get("rows").unwrap().as_array(),
            Some(&[][..])
        );
    }
}
