//! A minimal JSON reader for the bench trajectory files.
//!
//! The container builds offline (no `serde_json`), and the CI smoke job
//! must detect a malformed `BENCH_sim.json`, so this is a small strict
//! recursive-descent parser for the full JSON grammar minus `\u` escapes
//! (the bench writer never emits them). Swap for `serde_json` when a
//! registry is reachable.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`; the bench files stay well within
    /// `f64`'s 2^53 integer range).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys ordered for determinism).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses `text` as one JSON document (trailing garbage is an error).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    s.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => {
                            return Err(format!("unsupported escape \\{}", other as char));
                        }
                    });
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|e| e.to_string())?
                        .chars()
                        .next()
                        .expect("peek saw a byte");
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Greedily take every byte a JSON number may contain (including
        // exponent signs); `f64::parse` rejects malformed arrangements.
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(parse("1e-5").unwrap(), Value::Number(1e-5));
        assert!(parse("1-2").is_err(), "embedded minus is not a number");
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            Value::String("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"rows": [{"x": 1, "ok": true}, {"x": 2}], "s": "hi"}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("s").unwrap().as_str(), Some("hi"));
        let rows = obj.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[1].as_object().unwrap().get("x").unwrap().as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "[1,]", "{\"a\": }", "1 2", "\"open", "{\"a\" 1}", ""] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(BTreeMap::new()));
    }
}
