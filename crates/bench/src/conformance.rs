//! Multi-backend conformance: every registered scenario family, one spec,
//! four execution backends, the same committed value.
//!
//! The paper's claims are about *real* good-case latency, so the workspace
//! keeps its execution targets honest against each other:
//!
//! * the deterministic **simulator** (exact δ/Δ, the source of every
//!   measured number),
//! * `gcl_net`'s **thread** runtime (`NetBackend` — wall clocks, real
//!   concurrency, in-memory `Arc` message passing),
//! * `gcl_net`'s **socket** runtime (`SocketBackend` — the same wall-clock
//!   discipline, but every message encoded to bytes, carried across a
//!   Unix-domain socket, and decoded on the far side), and
//! * `gcl_net`'s **async** runtime (`AsyncBackend` — the socket transport
//!   contract, but every party a state machine behind a nonblocking
//!   socket, all n multiplexed over a fixed readiness-loop worker pool).
//!
//! This module builds, for each registered family, a **wall-safe** variant
//! of its canonical spec — millisecond-scale bounds so protocol timeouts
//! (≥ 4Δ) dwarf scheduler noise, reshaped to `(4, 1)` where the family's
//! band admits it — and runs it on every backend. On an honest-broadcaster
//! good case the executions must agree: same committed value, agreement
//! and full honest commitment on every wall backend. The socket column is
//! the codec's end-to-end gate: a family whose message type does not
//! survive `gcl_types::wire` serialization cannot pass it. The async
//! column additionally gates the readiness loop: partial reads, timer
//! wheel, and worker-pool scheduling must be invisible to the protocols.
//!
//! The suite doubles as the regression gate for the wall runtimes' early
//! termination: ~15 families × 3 wall backends against multi-second
//! deadlines complete in a few seconds *only* because honest termination
//! exits each run early (`crates/bench/tests/net_conformance.rs` enforces
//! a hard wall ceiling, and CI's `net-smoke` job runs it in release).

use crate::registry;
use gcl_net::{AsyncBackend, NetBackend, SocketBackend};
use gcl_sim::{Backend, ScenarioRegistry, ScenarioSpec};
use gcl_types::{Duration as SimDuration, Value};
use std::time::{Duration, Instant};

/// Wall-clock δ for conformance runs: 2 ms injected link latency —
/// comfortably above channel/scheduler overhead, far below any timeout.
pub const WALL_DELTA: SimDuration = SimDuration::from_millis(2);

/// Wall-clock Δ floor. Every family's Δ is scaled 20× from canonical and
/// raised to at least this, so view-change and round timers (≥ 4Δ on the
/// tightest family, i.e. ≥ 80 ms here) cannot fire spuriously even when a
/// noisy machine stalls a party thread for tens of milliseconds. Timers
/// never fire on the good-case path, so the floor costs no wall time.
pub const WALL_BIG_DELTA_FLOOR: SimDuration = SimDuration::from_millis(20);

/// The wall-safe conformance spec of one registered family: the family's
/// canonical spec (its seed, skew, adversary mix and input are kept, so
/// e.g. `bb_majority` still runs its trailing-silent population), reshaped
/// to `(4, 1)` when the resilience band admits it, with millisecond-scale
/// bounds and a trimmed SMR workload.
///
/// # Panics
///
/// Panics if `key` is not registered.
pub fn wall_spec(reg: &ScenarioRegistry, key: &str) -> ScenarioSpec {
    let family = reg
        .family(key)
        .unwrap_or_else(|| panic!("family {key:?} not registered"));
    let mut spec = family.canonical();
    if family.admission().admits(4, 1) {
        spec = spec.with_shape(4, 1);
    }
    let big = SimDuration::from_micros(
        (spec.big_delta.as_micros() * 20).max(WALL_BIG_DELTA_FLOOR.as_micros()),
    );
    spec = spec.with_bounds(WALL_DELTA, big);
    if key == "smr" {
        // 12 commands keep the multi-slot pipeline honest without turning
        // the cell into the slowest run of the suite; batch 4 exercises
        // multi-command batches without collapsing the log to one slot.
        spec = spec.with_workload(12, 4).with_batch(4);
    }
    spec
}

/// One wall-clock backend's result for one family.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// The backend's stable name (`"net"`, `"socket"`, `"async"`).
    pub backend: &'static str,
    /// The committed value (agreement already folded in: `None` means
    /// disagreement or nobody committed).
    pub value: Option<Value>,
    /// Whether every honest party committed.
    pub all_committed: bool,
    /// Whether agreement held.
    pub agreement: bool,
    /// Good-case wall latency in µs, when every honest party committed.
    pub latency_us: Option<u64>,
    /// Wall time of the run.
    pub wall: Duration,
}

/// One family's sim-vs-wall-backends comparison.
#[derive(Debug, Clone)]
pub struct ConformanceCell {
    /// Registered family key.
    pub family: &'static str,
    /// Parties in the spec every backend ran.
    pub n: usize,
    /// Fault budget of that spec.
    pub f: usize,
    /// The simulator's committed value — the oracle the wall runs must hit.
    pub sim_value: Option<Value>,
    /// Each wall backend's run, in [`wall_backends`] order.
    pub runs: Vec<BackendRun>,
}

impl ConformanceCell {
    /// The conformance criterion: every wall backend upholds agreement,
    /// commits everywhere honest, and lands on exactly the simulator's
    /// value.
    pub fn holds(&self) -> bool {
        self.runs
            .iter()
            .all(|r| r.agreement && r.all_committed && r.value == self.sim_value)
    }

    /// One-line human rendering (used in assertion messages and the
    /// example).
    pub fn describe(&self) -> String {
        let mut line = format!(
            "{} (n={}, f={}): sim={:?}",
            self.family, self.n, self.f, self.sim_value
        );
        for r in &self.runs {
            line.push_str(&format!(
                " | {}={:?} agreement={} all_committed={} wall={:?}",
                r.backend, r.value, r.agreement, r.all_committed, r.wall
            ));
        }
        line
    }
}

/// The wall-clock backends the conformance suite compares against the
/// simulator, with the given per-run deadline. Order is the column order
/// of every report.
pub fn wall_backends(deadline: Duration) -> Vec<Box<dyn Backend + Sync>> {
    vec![
        Box::new(NetBackend::new().deadline(deadline)),
        Box::new(SocketBackend::new().deadline(deadline)),
        Box::new(AsyncBackend::new().deadline(deadline)),
    ]
}

/// Runs every registered family on the simulator and on every wall
/// backend (each wall run bounded by `deadline`) and reports the
/// comparisons in registry key order.
pub fn conformance_cells(deadline: Duration) -> Vec<ConformanceCell> {
    let reg = registry();
    let backends = wall_backends(deadline);
    reg.keys()
        .map(|key| {
            let spec = wall_spec(reg, key);
            let sim = reg
                .run(&spec)
                .unwrap_or_else(|e| panic!("{key}: sim run rejected: {e}"));
            let runs = backends
                .iter()
                .map(|backend| {
                    let started = Instant::now();
                    let o = reg
                        .run_on(&spec, backend.as_ref())
                        .unwrap_or_else(|e| panic!("{key}: {} run rejected: {e}", backend.name()));
                    BackendRun {
                        backend: backend.name(),
                        value: o.committed_value(),
                        all_committed: o.all_honest_committed(),
                        agreement: o.agreement_holds(),
                        latency_us: o.good_case_latency().map(|d| d.as_micros()),
                        wall: started.elapsed(),
                    }
                })
                .collect();
            ConformanceCell {
                family: key,
                n: spec.n,
                f: spec.f,
                sim_value: sim.committed_value(),
                runs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_specs_are_admissible_and_wall_safe() {
        let reg = registry();
        for key in reg.keys() {
            let spec = wall_spec(reg, key);
            assert!(reg.validate(&spec).is_ok(), "{key}: wall spec in band");
            assert_eq!(spec.delta, WALL_DELTA, "{key}");
            assert!(spec.big_delta >= WALL_BIG_DELTA_FLOOR, "{key}");
            if reg.family(key).unwrap().admission().admits(4, 1) {
                assert_eq!((spec.n, spec.f), (4, 1), "{key}: reshaped to (4, 1)");
            }
        }
    }

    #[test]
    fn wall_specs_keep_canonical_identity() {
        let reg = registry();
        let canonical = reg.spec("bb_majority").unwrap();
        let spec = wall_spec(reg, "bb_majority");
        assert_eq!(spec.adversary, canonical.adversary, "adversary mix kept");
        assert_eq!(spec.seed, canonical.seed, "keychain seed kept");
        assert_eq!(spec.input, canonical.input, "input kept");
    }

    #[test]
    fn wall_backend_catalog_is_net_socket_then_async() {
        let names: Vec<&str> = wall_backends(Duration::from_secs(1))
            .iter()
            .map(|b| b.name())
            .collect();
        assert_eq!(names, ["net", "socket", "async"]);
    }
}
