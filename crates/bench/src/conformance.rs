//! Sim-vs-net conformance: every registered scenario family, one spec,
//! two execution backends, the same committed value.
//!
//! The paper's claims are about *real* good-case latency, so the workspace
//! keeps two execution targets honest against each other: the
//! deterministic simulator (exact δ/Δ, the source of every measured
//! number) and `gcl_net`'s thread-per-party wall-clock runtime. This
//! module builds, for each registered family, a **wall-safe** variant of
//! its canonical spec — millisecond-scale bounds so protocol timeouts
//! (≥ 4Δ) dwarf scheduler noise, reshaped to `(4, 1)` where the family's
//! band admits it — and runs it on both backends. On an honest-broadcaster
//! good case the two executions must agree with each other: same
//! committed value, agreement and full honest commitment on the net side.
//!
//! The suite doubles as the regression gate for the net runtime's early
//! termination: ~15 runs against multi-second deadlines complete in
//! about a second *only* because honest termination exits each run early
//! (`crates/bench/tests/net_conformance.rs` enforces a hard 30 s ceiling,
//! and CI's `net-smoke` job runs it in release).

use crate::registry;
use gcl_net::NetBackend;
use gcl_sim::{ScenarioRegistry, ScenarioSpec};
use gcl_types::{Duration as SimDuration, Value};
use std::time::{Duration, Instant};

/// Wall-clock δ for conformance runs: 2 ms injected link latency —
/// comfortably above channel/scheduler overhead, far below any timeout.
pub const WALL_DELTA: SimDuration = SimDuration::from_millis(2);

/// Wall-clock Δ floor. Every family's Δ is scaled 20× from canonical and
/// raised to at least this, so view-change and round timers (≥ 4Δ on the
/// tightest family, i.e. ≥ 80 ms here) cannot fire spuriously even when a
/// noisy machine stalls a party thread for tens of milliseconds. Timers
/// never fire on the good-case path, so the floor costs no wall time.
pub const WALL_BIG_DELTA_FLOOR: SimDuration = SimDuration::from_millis(20);

/// The wall-safe conformance spec of one registered family: the family's
/// canonical spec (its seed, skew, adversary mix and input are kept, so
/// e.g. `bb_majority` still runs its trailing-silent population), reshaped
/// to `(4, 1)` when the resilience band admits it, with millisecond-scale
/// bounds and a trimmed SMR workload.
///
/// # Panics
///
/// Panics if `key` is not registered.
pub fn wall_spec(reg: &ScenarioRegistry, key: &str) -> ScenarioSpec {
    let family = reg
        .family(key)
        .unwrap_or_else(|| panic!("family {key:?} not registered"));
    let mut spec = family.canonical();
    if family.admission().admits(4, 1) {
        spec = spec.with_shape(4, 1);
    }
    let big = SimDuration::from_micros(
        (spec.big_delta.as_micros() * 20).max(WALL_BIG_DELTA_FLOOR.as_micros()),
    );
    spec = spec.with_bounds(WALL_DELTA, big);
    if key == "smr" {
        // 12 commands keep the multi-slot pipeline honest without turning
        // the cell into the slowest run of the suite.
        spec = spec.with_workload(12, 4);
    }
    spec
}

/// One family's sim-vs-net comparison.
#[derive(Debug, Clone)]
pub struct ConformanceCell {
    /// Registered family key.
    pub family: &'static str,
    /// Parties in the spec both backends ran.
    pub n: usize,
    /// Fault budget of that spec.
    pub f: usize,
    /// The simulator's committed value (agreement already folded in:
    /// `None` means disagreement or nobody committed).
    pub sim_value: Option<Value>,
    /// The net backend's committed value.
    pub net_value: Option<Value>,
    /// Whether every honest party committed on the net backend.
    pub net_all_committed: bool,
    /// Whether agreement held on the net backend.
    pub net_agreement: bool,
    /// Wall time of the net run.
    pub wall: Duration,
}

impl ConformanceCell {
    /// The conformance criterion: the net run upholds agreement, commits
    /// everywhere honest, and lands on exactly the simulator's value.
    pub fn holds(&self) -> bool {
        self.net_agreement && self.net_all_committed && self.sim_value == self.net_value
    }

    /// One-line human rendering (used in assertion messages and the
    /// example).
    pub fn describe(&self) -> String {
        format!(
            "{} (n={}, f={}): sim={:?} net={:?} agreement={} all_committed={} wall={:?}",
            self.family,
            self.n,
            self.f,
            self.sim_value,
            self.net_value,
            self.net_agreement,
            self.net_all_committed,
            self.wall
        )
    }
}

/// Runs every registered family on both backends (net runs bounded by
/// `deadline` each) and reports the comparisons in registry key order.
pub fn conformance_cells(deadline: Duration) -> Vec<ConformanceCell> {
    let reg = registry();
    let net = NetBackend::new().deadline(deadline);
    reg.keys()
        .map(|key| {
            let spec = wall_spec(reg, key);
            let sim = reg
                .run(&spec)
                .unwrap_or_else(|e| panic!("{key}: sim run rejected: {e}"));
            let started = Instant::now();
            let net_outcome = reg
                .run_on(&spec, &net)
                .unwrap_or_else(|e| panic!("{key}: net run rejected: {e}"));
            ConformanceCell {
                family: key,
                n: spec.n,
                f: spec.f,
                sim_value: sim.committed_value(),
                net_value: net_outcome.committed_value(),
                net_all_committed: net_outcome.all_honest_committed(),
                net_agreement: net_outcome.agreement_holds(),
                wall: started.elapsed(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_specs_are_admissible_and_wall_safe() {
        let reg = registry();
        for key in reg.keys() {
            let spec = wall_spec(reg, key);
            assert!(reg.validate(&spec).is_ok(), "{key}: wall spec in band");
            assert_eq!(spec.delta, WALL_DELTA, "{key}");
            assert!(spec.big_delta >= WALL_BIG_DELTA_FLOOR, "{key}");
            if reg.family(key).unwrap().admission().admits(4, 1) {
                assert_eq!((spec.n, spec.f), (4, 1), "{key}: reshaped to (4, 1)");
            }
        }
    }

    #[test]
    fn wall_specs_keep_canonical_identity() {
        let reg = registry();
        let canonical = reg.spec("bb_majority").unwrap();
        let spec = wall_spec(reg, "bb_majority");
        assert_eq!(spec.adversary, canonical.adversary, "adversary mix kept");
        assert_eq!(spec.seed, canonical.seed, "keychain seed kept");
        assert_eq!(spec.input, canonical.input, "input kept");
    }
}
