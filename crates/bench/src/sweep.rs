//! The scenario-grid sweep: a declarative cross product of every
//! registered family × admitted shapes × adversary mixes × delay choices
//! × seeds, fanned across worker threads by [`gcl_sim::Sweep`] and
//! rendered as a `gcl-bench/sweep/v1` report via the shared
//! [`crate::json::RowsDoc`] serializer.
//!
//! The grid is where the paper's *complete categorization* claim gets
//! exercised in bulk: every timing model × resilience band, not one
//! hand-picked point per table row. A cell that violates agreement or
//! (conditional) validity is a red build — the `sweep` binary and the CI
//! `sweep-smoke` job both fail on it.

use crate::json::{parse, JVal, RowsDoc, Value};
use crate::registry;
use gcl_sim::{AdversaryMix, DelayChoice, ScenarioSpec, Sweep, SweepReport};
use gcl_types::Duration;

/// Candidate `(n, f)` shapes; each family keeps the ones its resilience
/// band admits. Ordered small-to-large so shape caps keep the cheap cells.
const SHAPE_POOL: &[(usize, usize)] = &[
    (3, 1),
    (4, 1),
    (4, 2),
    (4, 3),
    (5, 2),
    (6, 2),
    (6, 4),
    (7, 2),
    (7, 3),
    (8, 2),
    (8, 3),
    (9, 2),
    (9, 3),
    (10, 3),
    (10, 8),
    (14, 3),
];

/// Knobs controlling how large the generated grid is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridOptions {
    /// Max admitted shapes per family (smallest first).
    pub shapes_per_family: usize,
    /// Seeds per (family, shape, mix, delay) combination.
    pub seeds: u64,
    /// Also run every combination under seeded uniform delay jitter.
    pub jitter: bool,
    /// Also run a seeded random-crash adversary mix.
    pub crashes: bool,
    /// Drop shapes with more than this many parties (debug-build test
    /// grids cap this; the release-mode `sweep` bin takes everything).
    pub max_parties: usize,
}

impl GridOptions {
    /// The CI smoke grid: small but still touching every family and both
    /// canonical adversary mixes.
    pub fn quick() -> Self {
        GridOptions {
            shapes_per_family: 2,
            seeds: 1,
            jitter: false,
            crashes: true,
            max_parties: usize::MAX,
        }
    }

    /// The full default grid.
    pub fn full() -> Self {
        GridOptions {
            shapes_per_family: 4,
            seeds: 2,
            jitter: true,
            crashes: true,
            max_parties: usize::MAX,
        }
    }
}

/// Builds the declarative grid: every registered family crossed with its
/// admitted shapes, the adversary mixes, the delay choices and `seeds`
/// seed indices. Per-cell seeds are later derived by
/// [`gcl_sim::Sweep::seed`]; the seed index here only multiplies cells.
pub fn grid(opts: GridOptions) -> Vec<ScenarioSpec> {
    let reg = registry();
    let mut mixes = vec![
        AdversaryMix::None,
        AdversaryMix::RandomSilent { count: u32::MAX },
    ];
    if opts.crashes {
        mixes.push(AdversaryMix::RandomCrashing {
            count: u32::MAX,
            max_handled: 6,
        });
    }
    let mut delays = vec![DelayChoice::Fixed];
    if opts.jitter {
        delays.push(DelayChoice::Uniform {
            lo: Duration::ZERO,
            hi: Duration::from_micros(200),
        });
    }
    let mut cells = Vec::new();
    for key in reg.keys() {
        let family = reg.family(key).expect("listed key");
        let base = family.canonical();
        let shapes: Vec<(usize, usize)> = SHAPE_POOL
            .iter()
            .copied()
            .filter(|&(n, f)| n <= opts.max_parties && family.admission().admits(n, f))
            .take(opts.shapes_per_family.max(1))
            .collect();
        for (n, f) in shapes {
            for &mix in &mixes {
                for &delay in &delays {
                    for _ in 0..opts.seeds.max(1) {
                        cells.push(
                            base.clone()
                                .with_shape(n, f)
                                .with_adversary(mix)
                                .with_delays(delay),
                        );
                    }
                }
            }
        }
    }
    cells
}

/// The default grid for one mode (`quick` = the CI smoke grid).
pub fn default_grid(quick: bool) -> Vec<ScenarioSpec> {
    grid(if quick {
        GridOptions::quick()
    } else {
        GridOptions::full()
    })
}

/// Runs the default grid with derived per-cell seeds.
pub fn run_default(quick: bool, threads: usize, base_seed: u64) -> SweepReport {
    Sweep::new(registry())
        .cells(default_grid(quick))
        .threads(threads)
        .seed(base_seed)
        .run()
}

/// Renders a sweep report as the `gcl-bench/sweep/v1` document.
pub fn render_report(report: &SweepReport, mode: &str, base_seed: u64) -> String {
    let mut doc = RowsDoc::new("gcl-bench/sweep/v1");
    let opt_u64 = |v: Option<u64>| v.map_or(JVal::Null, JVal::U64);
    doc.top("mode", JVal::Str(mode.to_string()))
        .top("base_seed", JVal::U64(base_seed))
        .top("threads", JVal::U64(report.threads as u64))
        .top("cells", JVal::U64(report.cells.len() as u64))
        .top("cells_run", JVal::U64(report.cells_run() as u64))
        .top("cells_skipped", JVal::U64(report.cells_skipped() as u64))
        .top("commit_rate_pct", JVal::F1(report.commit_rate() * 100.0))
        .top(
            "safety_violations",
            JVal::U64(report.safety_violations().count() as u64),
        )
        .top(
            "validity_violations",
            JVal::U64(report.validity_violations().count() as u64),
        )
        .top("p50_latency_us", opt_u64(report.latency_percentile(0.5)))
        .top("p90_latency_us", opt_u64(report.latency_percentile(0.9)))
        .top("max_latency_us", opt_u64(report.latency_percentile(1.0)))
        .top("total_events", JVal::U64(report.total_events()))
        .top("total_messages", JVal::U64(report.total_messages()))
        .top("max_peak_queue", JVal::U64(report.max_peak_queue()))
        .top("wall_ns", JVal::U64(report.wall_ns))
        .top("events_per_sec", JVal::F1(report.events_per_sec()));
    for cell in &report.cells {
        let mut fields = vec![
            ("cell", JVal::Str(cell.label.clone())),
            ("family", JVal::Str(cell.spec.family.to_string())),
            ("n", JVal::U64(cell.spec.n as u64)),
            ("f", JVal::U64(cell.spec.f as u64)),
            ("seed", JVal::U64(cell.spec.seed)),
            ("committed", JVal::Bool(cell.committed)),
            ("latency_us", opt_u64(cell.latency_us)),
            ("rounds", opt_u64(cell.rounds.map(u64::from))),
            ("events", JVal::U64(cell.events)),
            ("messages", JVal::U64(cell.messages)),
            ("peak_queue", JVal::U64(cell.peak_queue)),
            ("agreement", JVal::Bool(cell.agreement)),
            ("validity", JVal::Bool(cell.validity)),
        ];
        if let Some(err) = &cell.error {
            fields.push(("skipped", JVal::Str(err.clone())));
        }
        doc.row(fields);
    }
    doc.render()
}

/// What [`validate_report`] extracts from a well-formed report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportSummary {
    /// Total grid cells.
    pub cells: usize,
    /// Cells that ran.
    pub cells_run: usize,
    /// Cells where agreement was violated.
    pub safety_violations: usize,
    /// Cells where the validity audit failed.
    pub validity_violations: usize,
}

/// Parses and structurally validates a `gcl-bench/sweep/v1` document:
/// schema, per-row fields, and header/row violation-count consistency.
///
/// # Errors
///
/// A human-readable description of the first structural problem.
pub fn validate_report(text: &str) -> Result<ReportSummary, String> {
    let doc = parse(text)?;
    doc.as_object().ok_or("top level must be an object")?;
    let schema = doc.field_str("schema").ok_or("missing schema")?;
    if schema != "gcl-bench/sweep/v1" {
        return Err(format!("unknown schema {schema:?}"));
    }
    let top_u64 = |k: &str| -> Result<u64, String> {
        doc.field_u64(k)
            .ok_or_else(|| format!("missing numeric header field {k:?}"))
    };
    let rows = doc
        .field("rows")
        .and_then(Value::as_array)
        .ok_or("missing rows array")?;
    if rows.is_empty() {
        return Err("empty sweep: no cells".into());
    }
    let mut run = 0usize;
    let mut safety = 0usize;
    let mut validity = 0usize;
    for (i, row) in rows.iter().enumerate() {
        row.as_object()
            .ok_or_else(|| format!("row {i} not an object"))?;
        for key in ["cell", "family"] {
            if row.field_str(key).is_none() {
                return Err(format!("row {i} missing string field {key:?}"));
            }
        }
        for key in ["n", "f", "seed", "events", "messages", "peak_queue"] {
            if row.field_f64(key).is_none() {
                return Err(format!("row {i} missing numeric field {key:?}"));
            }
        }
        let flag = |key: &str| -> Result<bool, String> {
            row.field_bool(key)
                .ok_or_else(|| format!("row {i} missing boolean field {key:?}"))
        };
        if !flag("agreement")? {
            safety += 1;
        }
        if !flag("validity")? {
            validity += 1;
        }
        flag("committed")?;
        if row.field("skipped").is_none() {
            run += 1;
        }
    }
    let summary = ReportSummary {
        cells: rows.len(),
        cells_run: run,
        safety_violations: safety,
        validity_violations: validity,
    };
    if top_u64("cells")? as usize != summary.cells
        || top_u64("cells_run")? as usize != summary.cells_run
        || top_u64("safety_violations")? as usize != summary.safety_violations
        || top_u64("validity_violations")? as usize != summary.validity_violations
    {
        return Err("header counters disagree with rows".into());
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_covers_every_family() {
        let cells = default_grid(true);
        let reg = registry();
        for key in reg.keys() {
            assert!(
                cells.iter().any(|c| c.family == key),
                "family {key} missing from quick grid"
            );
        }
        assert!(
            cells.iter().all(|c| reg.validate(c).is_ok()),
            "generated cells are all admissible by construction"
        );
    }

    #[test]
    fn full_grid_reaches_sweep_scale() {
        let cells = default_grid(false);
        assert!(cells.len() >= 200, "only {} cells", cells.len());
    }

    #[test]
    fn report_renders_and_validates() {
        let report = Sweep::new(registry())
            .cells(grid(GridOptions {
                shapes_per_family: 1,
                seeds: 1,
                jitter: false,
                crashes: false,
                max_parties: usize::MAX,
            }))
            .threads(2)
            .seed(7)
            .run();
        assert_eq!(report.safety_violations().count(), 0, "sweep must be safe");
        assert_eq!(report.validity_violations().count(), 0);
        let text = render_report(&report, "test", 7);
        let summary = validate_report(&text).expect("well-formed report");
        assert_eq!(summary.cells, report.cells.len());
        assert_eq!(summary.cells_run, report.cells_run());
        assert_eq!(summary.safety_violations, 0);
    }

    #[test]
    fn validate_rejects_malformed_and_inconsistent() {
        assert!(validate_report("{").is_err());
        assert!(validate_report("{\"schema\": \"nope\", \"rows\": []}").is_err());
        assert!(
            validate_report("{\"schema\": \"gcl-bench/sweep/v1\", \"rows\": []}").is_err(),
            "empty sweep rejected"
        );
        // A row missing its audit flags is malformed.
        let bad = "{\"schema\": \"gcl-bench/sweep/v1\", \"cells\": 1, \"cells_run\": 1, \
                   \"safety_violations\": 0, \"validity_violations\": 0, \
                   \"rows\": [{\"cell\": \"x\", \"family\": \"y\", \"n\": 4, \"f\": 1, \
                   \"seed\": 0, \"events\": 1, \"messages\": 1, \"peak_queue\": 1}]}";
        assert!(validate_report(bad).unwrap_err().contains("agreement"));
    }
}
