//! Simulator-throughput scenarios: the perf trajectory's point 0.
//!
//! Every number the workspace produces flows through the event loop in
//! `gcl_sim`, so events/second on these fixed scenarios is the ceiling on
//! how many executions (and how large an `n`) the repo can explore. The
//! `throughput` binary measures them and emits `BENCH_sim.json` at the repo
//! root; CI re-measures in `--quick` mode and fails on a >3x regression
//! against the committed baseline.
//!
//! The measured scenarios are registry specs like everything else
//! (see [`rows_under_measure`]); this module also registers the two
//! bench-owned families:
//!
//! * `flood` — all-to-all flood: every party multicasts once, commits
//!   after hearing from everyone. Pure hot-loop stress (`O(n²)` messages,
//!   trivial per-message protocol work).
//! * `smr` — the SMR engine committing a counter workload: long-running
//!   pipelined slots (family params pick the workload/pipeline shape).

use crate::json::{JVal, RowsDoc};
use crate::scenarios::canonical;
use gcl_sim::{Admission, Context, Protocol, ScenarioRegistry, ScenarioSpec, ValidityMode};
use gcl_smr::{Counter, SlotEngine, SmrParams};
use gcl_types::{Duration, PartyId, Value};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// All-to-all flood: every party multicasts its id at start and commits
/// `commit_value` once it has heard from all `n` parties. `O(n²)` messages
/// with trivial handlers — the purest stress test of the event loop
/// itself.
#[derive(Debug)]
pub struct AllToAllFlood {
    heard: u64,
    n: u64,
    commit_value: Value,
}

impl AllToAllFlood {
    /// A fresh flood participant for an `n`-party run.
    pub fn new(n: usize, commit_value: Value) -> Self {
        AllToAllFlood {
            heard: 0,
            n: n as u64,
            commit_value,
        }
    }
}

impl Protocol for AllToAllFlood {
    type Msg = Value;

    fn start(&mut self, ctx: &mut dyn Context<Value>) {
        ctx.multicast(Value::new(u64::from(ctx.me().index())));
    }

    fn on_message(&mut self, _from: PartyId, _msg: Value, ctx: &mut dyn Context<Value>) {
        self.heard += 1;
        if self.heard == self.n {
            ctx.commit(self.commit_value);
            ctx.terminate();
        }
    }
}

/// Registers the bench-owned scenario families (`flood`, `smr`).
pub(crate) fn register(reg: &mut ScenarioRegistry) {
    reg.register_fn(
        "flood",
        "all-to-all flood — pure event-loop stress, O(n^2) messages",
        Admission::Any,
        ValidityMode::Broadcast,
        ScenarioSpec::lockstep("flood", 16, 5, Duration::from_micros(10)),
        |spec, backend| spec.run_protocol_on(backend, |_| AllToAllFlood::new(spec.n, spec.input)),
    );
    reg.register_fn(
        "smr",
        "SMR slot engine on a counter log — pipelined 2-round commits",
        Admission::TwoRoundPsync,
        // Commit values are workload slots, not the broadcast input.
        ValidityMode::AgreementOnly,
        ScenarioSpec::psync("smr", 4, 1).with_seed(221),
        |spec, backend| {
            let cfg = spec.config().expect("validated");
            let chain = gcl_crypto::Keychain::generate(spec.n, spec.seed);
            let workload: Vec<Value> = (1..=spec.params.commands).map(Value::new).collect();
            let params = SmrParams {
                batch: spec.params.batch,
                pipeline: spec.params.pipeline,
                ..SmrParams::default()
            };
            spec.run_protocol_on(backend, |p| {
                SlotEngine::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    spec.big_delta,
                    params,
                    Arc::new(Mutex::new(Counter::default())),
                )
                .with_workload(workload.clone())
            })
        },
    );
}

/// One measured scenario of the throughput trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Stable scenario key (the regression check joins on it).
    pub scenario: String,
    /// Parties.
    pub n: usize,
    /// Fault budget.
    pub f: usize,
    /// Events the runner processed in one run.
    pub events: u64,
    /// Point-to-point messages sent in one run.
    pub messages: u64,
    /// Peak event-queue depth in one run.
    pub peak_queue: u64,
    /// Bytes the event queue retained at end of run (slab chunks plus
    /// calendar directories) — the memory the engine holds to avoid
    /// per-event allocation.
    pub queue_bytes: u64,
    /// Deliveries discarded at enqueue because the recipient had already
    /// terminated — queue traffic the run never paid for. Deterministic:
    /// exact per scenario, like `events`.
    pub drops_at_enqueue: u64,
    /// Wall time of the best repetition, nanoseconds.
    pub wall_ns: u64,
    /// `events / wall` of the best repetition.
    pub events_per_sec: f64,
    /// MAC compressions actually computed in one run (the
    /// [`gcl_crypto::VerifyProbe`] delta): the crypto work the verify
    /// caches could not avoid.
    pub verify_macs: u64,
    /// Signature/memo cache hits in one run: verifications answered
    /// without recomputing a MAC.
    pub verify_hits: u64,
    /// Repetitions actually measured (best wins; fast scenarios repeat
    /// until a cumulative wall-time floor so one noisy sample can't
    /// dominate).
    pub reps: u32,
}

/// Schema tag of the `BENCH_sim.json` document.
pub const SIM_SCHEMA: &str = "gcl-bench/sim-throughput/v2";

/// Minimum cumulative measured wall time per scenario: microsecond-scale
/// runs repeat until this floor so a single scheduler hiccup on a noisy CI
/// runner can't masquerade as a 3x regression.
const MIN_TOTAL_NS: u64 = 5_000_000;
/// Hard cap on repetitions (keeps the floor from ballooning tiny runs).
const MAX_REPS: u32 = 64;

/// The fixed trajectory scenarios: stable key → registry spec.
///
/// The crypto-heavy rows (`dolev_strong`, `brb2`, `vbb5f1`, `pbft3`) are
/// the ones the amortized-verification layer targets; the `n = 1024`
/// sweep points exist to expose the *next* bottleneck once signature
/// re-verification stops dominating.
pub fn rows_under_measure() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        ("flood_n16", canonical("flood", 16, 5)),
        ("flood_n64", canonical("flood", 64, 21)),
        ("flood_n256", canonical("flood", 256, 85)),
        ("flood_n1024", canonical("flood", 1024, 341)),
        ("dolev_strong_n64_f21", canonical("dolev_strong", 64, 21)),
        ("brb2_n256_f85", canonical("brb2", 256, 85)),
        ("brb2_n1024_f341", canonical("brb2", 1024, 341)),
        ("vbb5f1_n64_f13", canonical("vbb5f1", 64, 13)),
        ("pbft3_n64_f21", canonical("pbft3", 64, 21)),
        ("smr_1k", canonical("smr", 4, 1).with_workload(1_000, 8)),
    ]
}

/// Measures one spec under a stable scenario key: best-of-`min_reps`
/// wall time (repeating up to the cumulative floor), with the row's
/// `(n, f)` taken from the spec itself.
pub fn measure(scenario: &str, spec: &ScenarioSpec, min_reps: u32) -> ThroughputRow {
    let probe = gcl_crypto::VerifyProbe::global();
    let mut best_ns = u64::MAX;
    let mut total_ns: u64 = 0;
    let mut reps = 0;
    let mut events = 0;
    let mut messages = 0;
    let mut peak_queue = 0;
    let mut queue_bytes = 0;
    let mut drops_at_enqueue = 0;
    let mut verify_macs = 0;
    let mut verify_hits = 0;
    while reps < min_reps || (total_ns < MIN_TOTAL_NS && reps < MAX_REPS) {
        // Verifiers flush their counters to the global probe when the
        // run's protocol instances drop, i.e. before `run` returns; the
        // per-rep delta is the run's crypto work. (Deltas are only exact
        // when runs are sequential, which the bench binary guarantees.)
        let macs0 = probe.macs();
        let hits0 = probe.hits();
        let start = Instant::now();
        let o = crate::scenarios::run(spec);
        let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        events = o.events_processed();
        messages = o.messages_sent();
        peak_queue = o.peak_queue_depth() as u64;
        queue_bytes = o.queue_bytes();
        drops_at_enqueue = o.drops_at_enqueue();
        verify_macs = probe.macs().saturating_sub(macs0);
        verify_hits = probe.hits().saturating_sub(hits0);
        best_ns = best_ns.min(ns.max(1));
        total_ns = total_ns.saturating_add(ns);
        reps += 1;
    }
    ThroughputRow {
        scenario: scenario.to_string(),
        n: spec.n,
        f: spec.f,
        events,
        messages,
        peak_queue,
        queue_bytes,
        drops_at_enqueue,
        wall_ns: best_ns,
        events_per_sec: events as f64 * 1e9 / best_ns as f64,
        verify_macs,
        verify_hits,
        reps,
    }
}

/// Measures every scenario. `quick` (the CI smoke mode) requires one
/// repetition per scenario; the full mode at least three. Either way,
/// sub-millisecond scenarios repeat up to the cumulative wall-time floor.
pub fn throughput_rows(quick: bool) -> Vec<ThroughputRow> {
    let reps = if quick { 1 } else { 3 };
    rows_under_measure()
        .iter()
        .map(|(key, spec)| measure(key, spec, reps))
        .collect()
}

/// Renders rows as the `BENCH_sim.json` document (via the shared
/// [`RowsDoc`] serializer).
pub fn render_json(rows: &[ThroughputRow], mode: &str) -> String {
    let mut doc = RowsDoc::new(SIM_SCHEMA);
    doc.top("mode", JVal::Str(mode.to_string()));
    for r in rows {
        doc.row(vec![
            ("scenario", JVal::Str(r.scenario.clone())),
            ("n", JVal::U64(r.n as u64)),
            ("f", JVal::U64(r.f as u64)),
            ("events", JVal::U64(r.events)),
            ("messages", JVal::U64(r.messages)),
            ("peak_queue", JVal::U64(r.peak_queue)),
            ("queue_bytes", JVal::U64(r.queue_bytes)),
            ("drops_at_enqueue", JVal::U64(r.drops_at_enqueue)),
            ("wall_ns", JVal::U64(r.wall_ns)),
            ("events_per_sec", JVal::F1(r.events_per_sec)),
            ("verify_macs", JVal::U64(r.verify_macs)),
            ("verify_hits", JVal::U64(r.verify_hits)),
            ("reps", JVal::U64(u64::from(r.reps))),
        ]);
    }
    doc.render()
}

/// Parses a `BENCH_sim.json` document back into rows (used by the CI
/// regression check; any structural problem is an `Err`).
pub fn parse_json(text: &str) -> Result<Vec<ThroughputRow>, String> {
    let doc = crate::json::parse(text)?;
    doc.as_object().ok_or("top level must be an object")?;
    let schema = doc.field_str("schema").ok_or("missing schema")?;
    if schema != SIM_SCHEMA {
        return Err(format!("unknown schema {schema:?}"));
    }
    let rows = doc
        .field("rows")
        .and_then(crate::json::Value::as_array)
        .ok_or("missing rows array")?;
    rows.iter()
        .map(|row| {
            row.as_object().ok_or("row must be an object")?;
            let str_field = |k: &str| -> Result<String, String> {
                row.field_str(k)
                    .map(str::to_string)
                    .ok_or_else(|| format!("row missing string field {k:?}"))
            };
            let num_field = |k: &str| -> Result<f64, String> {
                row.field_f64(k)
                    .ok_or_else(|| format!("row missing numeric field {k:?}"))
            };
            Ok(ThroughputRow {
                scenario: str_field("scenario")?,
                n: num_field("n")? as usize,
                f: num_field("f")? as usize,
                events: num_field("events")? as u64,
                messages: num_field("messages")? as u64,
                peak_queue: num_field("peak_queue")? as u64,
                queue_bytes: num_field("queue_bytes")? as u64,
                drops_at_enqueue: num_field("drops_at_enqueue")? as u64,
                wall_ns: num_field("wall_ns")? as u64,
                events_per_sec: num_field("events_per_sec")?,
                verify_macs: num_field("verify_macs")? as u64,
                verify_hits: num_field("verify_hits")? as u64,
                reps: num_field("reps")? as u32,
            })
        })
        .collect()
}

/// Compares a fresh measurement against the committed baseline: every
/// baseline scenario must still exist and must not have regressed by more
/// than `factor` in events/sec. Returns the failures (empty = pass).
pub fn regressions(
    baseline: &[ThroughputRow],
    fresh: &[ThroughputRow],
    factor: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    if baseline.len() < 4 {
        failures.push(format!(
            "baseline has {} rows; expected at least 4",
            baseline.len()
        ));
    }
    for b in baseline {
        match fresh.iter().find(|r| r.scenario == b.scenario) {
            None => failures.push(format!("scenario {:?} missing from fresh run", b.scenario)),
            Some(r) if r.events_per_sec * factor < b.events_per_sec => failures.push(format!(
                "{}: {:.0} ev/s is a >{:.0}x regression from baseline {:.0} ev/s",
                r.scenario, r.events_per_sec, factor, b.events_per_sec
            )),
            Some(_) => {}
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_commits_and_counts_n_squared_messages() {
        let o = crate::scenarios::run(&canonical("flood", 8, 2));
        assert!(o.all_honest_committed());
        assert_eq!(o.messages_sent(), 64, "n^2 point-to-point messages");
        assert_eq!(o.committed_value(), Some(Value::new(42)), "commits input");
    }

    #[test]
    fn json_round_trips() {
        let rows = vec![
            measure("flood_n8", &canonical("flood", 8, 2), 1),
            measure("flood_n8_again", &canonical("flood", 8, 2), 1),
        ];
        let text = render_json(&rows, "test");
        let parsed = parse_json(&text).expect("parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].scenario, "flood_n8");
        assert_eq!(parsed[0].events, rows[0].events);
        assert_eq!(parsed[0].messages, rows[0].messages);
        assert_eq!(parsed[0].wall_ns, rows[0].wall_ns);
        assert_eq!(parsed[0].verify_macs, rows[0].verify_macs);
        assert_eq!(parsed[0].verify_hits, rows[0].verify_hits);
    }

    #[test]
    fn crypto_rows_report_verifier_work() {
        // The probe deltas are only exact in a sequential process; under a
        // parallel test runner other tests can only ADD to the global
        // counters, so `> 0` assertions stay sound.
        let row = measure("ds_n8_f2", &canonical("dolev_strong", 8, 2), 1);
        assert!(row.verify_macs > 0, "Dolev-Strong verifies signatures");
        let flood = measure("flood_n8", &canonical("flood", 8, 2), 1);
        assert_eq!(
            flood.scenario, "flood_n8",
            "flood has no signatures; its macs column only picks up \
             whatever parallel tests flushed, so no exact assertion"
        );
    }

    #[test]
    fn regression_check_flags_slowdown_and_missing() {
        let mk = |s: &str, eps: f64| ThroughputRow {
            scenario: s.into(),
            n: 4,
            f: 1,
            events: 100,
            messages: 100,
            peak_queue: 10,
            queue_bytes: 4096,
            drops_at_enqueue: 0,
            wall_ns: 1000,
            events_per_sec: eps,
            verify_macs: 0,
            verify_hits: 0,
            reps: 1,
        };
        let baseline = vec![
            mk("a", 3000.0),
            mk("b", 3000.0),
            mk("c", 3000.0),
            mk("d", 3000.0),
        ];
        let fresh = vec![
            mk("a", 2900.0), // fine
            mk("b", 900.0),  // >3x slower
            mk("c", 1001.0), // just inside 3x
        ];
        let fails = regressions(&baseline, &fresh, 3.0);
        assert_eq!(fails.len(), 2, "{fails:?}");
        assert!(fails.iter().any(|m| m.contains("\"d\" missing")));
        assert!(fails.iter().any(|m| m.starts_with("b:")));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"schema\": \"wrong\", \"rows\": []}").is_err());
        assert!(parse_json("{\"schema\": \"gcl-bench/sim-throughput/v2\"}").is_err());
        // v1 documents (no queue_bytes / drops_at_enqueue) are rejected
        // by the schema tag, not by a field-level error.
        assert!(parse_json("{\"schema\": \"gcl-bench/sim-throughput/v1\", \"rows\": []}").is_err());
    }

    #[test]
    fn trajectory_specs_are_admissible() {
        let reg = crate::registry();
        for (key, spec) in rows_under_measure() {
            assert!(reg.validate(&spec).is_ok(), "{key} must be runnable");
        }
    }
}
