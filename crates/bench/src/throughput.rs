//! Simulator-throughput scenarios: the perf trajectory's point 0.
//!
//! Every number the workspace produces flows through the event loop in
//! `gcl_sim`, so events/second on these fixed scenarios is the ceiling on
//! how many executions (and how large an `n`) the repo can explore. The
//! `throughput` binary measures them and emits `BENCH_sim.json` at the repo
//! root; CI re-measures in `--quick` mode and fails on a >3x regression
//! against the committed baseline.
//!
//! Scenarios (all deterministic):
//!
//! * `flood_n{16,64,256}` — all-to-all flood: every party multicasts once,
//!   commits after hearing from everyone. Pure hot-loop stress (`O(n²)`
//!   messages, trivial per-message protocol work).
//! * `dolev_strong_n64_f21` — signature chains relayed over `f + 1`
//!   lock-step rounds: payloads that are expensive to clone.
//! * `brb2_n256_f85` — the paper's 2-round BRB at scale: `O(n²)` messages
//!   carrying signature bundles.
//! * `smr_1k` — the SMR engine committing 1000 commands: long-running
//!   pipelined slots.

use crate::scenarios::run_brb2;
use gcl_core::sync::DolevStrongBb;
use gcl_crypto::Keychain;
use gcl_sim::{Context, FixedDelay, Outcome, Protocol, Simulation, TimingModel};
use gcl_smr::{Counter, SlotEngine};
use gcl_types::{Config, Duration, GlobalTime, PartyId, Value};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// All-to-all flood: every party multicasts its id at start and commits
/// once it has heard from all `n` parties. `O(n²)` messages with trivial
/// handlers — the purest stress test of the event loop itself.
#[derive(Debug)]
pub struct AllToAllFlood {
    heard: u64,
    n: u64,
}

impl AllToAllFlood {
    /// A fresh flood participant for an `n`-party run.
    pub fn new(n: usize) -> Self {
        AllToAllFlood {
            heard: 0,
            n: n as u64,
        }
    }
}

impl Protocol for AllToAllFlood {
    type Msg = Value;

    fn start(&mut self, ctx: &mut dyn Context<Value>) {
        ctx.multicast(Value::new(u64::from(ctx.me().index())));
    }

    fn on_message(&mut self, _from: PartyId, _msg: Value, ctx: &mut dyn Context<Value>) {
        self.heard += 1;
        if self.heard == self.n {
            ctx.commit(Value::new(0));
            ctx.terminate();
        }
    }
}

/// Runs the all-to-all flood scenario.
pub fn run_flood(n: usize) -> Outcome {
    let cfg = Config::new(n, (n - 1) / 3).expect("config");
    let delta = Duration::from_micros(10);
    Simulation::build(cfg)
        .timing(TimingModel::lockstep(delta))
        .oracle(FixedDelay::new(delta))
        .spawn_honest(|_| AllToAllFlood::new(n))
        .run()
}

/// Runs stand-alone Dolev–Strong broadcast (`f + 1` lock-step rounds of
/// growing signature chains).
pub fn run_dolev_strong(n: usize, f: usize) -> Outcome {
    let cfg = Config::new(n, f).expect("config");
    let chain = Keychain::generate(n, 220);
    let delta = Duration::from_micros(100);
    Simulation::build(cfg)
        .timing(TimingModel::lockstep(delta))
        .oracle(FixedDelay::new(delta))
        .spawn_honest(|p| {
            DolevStrongBb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                delta,
                PartyId::new(0),
                (p == PartyId::new(0)).then_some(Value::new(7)),
            )
        })
        .run()
}

/// Runs the SMR engine on an `n = 4` counter log of `commands` commands.
pub fn run_smr(commands: u64, pipeline: usize) -> Outcome {
    let cfg = Config::new(4, 1).expect("config");
    let chain = Keychain::generate(4, 221);
    let delta = Duration::from_micros(100);
    let workload: Vec<Value> = (1..=commands).map(Value::new).collect();
    Simulation::build(cfg)
        .timing(TimingModel::PartialSynchrony {
            gst: GlobalTime::ZERO,
            big_delta: delta,
        })
        .oracle(FixedDelay::new(delta))
        .spawn_honest(move |p| {
            SlotEngine::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                delta,
                workload.clone(),
                pipeline,
                Arc::new(Mutex::new(Counter::default())),
            )
        })
        .run()
}

/// One measured scenario of the throughput trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Stable scenario key (the regression check joins on it).
    pub scenario: String,
    /// Parties.
    pub n: usize,
    /// Fault budget.
    pub f: usize,
    /// Events the runner processed in one run.
    pub events: u64,
    /// Point-to-point messages sent in one run.
    pub messages: u64,
    /// Peak event-queue depth in one run.
    pub peak_queue: u64,
    /// Wall time of the best repetition, nanoseconds.
    pub wall_ns: u64,
    /// `events / wall` of the best repetition.
    pub events_per_sec: f64,
    /// Repetitions actually measured (best wins; fast scenarios repeat
    /// until a cumulative wall-time floor so one noisy sample can't
    /// dominate).
    pub reps: u32,
}

/// Minimum cumulative measured wall time per scenario: microsecond-scale
/// runs repeat until this floor so a single scheduler hiccup on a noisy CI
/// runner can't masquerade as a 3x regression.
const MIN_TOTAL_NS: u64 = 5_000_000;
/// Hard cap on repetitions (keeps the floor from ballooning tiny runs).
const MAX_REPS: u32 = 64;

fn measure(
    scenario: &str,
    n: usize,
    f: usize,
    min_reps: u32,
    mut run: impl FnMut() -> Outcome,
) -> ThroughputRow {
    let mut best_ns = u64::MAX;
    let mut total_ns: u64 = 0;
    let mut reps = 0;
    let mut events = 0;
    let mut messages = 0;
    let mut peak_queue = 0;
    while reps < min_reps || (total_ns < MIN_TOTAL_NS && reps < MAX_REPS) {
        let start = Instant::now();
        let o = run();
        let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        events = o.events_processed();
        messages = o.messages_sent();
        peak_queue = o.peak_queue_depth() as u64;
        best_ns = best_ns.min(ns.max(1));
        total_ns = total_ns.saturating_add(ns);
        reps += 1;
    }
    ThroughputRow {
        scenario: scenario.to_string(),
        n,
        f,
        events,
        messages,
        peak_queue,
        wall_ns: best_ns,
        events_per_sec: events as f64 * 1e9 / best_ns as f64,
        reps,
    }
}

/// Measures every scenario. `quick` (the CI smoke mode) requires one
/// repetition per scenario; the full mode at least three. Either way,
/// sub-millisecond scenarios repeat up to the cumulative wall-time floor.
pub fn throughput_rows(quick: bool) -> Vec<ThroughputRow> {
    let reps = if quick { 1 } else { 3 };
    vec![
        measure("flood_n16", 16, 5, reps, || run_flood(16)),
        measure("flood_n64", 64, 21, reps, || run_flood(64)),
        measure("flood_n256", 256, 85, reps, || run_flood(256)),
        measure("dolev_strong_n64_f21", 64, 21, reps, || {
            run_dolev_strong(64, 21)
        }),
        measure("brb2_n256_f85", 256, 85, reps, || run_brb2(256, 85)),
        measure("smr_1k", 4, 1, reps, || run_smr(1000, 8)),
    ]
}

/// Renders rows as the `BENCH_sim.json` document.
pub fn render_json(rows: &[ThroughputRow], mode: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"gcl-bench/sim-throughput/v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"n\": {}, \"f\": {}, \"events\": {}, \
             \"messages\": {}, \"peak_queue\": {}, \"wall_ns\": {}, \
             \"events_per_sec\": {:.1}, \"reps\": {}}}{}\n",
            // Scenario keys are compile-time constants today; escape anyway
            // so a future dynamic name can't produce a malformed document.
            r.scenario.replace('\\', "\\\\").replace('"', "\\\""),
            r.n,
            r.f,
            r.events,
            r.messages,
            r.peak_queue,
            r.wall_ns,
            r.events_per_sec,
            r.reps,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `BENCH_sim.json` document back into rows (used by the CI
/// regression check; any structural problem is an `Err`).
pub fn parse_json(text: &str) -> Result<Vec<ThroughputRow>, String> {
    let doc = crate::json::parse(text)?;
    let obj = doc.as_object().ok_or("top level must be an object")?;
    let schema = obj
        .get("schema")
        .and_then(crate::json::Value::as_str)
        .ok_or("missing schema")?;
    if schema != "gcl-bench/sim-throughput/v1" {
        return Err(format!("unknown schema {schema:?}"));
    }
    let rows = obj
        .get("rows")
        .and_then(crate::json::Value::as_array)
        .ok_or("missing rows array")?;
    rows.iter()
        .map(|row| {
            let row = row.as_object().ok_or("row must be an object")?;
            let str_field = |k: &str| -> Result<String, String> {
                row.get(k)
                    .and_then(crate::json::Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("row missing string field {k:?}"))
            };
            let num_field = |k: &str| -> Result<f64, String> {
                row.get(k)
                    .and_then(crate::json::Value::as_f64)
                    .ok_or_else(|| format!("row missing numeric field {k:?}"))
            };
            Ok(ThroughputRow {
                scenario: str_field("scenario")?,
                n: num_field("n")? as usize,
                f: num_field("f")? as usize,
                events: num_field("events")? as u64,
                messages: num_field("messages")? as u64,
                peak_queue: num_field("peak_queue")? as u64,
                wall_ns: num_field("wall_ns")? as u64,
                events_per_sec: num_field("events_per_sec")?,
                reps: num_field("reps")? as u32,
            })
        })
        .collect()
}

/// Compares a fresh measurement against the committed baseline: every
/// baseline scenario must still exist and must not have regressed by more
/// than `factor` in events/sec. Returns the failures (empty = pass).
pub fn regressions(
    baseline: &[ThroughputRow],
    fresh: &[ThroughputRow],
    factor: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    if baseline.len() < 4 {
        failures.push(format!(
            "baseline has {} rows; expected at least 4",
            baseline.len()
        ));
    }
    for b in baseline {
        match fresh.iter().find(|r| r.scenario == b.scenario) {
            None => failures.push(format!("scenario {:?} missing from fresh run", b.scenario)),
            Some(r) if r.events_per_sec * factor < b.events_per_sec => failures.push(format!(
                "{}: {:.0} ev/s is a >{:.0}x regression from baseline {:.0} ev/s",
                r.scenario, r.events_per_sec, factor, b.events_per_sec
            )),
            Some(_) => {}
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_commits_and_counts_n_squared_messages() {
        let o = run_flood(8);
        assert!(o.all_honest_committed());
        assert_eq!(o.messages_sent(), 64, "n^2 point-to-point messages");
    }

    #[test]
    fn json_round_trips() {
        let rows = vec![
            measure("flood_n8", 8, 2, 1, || run_flood(8)),
            measure("flood_n8_again", 8, 2, 1, || run_flood(8)),
        ];
        let text = render_json(&rows, "test");
        let parsed = parse_json(&text).expect("parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].scenario, "flood_n8");
        assert_eq!(parsed[0].events, rows[0].events);
        assert_eq!(parsed[0].messages, rows[0].messages);
        assert_eq!(parsed[0].wall_ns, rows[0].wall_ns);
    }

    #[test]
    fn regression_check_flags_slowdown_and_missing() {
        let mk = |s: &str, eps: f64| ThroughputRow {
            scenario: s.into(),
            n: 4,
            f: 1,
            events: 100,
            messages: 100,
            peak_queue: 10,
            wall_ns: 1000,
            events_per_sec: eps,
            reps: 1,
        };
        let baseline = vec![
            mk("a", 3000.0),
            mk("b", 3000.0),
            mk("c", 3000.0),
            mk("d", 3000.0),
        ];
        let fresh = vec![
            mk("a", 2900.0), // fine
            mk("b", 900.0),  // >3x slower
            mk("c", 1001.0), // just inside 3x
        ];
        let fails = regressions(&baseline, &fresh, 3.0);
        assert_eq!(fails.len(), 2, "{fails:?}");
        assert!(fails.iter().any(|m| m.contains("\"d\" missing")));
        assert!(fails.iter().any(|m| m.starts_with("b:")));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"schema\": \"wrong\", \"rows\": []}").is_err());
        assert!(parse_json("{\"schema\": \"gcl-bench/sim-throughput/v1\"}").is_err());
    }
}
