//! Regenerates the Figure 8 tradeoff: latency `(1 + 1/2m)Δ + 1.5δ` vs
//! message cost `O(mn²)` as the early-vote grid `m` refines.
//!
//! `cargo run -p gcl-bench --release --bin fig8`

use gcl_bench::fig8_rows;

fn main() {
    println!("Figure 8 tradeoff: (Delta+1.5delta)-BB early-vote grid sweep");
    println!("(n = 5, f = 2, delta = 100us, Delta = 1000us, synchronized start)");
    println!();
    println!("|   m | measured    | predicted (1+1/2m)D+1.5d | messages |");
    println!("|-----|-------------|--------------------------|----------|");
    for row in fig8_rows(&[1, 2, 4, 5, 8, 10, 20, 50]) {
        println!(
            "| {:>3} | {:>9}us | {:>22}us | {:>8} |",
            row.m, row.measured_us, row.predicted_us, row.messages
        );
    }
    println!();
    println!("optimal (m -> inf): 1150us = Delta + 1.5*delta");
}
