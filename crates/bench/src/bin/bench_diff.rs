//! Wall-trajectory diff gate: a fresh `BENCH_net.json` / `BENCH_smr.json`
//! measurement against the committed baseline.
//!
//! ```text
//! bench_diff --baseline PATH --fresh PATH [--factor N]
//! ```
//!
//! Exits nonzero on structural drift (schema mismatch, a scenario row
//! missing from either side, renamed columns) or a gross regression (a
//! gated metric more than `--factor`× worse than the baseline; default
//! 25×, loose on purpose — wall numbers are machine noise across CI
//! runners, and the gate exists to catch categorical breakage, not to
//! re-litigate latency). Run in CI right after the per-document structure
//! checks, with `--fresh` pointing at the document the smoke job just
//! measured.

use gcl_bench::diff::{diff_docs, DEFAULT_FACTOR};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut baseline: Option<String> = None;
    let mut fresh: Option<String> = None;
    let mut factor = DEFAULT_FACTOR;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(p),
                None => return usage("--baseline needs a path"),
            },
            "--fresh" => match args.next() {
                Some(p) => fresh = Some(p),
                None => return usage("--fresh needs a path"),
            },
            "--factor" => match args.next().and_then(|x| x.parse::<f64>().ok()) {
                Some(x) if x >= 1.0 => factor = x,
                _ => return usage("--factor needs a number >= 1"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let (Some(baseline_path), Some(fresh_path)) = (baseline, fresh) else {
        return usage("--baseline and --fresh are both required");
    };

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(t) => Some(t),
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            None
        }
    };
    let (Some(base_text), Some(fresh_text)) = (read(&baseline_path), read(&fresh_path)) else {
        return ExitCode::FAILURE;
    };

    match diff_docs(&base_text, &fresh_text, factor) {
        Ok(summary) => {
            eprintln!("{baseline_path} vs {fresh_path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {baseline_path} vs {fresh_path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!("usage: bench_diff --baseline PATH --fresh PATH [--factor N]");
    ExitCode::FAILURE
}
