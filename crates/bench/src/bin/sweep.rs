//! The multi-threaded scenario-grid sweep: every registered protocol
//! family × admitted shapes × adversary mixes × seeds, audited for
//! safety and validity.
//!
//! ```text
//! sweep [--quick] [--threads N] [--seed S] [--out PATH]
//! ```
//!
//! * `--quick` — the CI smoke grid (2 shapes/family, 1 seed) instead of
//!   the full grid (4 shapes/family, jittered delays, 2 seeds).
//! * `--threads N` — worker threads (default: available parallelism,
//!   at least 4 so the smoke job exercises real concurrency).
//! * `--seed S` — base seed; per-cell seeds derive from it (default 1).
//! * `--out PATH` — where to write the `gcl-bench/sweep/v1` report
//!   (default `BENCH_sweep.json` in the current directory).
//!
//! Exit is nonzero on any agreement (safety) or validity violation, and
//! on a malformed report (the binary re-parses its own output through
//! the strict validator before declaring success) — exactly what the CI
//! `sweep-smoke` job gates on.

use gcl_bench::sweep::{render_report, run_default, validate_report};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .max(4);
    let mut seed = 1u64;
    let mut out = String::from("BENCH_sweep.json");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--threads" => match args.next().and_then(|x| x.parse().ok()) {
                Some(x) if x >= 1 => threads = x,
                _ => return usage("--threads needs a positive integer"),
            },
            "--seed" => match args.next().and_then(|x| x.parse().ok()) {
                Some(x) => seed = x,
                None => return usage("--seed needs an integer"),
            },
            "--out" => match args.next() {
                Some(p) => out = p,
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let mode = if quick { "quick" } else { "full" };
    eprintln!("sweeping the scenario grid ({mode} mode, {threads} threads, base seed {seed})...");
    let report = run_default(quick, threads, seed);
    eprintln!(
        "  {} cells ({} run, {} skipped), commit rate {:.1}%, \
         p50 latency {:?}us, {:.0} events/sec aggregate",
        report.cells.len(),
        report.cells_run(),
        report.cells_skipped(),
        report.commit_rate() * 100.0,
        report.latency_percentile(0.5),
        report.events_per_sec(),
    );

    let doc = render_report(&report, mode, seed);
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");

    let mut failed = false;
    for cell in report.safety_violations() {
        eprintln!("SAFETY VIOLATION: {}", cell.label);
        failed = true;
    }
    for cell in report.validity_violations() {
        eprintln!("VALIDITY VIOLATION: {}", cell.label);
        failed = true;
    }
    match validate_report(&doc) {
        Ok(summary) => eprintln!(
            "report validated: {} cells, {} run, {} safety / {} validity violations",
            summary.cells,
            summary.cells_run,
            summary.safety_violations,
            summary.validity_violations
        ),
        Err(e) => {
            eprintln!("error: emitted report is malformed: {e}");
            failed = true;
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    eprintln!("sweep clean: no safety or validity violations");
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!("usage: sweep [--quick] [--threads N] [--seed S] [--out PATH]");
    ExitCode::FAILURE
}
