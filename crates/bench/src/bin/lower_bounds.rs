//! Replays the paper's lower-bound executions:
//! `cargo run -p gcl-bench --release --bin lower_bounds`

use gcl_core::lower_bounds::{theorem10, theorem19, theorem4, theorem7, theorem9};
use gcl_types::{Config, Duration};

fn verdict(broken: bool) -> &'static str {
    if broken {
        "AGREEMENT VIOLATED (as the theorem predicts)"
    } else {
        "agreement preserved"
    }
}

fn main() {
    println!("Lower-bound executions, replayed\n");

    let o = theorem4::split_one_round_brb(4, 1, 1);
    println!(
        "Theorem 4  vs 1-round-BRB strawman      : {}",
        verdict(!o.agreement_holds())
    );
    let o = theorem4::split_two_round_brb(4, 1, 1);
    println!(
        "Theorem 4  vs 2-round-BRB (Fig 1)       : {}",
        verdict(!o.agreement_holds())
    );

    let o = theorem7::split_fab_at_5f_minus_2();
    println!(
        "Theorem 7  vs FaB-style 2-round, n=5f-2 : {}",
        verdict(!o.agreement_holds())
    );

    let o = theorem9::split_early_commit();
    println!(
        "Theorem 9  vs early-commit BB strawman  : {}",
        verdict(!o.agreement_holds())
    );
    let o = theorem9::same_adversary_against_fig5();
    println!(
        "Theorem 9  vs (Delta+delta)-n/3 (Fig 5) : {}",
        verdict(!o.agreement_holds())
    );

    let o = theorem10::tightness_execution(5, 2);
    println!(
        "Theorem 10 tightness (Fig 9, E1)        : latency {} (bound Delta+1.5delta+skew)",
        o.good_case_latency().expect("commits")
    );
    let o = theorem10::adversarial_execution();
    println!(
        "Theorem 10 adversarial (E2/E3 shape)    : {}",
        verdict(!o.agreement_holds())
    );

    println!("\nTheorem 19 dishonest-majority band ((floor(n/(n-f))-1)Delta <= measured <= O(n/(n-f))Delta):");
    let big_delta = Duration::from_micros(1_000);
    for (n, f) in [(4usize, 2usize), (6, 4), (8, 6), (10, 8)] {
        let cfg = Config::new(n, f).expect("config");
        let o = theorem19::good_case(n, f, big_delta);
        println!(
            "  n={n:>2} f={f:>2}: lower {:>6}  measured {:>6}  upper {:>6}",
            theorem19::lower_bound(cfg, big_delta),
            o.good_case_latency().expect("commits"),
            theorem19::upper_bound(cfg, big_delta),
        );
    }
}
