//! Open-loop SMR serving trajectory: emits the repo-root `BENCH_smr.json`
//! and (optionally) enforces the CI structure gate.
//!
//! ```text
//! smr_load [--out PATH] [--check BASELINE] [--quick] [--deadline-ms N]
//! ```
//!
//! * `--out PATH` — where to write the JSON document (default
//!   `BENCH_smr.json` in the current directory).
//! * `--check BASELINE` — after measuring, parse `BASELINE` and exit
//!   nonzero if it is malformed, misses the three-configuration floor,
//!   the leader-failover row or the async scale row, or any row records a
//!   safety/liveness or exactly-once failure. Deliberately no rate or
//!   latency comparison: wall numbers are machine noise across CI runners.
//! * `--quick` — CI smoke shape (fewer requests per configuration).
//! * `--deadline-ms N` — per-run wall deadline override (quiesce exits
//!   early, so a healthy run never waits it out).

use gcl_bench::smrload::{check_doc, render_json, smr_load_rows, LoadOptions};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut out = String::from("BENCH_smr.json");
    let mut check: Option<String> = None;
    let mut opts = LoadOptions::full();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => out = p,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(p) => check = Some(p),
                None => return usage("--check needs a path"),
            },
            "--quick" => {
                let deadline = opts.deadline;
                opts = LoadOptions::quick();
                // An explicit --deadline-ms before --quick still wins.
                if deadline != LoadOptions::full().deadline {
                    opts.deadline = deadline;
                }
            }
            "--deadline-ms" => match args.next().and_then(|x| x.parse().ok()) {
                Some(ms) => opts.deadline = Duration::from_millis(ms),
                None => return usage("--deadline-ms needs a number"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    eprintln!(
        "open-loop SMR load over the serving backends: {} requests per config, {:?} gap...",
        opts.requests, opts.gap
    );
    let rows = smr_load_rows(opts);
    for r in &rows {
        eprintln!(
            "  {:<7} n={:<3} batch={:<3} pipeline={:<2} crashes={} acked={:<4}/{:<4} \
             committed={:<4} rate={:>8.1}/s p50={} p99={} retries={} audit={}",
            r.backend,
            r.n,
            r.batch,
            r.pipeline,
            r.crashes,
            r.acked,
            r.requests,
            r.committed,
            r.commits_per_sec,
            r.p50_us.map_or_else(|| "-".into(), |us| format!("{us}us")),
            r.p99_us.map_or_else(|| "-".into(), |us| format!("{us}us")),
            r.retries,
            if r.exactly_once && r.acked_applied {
                "ok"
            } else {
                "FAIL"
            },
        );
    }

    let doc = render_json(&rows);
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");

    // The freshly measured document must pass its own structural check —
    // this is the liveness/safety gate for the serving pipeline.
    if let Err(e) = check_doc(&doc) {
        eprintln!("error: fresh measurement fails the structure check: {e}");
        return ExitCode::FAILURE;
    }

    if let Some(baseline_path) = check {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_doc(&text) {
            Ok(rows) => eprintln!("baseline {baseline_path} well-formed ({rows} rows)"),
            Err(e) => {
                eprintln!("error: baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!("usage: smr_load [--out PATH] [--check BASELINE] [--quick] [--deadline-ms N]");
    ExitCode::FAILURE
}
