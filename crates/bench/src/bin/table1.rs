//! Regenerates Table 1 of the paper: `cargo run -p gcl-bench --release --bin table1`.

use gcl_bench::table1_rows;

fn main() {
    println!("Table 1 reproduction (delta = 100us actual, Delta = 1000us conservative)");
    println!();
    println!(
        "| {:<38} | {:<20} | {:<34} | n,f   | paper bound          | measured   | rounds | ok |",
        "problem", "resilience", "protocol"
    );
    println!(
        "|{}|{}|{}|-------|----------------------|------------|--------|----|",
        "-".repeat(40),
        "-".repeat(22),
        "-".repeat(36)
    );
    for row in table1_rows() {
        println!(
            "| {:<38} | {:<20} | {:<34} | {:>2},{:<2} | {:<20} | {:>7}us | {:<6} | {}  |",
            row.problem,
            row.resilience,
            row.protocol,
            row.n,
            row.f,
            row.paper,
            row.measured_us,
            row.rounds.map_or("-".to_string(), |r| r.to_string()),
            if row.matches() { "y" } else { "N" },
        );
    }
}
