//! Simulator-throughput measurement: emits the `BENCH_sim.json` trajectory
//! point and (optionally) enforces the CI regression gate.
//!
//! ```text
//! throughput [--quick] [--out PATH] [--check BASELINE] [--max-regression X]
//! ```
//!
//! * `--quick` — one repetition per scenario (CI smoke mode; default is
//!   best-of-three).
//! * `--out PATH` — where to write the JSON document (default
//!   `BENCH_sim.json` in the current directory).
//! * `--check BASELINE` — after measuring, parse `BASELINE` and exit
//!   nonzero if it is malformed, has fewer than 4 rows, or any scenario's
//!   events/sec regressed by more than the allowed factor.
//! * `--max-regression X` — the allowed slowdown factor for `--check`
//!   (default 3.0).

use gcl_bench::throughput::{parse_json, regressions, render_json, throughput_rows};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = String::from("BENCH_sim.json");
    let mut check: Option<String> = None;
    let mut max_regression = 3.0f64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out = p,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(p) => check = Some(p),
                None => return usage("--check needs a path"),
            },
            "--max-regression" => match args.next().and_then(|x| x.parse().ok()) {
                Some(x) => max_regression = x,
                None => return usage("--max-regression needs a number"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let mode = if quick { "quick" } else { "full" };
    eprintln!("measuring simulator throughput ({mode} mode)...");
    let rows = throughput_rows(quick);
    for r in &rows {
        eprintln!(
            "  {:<22} n={:<4} events={:<8} messages={:<8} drops={:<8} qbytes={:<9} macs={:<8} hits={:<8} wall={:>10}ns  {:>12.0} ev/s",
            r.scenario, r.n, r.events, r.messages, r.drops_at_enqueue, r.queue_bytes,
            r.verify_macs, r.verify_hits, r.wall_ns, r.events_per_sec
        );
    }

    let doc = render_json(&rows, mode);
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");

    if let Some(baseline_path) = check {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match parse_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: baseline {baseline_path} is malformed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let failures = regressions(&baseline, &rows, max_regression);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("regression: {f}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "regression check passed ({} scenarios within {max_regression}x of baseline)",
            baseline.len()
        );
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!("usage: throughput [--quick] [--out PATH] [--check BASELINE] [--max-regression X]");
    ExitCode::FAILURE
}
