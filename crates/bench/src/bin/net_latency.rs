//! Wall-clock latency trajectory: emits the repo-root `BENCH_net.json`
//! and (optionally) enforces the CI structure gate.
//!
//! ```text
//! net_latency [--out PATH] [--check BASELINE] [--deadline-ms N]
//!             [--scale-deadline-ms N]
//! ```
//!
//! * `--out PATH` — where to write the JSON document (default
//!   `BENCH_net.json` in the current directory).
//! * `--check BASELINE` — after measuring, parse `BASELINE` and exit
//!   nonzero if it is malformed, misses a (family × backend) row or an
//!   async scale row, or any row records a safety/liveness failure.
//!   Deliberately no latency comparison: wall numbers are machine noise
//!   across CI runners.
//! * `--deadline-ms N` — per-run wall deadline for the catalog rows
//!   (default 2000; honest termination exits early, so the good case
//!   never waits it out).
//! * `--scale-deadline-ms N` — per-run deadline for the large-n async
//!   rows (default 120000: the n = 1024 rows move ~2 M real frames, so
//!   the ceiling is generous — a healthy run exits in seconds).

use gcl_bench::netlat::{check_doc, net_latency_rows, render_json, scale_rows};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut out = String::from("BENCH_net.json");
    let mut check: Option<String> = None;
    let mut deadline = Duration::from_millis(2_000);
    let mut scale_deadline = Duration::from_millis(120_000);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => out = p,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(p) => check = Some(p),
                None => return usage("--check needs a path"),
            },
            "--deadline-ms" => match args.next().and_then(|x| x.parse().ok()) {
                Some(ms) => deadline = Duration::from_millis(ms),
                None => return usage("--deadline-ms needs a number"),
            },
            "--scale-deadline-ms" => match args.next().and_then(|x| x.parse().ok()) {
                Some(ms) => scale_deadline = Duration::from_millis(ms),
                None => return usage("--scale-deadline-ms needs a number"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    eprintln!("measuring wall-clock good-case latencies (deadline {deadline:?} per run)...");
    let mut rows = net_latency_rows(deadline);
    eprintln!("measuring async scale rows (deadline {scale_deadline:?} per run)...");
    rows.extend(scale_rows(scale_deadline));
    for r in &rows {
        eprintln!(
            "  {:<16} {:<7} n={:<4} f={:<2} messages={:<8} latency={}{}",
            r.family,
            r.backend,
            r.n,
            r.f,
            r.messages,
            r.latency_us
                .map_or_else(|| "-".into(), |us| format!("{us}us")),
            r.sched.map_or_else(String::new, |s| format!(
                " workers={} wakeups={} peak_out={}B",
                s.workers, s.wakeups, s.peak_outbound_bytes
            )),
        );
    }

    let doc = render_json(&rows);
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");

    // The freshly measured document must pass its own structural check —
    // this is the liveness/safety gate for the wall backends.
    if let Err(e) = check_doc(&doc) {
        eprintln!("error: fresh measurement fails the structure check: {e}");
        return ExitCode::FAILURE;
    }

    if let Some(baseline_path) = check {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_doc(&text) {
            Ok(rows) => eprintln!("baseline {baseline_path} well-formed ({rows} rows)"),
            Err(e) => {
                eprintln!("error: baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: net_latency [--out PATH] [--check BASELINE] [--deadline-ms N] \
         [--scale-deadline-ms N]"
    );
    ExitCode::FAILURE
}
