//! Measurement harness: every row of the paper's Table 1 and every
//! figure-derived series, regenerated from the implementations — all of
//! it driven by the scenario registry ([`registry`]): protocol families
//! register once in `gcl_core` (plus the bench-owned `flood`/`smr`
//! here), and tables, figures, throughput rows, sweeps and property
//! suites build [`gcl_sim::ScenarioSpec`] values against that registry.
//!
//! Binaries (`cargo run -p gcl_bench --release --bin <name>`):
//!
//! * `table1` — the complete Table 1 reproduction (paper bound vs measured).
//! * `fig8` — the Figure 8 latency/communication tradeoff sweep over the
//!   early-vote grid resolution `m`.
//! * `lower_bounds` — replays the lower-bound executions and reports which
//!   strawman broke and which real protocol survived.
//! * `throughput` — simulator events/sec on the fixed [`throughput`]
//!   scenarios; writes the repo-root `BENCH_sim.json` trajectory point and
//!   backs the CI `bench-smoke` regression gate (`--quick --check`).
//! * `sweep` — the multi-threaded scenario grid: every registered family ×
//!   shapes × adversary mixes × seeds, audited for safety/validity and
//!   emitted as a `gcl-bench/sweep/v1` report (CI `sweep-smoke` gate).
//!
//! Criterion benches (`cargo bench -p gcl_bench`) time the same scenarios
//! as wall-clock simulator throughput; set `GCL_BENCH_JSON=<path>` to get
//! a machine-readable summary in the same schema-plus-rows format.
//!
//! [`conformance`] runs every registered family on *all four* execution
//! backends — the simulator and `gcl_net`'s thread, socket and async
//! runtimes — and compares committed values (the CI `net-smoke` gate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod diff;
pub mod json;
pub mod netlat;
pub mod scenarios;
pub mod smrload;
pub mod sweep;
pub mod throughput;

use gcl_sim::ScenarioRegistry;
use std::sync::OnceLock;

/// The workspace-wide scenario registry: every `gcl_core` protocol family
/// plus the bench-owned `flood` and `smr` families. Built once per
/// process; all bench consumers share it.
pub fn registry() -> &'static ScenarioRegistry {
    static REG: OnceLock<ScenarioRegistry> = OnceLock::new();
    REG.get_or_init(|| {
        let mut reg = gcl_core::registry();
        throughput::register(&mut reg);
        reg
    })
}

pub use conformance::{conformance_cells, wall_backends, wall_spec, BackendRun, ConformanceCell};
pub use netlat::{net_latency_rows, scale_rows, NetLatencyRow};
pub use scenarios::{
    canonical, fig8_rows, majority_rows, run, table1_rows, Fig8Row, MajorityRow, Table1Row,
};
pub use sweep::{default_grid, grid, render_report, validate_report, GridOptions, ReportSummary};
pub use throughput::{throughput_rows, ThroughputRow};
