//! Measurement harness: every row of the paper's Table 1 and every
//! figure-derived series, regenerated from the implementations.
//!
//! Binaries (`cargo run -p gcl_bench --release --bin <name>`):
//!
//! * `table1` — the complete Table 1 reproduction (paper bound vs measured).
//! * `fig8` — the Figure 8 latency/communication tradeoff sweep over the
//!   early-vote grid resolution `m`.
//! * `lower_bounds` — replays the lower-bound executions and reports which
//!   strawman broke and which real protocol survived.
//! * `throughput` — simulator events/sec on the fixed [`throughput`]
//!   scenarios; writes the repo-root `BENCH_sim.json` trajectory point and
//!   backs the CI `bench-smoke` regression gate (`--quick --check`).
//!
//! Criterion benches (`cargo bench -p gcl_bench`) time the same scenarios
//! as wall-clock simulator throughput; set `GCL_BENCH_JSON=<path>` to get
//! a machine-readable summary in the same schema-plus-rows format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod scenarios;
pub mod throughput;

pub use scenarios::{fig8_rows, majority_rows, table1_rows, Fig8Row, MajorityRow, Table1Row};
pub use throughput::{throughput_rows, ThroughputRow};
