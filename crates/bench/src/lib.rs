//! Measurement harness: every row of the paper's Table 1 and every
//! figure-derived series, regenerated from the implementations.
//!
//! Binaries (`cargo run -p gcl_bench --release --bin <name>`):
//!
//! * `table1` — the complete Table 1 reproduction (paper bound vs measured).
//! * `fig8` — the Figure 8 latency/communication tradeoff sweep over the
//!   early-vote grid resolution `m`.
//! * `lower_bounds` — replays the lower-bound executions and reports which
//!   strawman broke and which real protocol survived.
//!
//! Criterion benches (`cargo bench -p gcl_bench`) time the same scenarios
//! as wall-clock simulator throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenarios;

pub use scenarios::{fig8_rows, majority_rows, table1_rows, Fig8Row, MajorityRow, Table1Row};
