//! The two-backend conformance gate (CI job `net-smoke`).
//!
//! Every registered scenario family runs on the deterministic simulator
//! AND on `gcl_net`'s thread-per-party wall-clock runtime, from the same
//! wall-safe spec, and must commit the same value. The suite's hard wall
//! ceiling is the regression gate for the net runtime's early-termination
//! protocol: each cell runs against a 2 s deadline, so ~15 families only
//! fit under the ceiling if honest termination exits every run early
//! (the pre-fix runtime slept each run's full budget unconditionally).

use gcl_bench::conformance::conformance_cells;
use std::time::{Duration, Instant};

#[test]
fn every_family_commits_the_same_value_on_both_backends() {
    let started = Instant::now();
    let cells = conformance_cells(Duration::from_secs(2));
    assert!(
        cells.len() >= 15,
        "expected the full family catalog, got {}",
        cells.len()
    );
    for cell in &cells {
        assert!(
            cell.sim_value.is_some(),
            "{}: the honest good case must commit on the simulator",
            cell.family
        );
        assert!(cell.holds(), "backend divergence: {}", cell.describe());
    }
    let wall = started.elapsed();
    assert!(
        wall < Duration::from_secs(30),
        "net conformance took {wall:?}; with early termination working, \
         ~15 good-case runs must finish far below the 30 s ceiling \
         (sleep-to-deadline would need >30 s on its own)"
    );
}
