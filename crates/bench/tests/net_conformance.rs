//! The four-backend conformance gate (CI job `net-smoke`).
//!
//! Every registered scenario family runs on the deterministic simulator,
//! on `gcl_net`'s thread-per-party wall-clock runtime, on its
//! socket-transport runtime AND on its readiness-loop async runtime, from
//! the same wall-safe spec, and must commit the same value everywhere.
//! The socket column is the wire codec's end-to-end gate: its messages
//! really cross Unix-domain sockets as bytes, so a family whose message
//! type does not round-trip through `gcl_types::wire` cannot pass. The
//! async column additionally gates the worker-pool scheduler: partial
//! reads, the timer wheel, and n-parties-over-few-threads multiplexing
//! must be invisible to the protocols.
//!
//! The suite's hard wall ceiling is the regression gate for the wall
//! runtimes' early-termination protocol: each cell runs three wall
//! backends against 2 s deadlines, so ~15 families only fit under the
//! ceiling if honest termination exits every run early (the pre-fix
//! runtime slept each run's full budget unconditionally).

use gcl_bench::conformance::conformance_cells;
use std::time::{Duration, Instant};

#[test]
fn every_family_commits_the_same_value_on_all_backends() {
    let started = Instant::now();
    let cells = conformance_cells(Duration::from_secs(2));
    assert!(
        cells.len() >= 15,
        "expected the full family catalog, got {}",
        cells.len()
    );
    for cell in &cells {
        assert!(
            cell.sim_value.is_some(),
            "{}: the honest good case must commit on the simulator",
            cell.family
        );
        assert_eq!(
            cell.runs.len(),
            3,
            "{}: expected the net, socket and async columns",
            cell.family
        );
        assert!(cell.holds(), "backend divergence: {}", cell.describe());
    }
    let wall = started.elapsed();
    assert!(
        wall < Duration::from_secs(45),
        "conformance took {wall:?}; with early termination working, \
         ~15 good-case runs on three wall backends must finish far below \
         the 45 s ceiling (sleep-to-deadline would need >90 s on its own)"
    );
}
