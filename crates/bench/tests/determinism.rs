//! Determinism regression suite: the hot-loop rewrite (scratch buffers,
//! flat link counters, bucketed event queue, shared-payload multicast)
//! must change **no semantics**. Every `scenarios` entry point is pinned
//! to the exact `Outcome` fields the pre-refactor runner produced
//! (captured at commit `a1831c1`): events processed, point-to-point
//! messages, good-case latency, and commit round. Any divergence —
//! a reordered delivery, a dropped clone, a changed tie-break — shows up
//! here as a hard failure.

use gcl_bench::scenarios::{
    run_2delta, run_bracha, run_brb2, run_majority, run_pbft, run_sync_start, run_third,
    run_unsync, run_vbb,
};
use gcl_bench::throughput::{run_dolev_strong, run_flood, run_smr};
use gcl_sim::Outcome;

/// `(label, events_processed, messages_sent, good_case_latency_us,
/// good_case_rounds)` — values recorded on the pre-refactor runner.
type Reference = (&'static str, u64, u64, Option<u64>, Option<u32>);

fn check(reference: Reference, outcome: &Outcome) {
    let (label, events, messages, latency_us, rounds) = reference;
    assert_eq!(
        outcome.events_processed(),
        events,
        "{label}: events_processed drifted"
    );
    assert_eq!(
        outcome.messages_sent(),
        messages,
        "{label}: messages_sent drifted"
    );
    assert_eq!(
        outcome.good_case_latency().map(|d| d.as_micros()),
        latency_us,
        "{label}: good_case_latency drifted"
    );
    assert_eq!(
        outcome.good_case_rounds(),
        rounds,
        "{label}: good_case_rounds drifted"
    );
}

#[test]
fn brb2_matches_pre_refactor_runner() {
    check(("brb2_4_1", 21, 32, Some(200), Some(2)), &run_brb2(4, 1));
    check(("brb2_7_2", 50, 98, Some(200), Some(2)), &run_brb2(7, 2));
}

#[test]
fn bracha_matches_pre_refactor_runner() {
    check(
        ("bracha_4_1", 38, 36, Some(300), Some(3)),
        &run_bracha(4, 1),
    );
}

#[test]
fn vbb_matches_pre_refactor_runner() {
    check(("vbb_4_1", 21, 32, Some(200), Some(2)), &run_vbb(4, 1));
    check(("vbb_9_2", 82, 162, Some(200), Some(2)), &run_vbb(9, 2));
}

#[test]
fn pbft_matches_pre_refactor_runner() {
    check(("pbft_8_2", 131, 192, Some(300), Some(3)), &run_pbft(8, 2));
}

#[test]
fn sync_bb_matches_pre_refactor_runner() {
    check(
        ("2delta_4_1", 96, 80, Some(200), Some(2)),
        &run_2delta(4, 1),
    );
    check(("third_3_1", 60, 45, Some(1100), Some(3)), &run_third(3, 1));
    check(
        ("third_6_2", 324, 288, Some(1100), Some(3)),
        &run_third(6, 2),
    );
    check(
        ("sync_start_5_2", 190, 150, Some(1100), Some(3)),
        &run_sync_start(5, 2),
    );
    check(
        ("unsync_5_2_m10", 744, 620, Some(1150), Some(12)),
        &run_unsync(5, 2, 10),
    );
}

#[test]
fn majority_matches_pre_refactor_runner() {
    check(
        ("majority_4_2", 38, 31, Some(4000), Some(4)),
        &run_majority(4, 2),
    );
    check(
        ("majority_6_4", 58, 51, Some(5000), Some(4)),
        &run_majority(6, 4),
    );
}

#[test]
fn throughput_scenarios_match_pre_refactor_runner() {
    check(
        ("throughput_flood_16", 272, 256, Some(10), Some(1)),
        &run_flood(16),
    );
    check(
        ("throughput_ds_16_5", 352, 240, Some(1800), Some(2)),
        &run_dolev_strong(16, 5),
    );
    check(
        ("throughput_smr_50", 1637, 1600, Some(2600), Some(26)),
        &run_smr(50, 4),
    );
}

#[test]
fn repeated_runs_are_bit_identical() {
    // Same build, same seed, same everything: the runner has no hidden
    // nondeterminism (hash maps, pointer ordering, wall clocks).
    let (a, b) = (run_unsync(5, 2, 10), run_unsync(5, 2, 10));
    assert_eq!(a.events_processed(), b.events_processed());
    assert_eq!(a.messages_sent(), b.messages_sent());
    assert_eq!(a.peak_queue_depth(), b.peak_queue_depth());
    assert_eq!(a.good_case_latency(), b.good_case_latency());
    assert_eq!(a.good_case_rounds(), b.good_case_rounds());
}
