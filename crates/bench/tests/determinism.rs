//! Determinism regression suite: neither the hot-loop rewrite (PR 2) nor
//! the scenario-registry refactor (PR 3) may change **any semantics**.
//! Every canonical registry spec is pinned to the exact `Outcome` fields
//! the pre-refactor runner produced (captured at commit `a1831c1`):
//! events processed, point-to-point messages, good-case latency, and
//! commit round. Any divergence — a reordered delivery, a dropped clone,
//! a changed tie-break, a spec that assembles its simulation differently
//! than the old hand-wired `run_*` glue — shows up here as a hard
//! failure.

use gcl_bench::{canonical, registry, run};
use gcl_sim::{Outcome, ScenarioSpec};

/// `(label, events_processed, messages_sent, good_case_latency_us,
/// good_case_rounds)` — values recorded on the pre-refactor runner.
type Reference = (&'static str, u64, u64, Option<u64>, Option<u32>);

fn check(reference: Reference, spec: &ScenarioSpec) {
    let (label, events, messages, latency_us, rounds) = reference;
    let outcome: Outcome = run(spec);
    assert_eq!(
        outcome.events_processed(),
        events,
        "{label}: events_processed drifted"
    );
    assert_eq!(
        outcome.messages_sent(),
        messages,
        "{label}: messages_sent drifted"
    );
    assert_eq!(
        outcome.good_case_latency().map(|d| d.as_micros()),
        latency_us,
        "{label}: good_case_latency drifted"
    );
    assert_eq!(
        outcome.good_case_rounds(),
        rounds,
        "{label}: good_case_rounds drifted"
    );
}

#[test]
fn brb2_matches_pre_refactor_runner() {
    check(
        ("brb2_4_1", 21, 32, Some(200), Some(2)),
        &canonical("brb2", 4, 1),
    );
    check(
        ("brb2_7_2", 50, 98, Some(200), Some(2)),
        &canonical("brb2", 7, 2),
    );
}

#[test]
fn bracha_matches_pre_refactor_runner() {
    check(
        ("bracha_4_1", 38, 36, Some(300), Some(3)),
        &canonical("bracha", 4, 1),
    );
}

#[test]
fn vbb_matches_pre_refactor_runner() {
    check(
        ("vbb_4_1", 21, 32, Some(200), Some(2)),
        &canonical("vbb5f1", 4, 1),
    );
    check(
        ("vbb_9_2", 82, 162, Some(200), Some(2)),
        &canonical("vbb5f1", 9, 2),
    );
}

#[test]
fn pbft_matches_pre_refactor_runner() {
    check(
        ("pbft_8_2", 131, 192, Some(300), Some(3)),
        &canonical("pbft3", 8, 2),
    );
}

#[test]
fn sync_bb_matches_pre_refactor_runner() {
    check(
        ("2delta_4_1", 96, 80, Some(200), Some(2)),
        &canonical("bb_2delta", 4, 1),
    );
    check(
        ("third_3_1", 60, 45, Some(1100), Some(3)),
        &canonical("bb_third", 3, 1),
    );
    check(
        ("third_6_2", 324, 288, Some(1100), Some(3)),
        &canonical("bb_third", 6, 2),
    );
    check(
        ("sync_start_5_2", 190, 150, Some(1100), Some(3)),
        &canonical("bb_sync_start", 5, 2),
    );
    // The canonical `bb_unsync` spec carries the odd-half-δ skew and
    // grid m = 10 in its registration.
    check(
        ("unsync_5_2_m10", 744, 620, Some(1150), Some(12)),
        &canonical("bb_unsync", 5, 2),
    );
}

#[test]
fn majority_matches_pre_refactor_runner() {
    // The canonical `bb_majority` spec carries the all-`f`-silent
    // trailing adversary mix in its registration.
    check(
        ("majority_4_2", 38, 31, Some(4000), Some(4)),
        &canonical("bb_majority", 4, 2),
    );
    check(
        ("majority_6_4", 58, 51, Some(5000), Some(4)),
        &canonical("bb_majority", 6, 4),
    );
}

#[test]
fn throughput_scenarios_match_pre_refactor_runner() {
    check(
        ("throughput_flood_16", 272, 256, Some(10), Some(1)),
        &canonical("flood", 16, 5),
    );
    check(
        ("throughput_ds_16_5", 352, 240, Some(1800), Some(2)),
        &canonical("dolev_strong", 16, 5),
    );
    // Re-pinned when the SMR engine gained batched proposals: 50 commands
    // at the default batch of 4 now ride 13 slots plus the seal, so the
    // event/message/latency envelope shrank accordingly.
    check(
        ("throughput_smr_50", 529, 504, Some(800), Some(8)),
        &canonical("smr", 4, 1).with_workload(50, 4),
    );
}

#[test]
fn leader_crash_smr_rotation_is_deterministic_and_pinned() {
    // Leader rotation must be a pure function of (spec, seed): the view-1
    // leader of the crashed slots hands off on the deterministic view
    // timetable, so the whole failover trace — events, messages, commit
    // round — pins exactly, and a sweep over crash cells reports the
    // same numbers at any thread count.
    use gcl_sim::{AdversaryMix, Sweep};
    use gcl_types::PartyId;
    let spec = canonical("smr", 4, 1)
        .with_workload(50, 4)
        .with_adversary(AdversaryMix::CrashAt {
            party: PartyId::new(0),
            handled: 12,
        });
    // events re-pinned 793 -> 619 for the enqueue-time dead-recipient
    // drop: the 174 deliveries addressed to the crashed leader after it
    // terminated are now discarded at enqueue instead of being popped
    // and filtered; messages, latency, and rounds are byte-identical.
    check(
        ("smr_50_leader_crash", 619, 742, Some(2600), Some(17)),
        &spec,
    );
    let cells: Vec<ScenarioSpec> = (0..4).map(|i| spec.clone().with_seed(100 + i)).collect();
    let one = Sweep::new(registry())
        .cells(cells.clone())
        .threads(1)
        .seed(7)
        .run();
    let four = Sweep::new(registry()).cells(cells).threads(4).seed(7).run();
    assert!(
        one.deterministic_eq(&four),
        "leader-crash SMR cells depend on sweep thread count"
    );
    assert_eq!(one.safety_violations().count(), 0);
}

#[test]
fn repeated_runs_are_bit_identical() {
    // Same spec, same seed, same everything: the registry path has no
    // hidden nondeterminism (hash maps, pointer ordering, wall clocks).
    let spec = canonical("bb_unsync", 5, 2);
    let (a, b) = (run(&spec), run(&spec));
    assert_eq!(a.events_processed(), b.events_processed());
    assert_eq!(a.messages_sent(), b.messages_sent());
    assert_eq!(a.peak_queue_depth(), b.peak_queue_depth());
    assert_eq!(a.good_case_latency(), b.good_case_latency());
    assert_eq!(a.good_case_rounds(), b.good_case_rounds());
}

#[test]
fn sweep_of_200_cells_is_deterministic_across_thread_counts() {
    // The acceptance bar for the sweep engine: a ≥200-cell grid across
    // ≥4 worker threads produces the same report as a single-threaded
    // run of the same grid and base seed — scheduling must not leak into
    // any audited number.
    use gcl_bench::sweep::{grid, GridOptions};
    use gcl_sim::Sweep;
    let opts = GridOptions {
        shapes_per_family: 4,
        seeds: 1,
        jitter: true,
        crashes: true,
        // Keep the debug-build suite snappy: the n = 14 smr cells cost
        // more than the rest of the grid combined under `cargo test`.
        max_parties: 10,
    };
    let cells = grid(opts);
    assert!(cells.len() >= 200, "only {} cells", cells.len());
    let four = Sweep::new(registry())
        .cells(cells.clone())
        .threads(4)
        .seed(99)
        .run();
    let eight = Sweep::new(registry())
        .cells(cells)
        .threads(8)
        .seed(99)
        .run();
    assert_eq!(four.threads, 4);
    assert!(
        four.deterministic_eq(&eight),
        "sweep report depends on thread count / scheduling"
    );
    assert_eq!(four.safety_violations().count(), 0);
    assert_eq!(four.validity_violations().count(), 0);
}
