//! Wall-clock sweep smoke (CI job `net-smoke`): `Sweep` drives a small
//! thread-budgeted grid over the wall backends.
//!
//! The per-family conformance cells run one backend run at a time; this
//! suite is the concurrency stress the ROADMAP asked for — several wall
//! runs in flight at once (each itself thread-per-party), work-stealing
//! workers, overlapping dispatchers. Assertions are deliberately loose on
//! time (wall latency is machine noise) and strict on safety: no
//! agreement or validity violation, every good-case cell committed.

use gcl_bench::conformance::wall_spec;
use gcl_bench::registry;
use gcl_net::{AsyncBackend, NetBackend, SocketBackend};
use gcl_sim::{ScenarioSpec, Sweep};
use std::time::{Duration, Instant};

/// A 12-cell grid over fast families: 3 seeds each, wall-safe bounds.
fn grid() -> Vec<ScenarioSpec> {
    let reg = registry();
    let mut cells = Vec::new();
    for key in ["brb2", "bracha", "flood", "vbb5f1"] {
        for seed in 0..3u64 {
            cells.push(wall_spec(reg, key).with_seed(seed));
        }
    }
    cells
}

#[test]
fn sweep_over_net_backend_upholds_safety() {
    let started = Instant::now();
    let backend = NetBackend::new().deadline(Duration::from_secs(2));
    // threads(2): two wall runs in flight — with n = 4 parties each
    // that is ~10 concurrent engine threads, a real but bounded budget.
    let report = Sweep::new(registry())
        .backend(&backend)
        .cells(grid())
        .threads(2)
        .run();
    assert_eq!(report.cells.len(), 12);
    assert_eq!(report.cells_run(), 12, "wall specs all admissible");
    assert_eq!(report.safety_violations().count(), 0);
    assert_eq!(report.validity_violations().count(), 0);
    assert_eq!(report.commit_rate(), 1.0, "good-case cells all commit");
    assert!(report.total_messages() > 0);
    let wall = started.elapsed();
    assert!(
        wall < Duration::from_secs(25),
        "12 good-case wall cells took {wall:?}; early termination must \
         keep the grid far under the deadline budget"
    );
}

#[test]
fn sweep_over_socket_backend_upholds_safety() {
    // Smaller grid: socket cells carry codec + syscall overhead, and the
    // point here is Sweep × socket-engine concurrency, not coverage (the
    // conformance suite covers every family).
    let backend = SocketBackend::new().deadline(Duration::from_secs(2));
    let reg = registry();
    let cells: Vec<ScenarioSpec> = ["brb2", "flood"]
        .iter()
        .flat_map(|key| (0..2u64).map(|s| wall_spec(reg, key).with_seed(s)))
        .collect();
    let report = Sweep::new(reg)
        .backend(&backend)
        .cells(cells)
        .threads(2)
        .run();
    assert_eq!(report.cells_run(), 4);
    assert_eq!(report.safety_violations().count(), 0);
    assert_eq!(report.validity_violations().count(), 0);
    assert_eq!(report.commit_rate(), 1.0);
}

#[test]
fn sweep_over_async_backend_upholds_safety() {
    // Sweep × readiness loop: several multiplexed runs in flight at once,
    // each with its own scheduler thread and worker pool. Same loose-time,
    // strict-safety discipline as the other wall sweeps.
    let backend = AsyncBackend::new()
        .deadline(Duration::from_secs(2))
        .workers(2);
    let reg = registry();
    let cells: Vec<ScenarioSpec> = ["brb2", "flood"]
        .iter()
        .flat_map(|key| (0..2u64).map(|s| wall_spec(reg, key).with_seed(s)))
        .collect();
    let report = Sweep::new(reg)
        .backend(&backend)
        .cells(cells)
        .threads(2)
        .run();
    assert_eq!(report.cells_run(), 4);
    assert_eq!(report.safety_violations().count(), 0);
    assert_eq!(report.validity_violations().count(), 0);
    assert_eq!(report.commit_rate(), 1.0);
}
