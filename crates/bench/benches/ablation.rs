//! Ablation benches for the design choices `DESIGN.md` calls out — every
//! measured point a registry spec with one knob turned.
//!
//! * `delta_sweep` — the δ/Δ separation: good-case latency of `2δ`-BB must
//!   track the *actual* δ, not the conservative Δ (prints the series).
//! * `majority_scaling` — dishonest-majority latency vs `n/(n−f)`.
//! * `brb2_scale_n` — the 2-round BRB as `n` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcl_bench::scenarios::BIG_DELTA;
use gcl_bench::{canonical, run};
use gcl_types::Duration;

fn print_ablations_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!("--- ablation: delta sweep (2delta-BB, n=4, f=1, Delta=1000us) ---");
        for delta_us in [25u64, 50, 100, 200, 400] {
            let spec = canonical("bb_2delta", 4, 1)
                .with_seed(209)
                .with_bounds(Duration::from_micros(delta_us), BIG_DELTA);
            let o = run(&spec);
            eprintln!(
                "delta={delta_us:>4}us -> latency={} (2*delta = {}us; Delta stays 1000us)",
                o.good_case_latency().unwrap(),
                2 * delta_us
            );
        }
        eprintln!("--- ablation: majority scaling (silent Byzantine) ---");
        for row in gcl_bench::majority_rows(&[(4, 2), (6, 4), (8, 6), (10, 8)]) {
            eprintln!(
                "n={:<2} f={:<2} n/(n-f)={}: lower={}us measured={}us upper={}us",
                row.n,
                row.f,
                row.n / (row.n - row.f),
                row.lower_bound_us,
                row.measured_us,
                row.upper_bound_us
            );
        }
        eprintln!("------------------------------------------------------");
    });
}

fn bench_ablation(c: &mut Criterion) {
    print_ablations_once();
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    for (n, f) in [(4usize, 2usize), (6, 4), (10, 8)] {
        let spec = canonical("bb_majority", n, f);
        g.bench_with_input(
            BenchmarkId::new("majority_scaling", format!("n{n}f{f}")),
            &(n, f),
            |b, _| b.iter(|| run(&spec)),
        );
    }
    for n in [4usize, 7, 10, 13] {
        let spec = canonical("brb2", n, (n - 1) / 3);
        g.bench_with_input(BenchmarkId::new("brb2_scale_n", n), &n, |b, _| {
            b.iter(|| run(&spec))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
