//! Ablation benches for the design choices `DESIGN.md` calls out.
//!
//! * `delta_sweep` — the δ/Δ separation: good-case latency of `2δ`-BB must
//!   track the *actual* δ, not the conservative Δ (prints the series).
//! * `equivocation_window` — the cost of safety: the early-commit strawman
//!   (no Δ wait) vs Figure 5; the strawman is faster and unsafe — the
//!   simulated latencies quantify exactly what the Δ window buys.
//! * `majority_scaling` — dishonest-majority latency vs `n/(n−f)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcl_bench::scenarios::{self, BIG_DELTA};
use gcl_crypto::Keychain;
use gcl_sim::{FixedDelay, Simulation, TimingModel};
use gcl_types::{Config, Duration, PartyId, Value};

fn print_ablations_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!("--- ablation: delta sweep (2delta-BB, n=4, f=1, Delta=1000us) ---");
        for delta_us in [25u64, 50, 100, 200, 400] {
            let delta = Duration::from_micros(delta_us);
            let cfg = Config::new(4, 1).unwrap();
            let chain = Keychain::generate(4, 209);
            let o = Simulation::build(cfg)
                .timing(TimingModel::Synchrony {
                    delta,
                    big_delta: BIG_DELTA,
                })
                .oracle(FixedDelay::new(delta))
                .spawn_honest(|p| {
                    gcl_core::sync::TwoDeltaBb::new(
                        cfg,
                        chain.signer(p),
                        chain.pki(),
                        BIG_DELTA,
                        PartyId::new(0),
                        (p == PartyId::new(0)).then_some(Value::new(1)),
                    )
                })
                .run();
            eprintln!(
                "delta={delta_us:>4}us -> latency={} (2*delta = {}us; Delta stays 1000us)",
                o.good_case_latency().unwrap(),
                2 * delta_us
            );
        }
        eprintln!("--- ablation: majority scaling (silent Byzantine) ---");
        for row in gcl_bench::majority_rows(&[(4, 2), (6, 4), (8, 6), (10, 8)]) {
            eprintln!(
                "n={:<2} f={:<2} n/(n-f)={}: lower={}us measured={}us upper={}us",
                row.n,
                row.f,
                row.n / (row.n - row.f),
                row.lower_bound_us,
                row.measured_us,
                row.upper_bound_us
            );
        }
        eprintln!("------------------------------------------------------");
    });
}

fn bench_ablation(c: &mut Criterion) {
    print_ablations_once();
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    for (n, f) in [(4usize, 2usize), (6, 4), (10, 8)] {
        g.bench_with_input(
            BenchmarkId::new("majority_scaling", format!("n{n}f{f}")),
            &(n, f),
            |b, &(n, f)| b.iter(|| scenarios::run_majority(n, f)),
        );
    }
    for n in [4usize, 7, 10, 13] {
        let f = (n - 1) / 3;
        g.bench_with_input(BenchmarkId::new("brb2_scale_n", n), &n, |b, &n| {
            b.iter(|| scenarios::run_brb2(n, f))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
