//! Criterion sweep of the Figure 8 tradeoff, plus a one-shot print of the
//! simulated latency/message series. Each point is the `bb_unsync`
//! registry spec at grid resolution `m`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcl_bench::run;
use gcl_bench::scenarios::fig8_spec;

fn print_series_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!("--- Figure 8 tradeoff (simulated) ---");
        for row in gcl_bench::fig8_rows(&[1, 2, 4, 5, 8, 10, 20]) {
            eprintln!(
                "m={:<3} measured={}us predicted={}us messages={}",
                row.m, row.measured_us, row.predicted_us, row.messages
            );
        }
        eprintln!("--------------------------------------");
    });
}

fn bench_fig8(c: &mut Criterion) {
    print_series_once();
    let mut g = c.benchmark_group("fig8_tradeoff");
    g.sample_size(10);
    for m in [1u64, 5, 10, 20] {
        let spec = fig8_spec(m);
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| run(&spec))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
