//! Criterion sweep of the Figure 8 tradeoff, plus a one-shot print of the
//! simulated latency/message series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcl_bench::scenarios;

fn print_series_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!("--- Figure 8 tradeoff (simulated) ---");
        for row in gcl_bench::fig8_rows(&[1, 2, 4, 5, 8, 10, 20]) {
            eprintln!(
                "m={:<3} measured={}us predicted={}us messages={}",
                row.m, row.measured_us, row.predicted_us, row.messages
            );
        }
        eprintln!("--------------------------------------");
    });
}

fn bench_fig8(c: &mut Criterion) {
    print_series_once();
    let mut g = c.benchmark_group("fig8_tradeoff");
    g.sample_size(10);
    for m in [1u64, 5, 10, 20] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| scenarios::run_unsync(5, 2, m))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
