//! Microbench of the calendar-queue event engine in isolation.
//!
//! The scenario benches (`sim_throughput`) measure the queue through a
//! full protocol run; this target drives `gcl_sim`'s queue directly with
//! a deterministic mixed near/far push/pop workload, so a queue-only
//! change shows up without protocol noise. The workload is the same
//! `queue_stress` entry point the engine's own tests checksum, at two
//! bucket widths (δ = 1 µs: one event per slot; δ = 100 µs: slot reuse
//! plus regular far-tier spills).
//!
//! CI runs this in quick mode (`GCL_BENCH_QUICK=1`, 100k events) as a
//! smoke test; the default is 1M events per iteration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// 1M events exercises several full ring wraps at δ = 1 µs; quick mode
/// keeps the smoke run under a second.
fn workload_events() -> usize {
    if std::env::var_os("GCL_BENCH_QUICK").is_some() {
        100_000
    } else {
        1_000_000
    }
}

fn bench_event_queue(c: &mut Criterion) {
    let events = workload_events();
    let mut g = c.benchmark_group("event_queue");
    g.sample_size(10);
    g.bench_function("push_pop_mixed/delta_1us", |b| {
        b.iter(|| black_box(gcl_sim::queue_stress(black_box(events), 1)))
    });
    g.bench_function("push_pop_mixed/delta_100us", |b| {
        b.iter(|| black_box(gcl_sim::queue_stress(black_box(events), 100)))
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
