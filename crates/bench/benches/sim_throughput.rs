//! Criterion view of the simulator-throughput scenarios.
//!
//! The `throughput` binary is the canonical `BENCH_sim.json` producer
//! (best-of-N wall time, events/sec); this bench exposes the same
//! registry specs to `cargo bench` so they can be compared run-over-run
//! with every other bench target — and, with `GCL_BENCH_JSON=<path>`,
//! feed the same JSON trajectory format through the criterion shim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcl_bench::{canonical, run};

fn print_throughput_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!("--- simulator throughput (one run per scenario) ---");
        for r in gcl_bench::throughput_rows(true) {
            eprintln!(
                "{:<22} {:>10} events {:>12.0} ev/s (peak queue {})",
                r.scenario, r.events, r.events_per_sec, r.peak_queue
            );
        }
        eprintln!("---------------------------------------------------");
    });
}

fn bench_throughput(c: &mut Criterion) {
    print_throughput_once();
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    for n in [16usize, 64] {
        let spec = canonical("flood", n, (n - 1) / 3);
        g.bench_with_input(BenchmarkId::new("flood", n), &n, |b, _| {
            b.iter(|| run(&spec))
        });
    }
    g.sample_size(5);
    let spec = canonical("flood", 256, 85);
    g.bench_function("flood/256", |b| b.iter(|| run(&spec)));
    let spec = canonical("dolev_strong", 32, 10);
    g.bench_function("dolev_strong/n32_f10", |b| b.iter(|| run(&spec)));
    let spec = canonical("smr", 4, 1).with_workload(200, 8);
    g.bench_function("smr/200_commands", |b| b.iter(|| run(&spec)));
    g.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
