//! SMR benches: steady-state decision latency of the 2-round engine and
//! pipelining throughput — every point the `smr` registry family with its
//! workload params varied.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcl_bench::{canonical, run};
use gcl_sim::ScenarioSpec;
use gcl_types::Duration;

fn smr_spec(n: usize, f: usize, slots: u64, pipeline: usize) -> ScenarioSpec {
    canonical("smr", n, f)
        .with_seed(210)
        .with_workload(slots, pipeline)
}

fn print_smr_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!("--- SMR: 50 slots on n=4, f=1 (2-round engine) ---");
        for pipeline in [1usize, 2, 4, 8] {
            let o = run(&smr_spec(4, 1, 50, pipeline));
            eprintln!(
                "pipeline={pipeline}: wall {} for 50 slots ({} per slot)",
                o.end_time(),
                Duration::from_micros(o.end_time().as_micros() / 50)
            );
        }
        eprintln!("---------------------------------------------------");
    });
}

fn bench_smr(c: &mut Criterion) {
    print_smr_once();
    let mut g = c.benchmark_group("smr");
    g.sample_size(10);
    for pipeline in [1usize, 4] {
        let spec = smr_spec(4, 1, 20, pipeline);
        g.bench_with_input(
            BenchmarkId::new("counter_20slots_pipeline", pipeline),
            &pipeline,
            |b, _| b.iter(|| run(&spec)),
        );
    }
    let spec = smr_spec(9, 2, 20, 4);
    g.bench_function("counter_20slots_n9f2", |b| b.iter(|| run(&spec)));
    g.finish();
}

criterion_group!(benches, bench_smr);
criterion_main!(benches);
