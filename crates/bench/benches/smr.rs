//! SMR benches: steady-state decision latency of the 2-round engine vs the
//! 3-round PBFT baseline, and pipelining throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcl_crypto::Keychain;
use gcl_sim::{FixedDelay, Outcome, Simulation, TimingModel};
use gcl_smr::{Counter, SlotEngine};
use gcl_types::{Config, Duration, GlobalTime, Value};
use parking_lot::Mutex;
use std::sync::Arc;

const DELTA: Duration = Duration::from_micros(100);

fn run_smr(n: usize, f: usize, slots: u64, pipeline: usize) -> Outcome {
    let cfg = Config::new(n, f).unwrap();
    let chain = Keychain::generate(n, 210);
    let workload: Vec<Value> = (1..=slots).map(Value::new).collect();
    Simulation::build(cfg)
        .timing(TimingModel::PartialSynchrony {
            gst: GlobalTime::ZERO,
            big_delta: DELTA,
        })
        .oracle(FixedDelay::new(DELTA))
        .spawn_honest(move |p| {
            SlotEngine::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                DELTA,
                workload.clone(),
                pipeline,
                Arc::new(Mutex::new(Counter::default())),
            )
        })
        .run()
}

fn print_smr_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!("--- SMR: 50 slots on n=4, f=1 (2-round engine) ---");
        for pipeline in [1usize, 2, 4, 8] {
            let o = run_smr(4, 1, 50, pipeline);
            eprintln!(
                "pipeline={pipeline}: wall {} for 50 slots ({} per slot)",
                o.end_time(),
                Duration::from_micros(o.end_time().as_micros() / 50)
            );
        }
        eprintln!("---------------------------------------------------");
    });
}

fn bench_smr(c: &mut Criterion) {
    print_smr_once();
    let mut g = c.benchmark_group("smr");
    g.sample_size(10);
    for pipeline in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("counter_20slots_pipeline", pipeline),
            &pipeline,
            |b, &pl| b.iter(|| run_smr(4, 1, 20, pl)),
        );
    }
    g.bench_function("counter_20slots_n9f2", |b| b.iter(|| run_smr(9, 2, 20, 4)));
    g.finish();
}

criterion_group!(benches, bench_smr);
criterion_main!(benches);
