//! Criterion benches over every Table 1 scenario, plus a one-shot print of
//! the simulated-latency reproduction itself. Each benched scenario is a
//! registry spec — the same cells the tables measure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcl_bench::{canonical, run};

fn print_reproduction_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!("--- Table 1 reproduction (simulated latencies) ---");
        for row in gcl_bench::table1_rows() {
            eprintln!(
                "{:<36} {:<32} n={:<2} f={:<2} paper={:<22} measured={}us rounds={:?} ok={}",
                row.problem,
                row.protocol,
                row.n,
                row.f,
                row.paper,
                row.measured_us,
                row.rounds,
                row.matches()
            );
        }
        eprintln!("---------------------------------------------------");
    });
}

fn bench_table1(c: &mut Criterion) {
    print_reproduction_once();
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);

    // (bench id, family, n, f) — one registry spec per benched cell.
    let cells = [
        ("brb2_async", "brb2", 4, 1),
        ("bracha_async", "bracha", 4, 1),
        ("vbb_5f_minus_1", "vbb5f1", 4, 1),
        ("vbb_5f_minus_1", "vbb5f1", 9, 2),
        ("pbft3", "pbft3", 8, 2),
        ("bb_2delta", "bb_2delta", 4, 1),
        ("bb_third", "bb_third", 3, 1),
        ("bb_sync_start", "bb_sync_start", 5, 2),
        ("bb_unsync_m10", "bb_unsync", 5, 2),
        ("bb_majority", "bb_majority", 4, 2),
    ];
    for (id, family, n, f) in cells {
        let spec = canonical(family, n, f);
        g.bench_function(BenchmarkId::new(id, format!("n{n}f{f}")), |b| {
            b.iter(|| run(&spec))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
