//! Criterion benches over every Table 1 scenario, plus a one-shot print of
//! the simulated-latency reproduction itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcl_bench::scenarios;

fn print_reproduction_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!("--- Table 1 reproduction (simulated latencies) ---");
        for row in gcl_bench::table1_rows() {
            eprintln!(
                "{:<36} {:<32} n={:<2} f={:<2} paper={:<22} measured={}us rounds={:?} ok={}",
                row.problem,
                row.protocol,
                row.n,
                row.f,
                row.paper,
                row.measured_us,
                row.rounds,
                row.matches()
            );
        }
        eprintln!("---------------------------------------------------");
    });
}

fn bench_table1(c: &mut Criterion) {
    print_reproduction_once();
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);

    g.bench_function(BenchmarkId::new("brb2_async", "n4f1"), |b| {
        b.iter(|| scenarios::run_brb2(4, 1))
    });
    g.bench_function(BenchmarkId::new("bracha_async", "n4f1"), |b| {
        b.iter(|| scenarios::run_bracha(4, 1))
    });
    g.bench_function(BenchmarkId::new("vbb_5f_minus_1", "n4f1"), |b| {
        b.iter(|| scenarios::run_vbb(4, 1))
    });
    g.bench_function(BenchmarkId::new("vbb_5f_minus_1", "n9f2"), |b| {
        b.iter(|| scenarios::run_vbb(9, 2))
    });
    g.bench_function(BenchmarkId::new("pbft3", "n8f2"), |b| {
        b.iter(|| scenarios::run_pbft(8, 2))
    });
    g.bench_function(BenchmarkId::new("bb_2delta", "n4f1"), |b| {
        b.iter(|| scenarios::run_2delta(4, 1))
    });
    g.bench_function(BenchmarkId::new("bb_third", "n3f1"), |b| {
        b.iter(|| scenarios::run_third(3, 1))
    });
    g.bench_function(BenchmarkId::new("bb_sync_start", "n5f2"), |b| {
        b.iter(|| scenarios::run_sync_start(5, 2))
    });
    g.bench_function(BenchmarkId::new("bb_unsync_m10", "n5f2"), |b| {
        b.iter(|| scenarios::run_unsync(5, 2, 10))
    });
    g.bench_function(BenchmarkId::new("bb_majority", "n4f2"), |b| {
        b.iter(|| scenarios::run_majority(4, 2))
    });
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
