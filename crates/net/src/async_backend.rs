//! The readiness-loop execution backend: thousands of parties multiplexed
//! over a fixed worker pool.
//!
//! The thread engine ([`NetBackend`](crate::NetBackend)) and the blocking
//! socket engine ([`SocketBackend`](crate::SocketBackend)) spend 1 and 3
//! OS threads per party respectively, which caps them at n in the low
//! hundreds. [`AsyncBackend`] runs the *same* byte transport — every
//! protocol message encoded, framed, carried across a socket pair and
//! decoded on the far side — but each party is a **state machine behind a
//! nonblocking socket**, driven by readiness events:
//!
//! ```text
//!            submissions (frames)            deliveries (frames)
//! worker 0 ──▶ [nonblocking socket] ──▶ scheduler ──▶ [nonblocking socket] ──▶ worker k
//!   parties i ≡ 0 (mod W)          heap + timer wheel           parties i ≡ k (mod W)
//! ```
//!
//! * **One scheduler thread** owns the dispatcher side of every party
//!   socket plus a wake pipe, polled through one `mio`-style readiness
//!   loop (the in-tree `shims/mio`; swap the workspace dependency back to
//!   the real `mio` crate off-line and nothing here changes). It parses
//!   submission frames, stamps them through the shared
//!   [`DeliveryHeap`] — identical `(due, seq)` tie discipline as the
//!   blocking dispatcher — parks protocol timers in a hashed
//!   [`TimerWheel`] (O(1) arming at any pending count), and drains due
//!   deliveries into per-party outbound queues flushed as sockets accept
//!   them.
//! * **W worker threads** (default `min(cores, 8)`) each own the party
//!   side of an `i mod W` shard: per-party frame-reassembly buffers
//!   ([`FrameBuffer`], partial-read safe at arbitrary byte boundaries),
//!   per-party outbound queues ([`OutBuf`], `WouldBlock`-aware), and the
//!   shared [`PartyCore`] bookkeeping. A party whose skew offset has not
//!   elapsed buffers inbound bytes without handling them — the readiness
//!   analogue of the late thread whose channel queues.
//! * **Backpressure**: outbound bytes queued in the scheduler above a
//!   high-water mark pause *party* reads (level-triggered interest
//!   dropped, kernel buffers absorb, writers' queues grow) until the
//!   backlog drains below half the mark; the wake pipe and the client
//!   channel stay live so shutdown can always get through.
//!
//! Total thread count is **O(workers)**, not O(n) — asserted by a test at
//! n = 512 — which is what makes the n ∈ {256, 512, 1024} wall-clock
//! rows in `BENCH_net.json` runnable at all. Shutdown reuses the engine
//! choreography: honest-done early exit, a `Shutdown` submission plus a
//! wake byte, `STOP` frames to every party with a bounded grace flush,
//! and worker EOF as the fallback; every join stays finite.
//!
//! Scheduler observability (worker count, readiness wakeups, peak
//! outbound-queue depth) is reported through
//! [`Outcome::sched_counters`] and lands in the benchmark rows.

use crate::engine::{
    await_honest_done, delivery_frame, engine_plan, outcome_from_raw, parse_delivery,
    parse_submission, stream_pair, ClientHandle, Delivery, DeliveryFrame, DeliveryHeap, EnginePlan,
    FrameBuffer, OutBuf, PartyCore, RawCommit, RawRun, Step, Stream, Submission, SubmissionKind,
    IDLE_POLL, KIND_MULTICAST, KIND_STOP, KIND_TIMER, KIND_UNICAST,
};
use crate::wheel::TimerWheel;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use gcl_sim::{
    Backend, ErasedMsg, ErasedSlot, MsgCodec, Outcome, ScenarioError, ScenarioRegistry,
    ScenarioSpec, SchedCounters, Strategy,
};
use gcl_types::{Encode, PartyId};
use mio::{Events, Interest, Poll, Registry, Token};
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Scheduler-side backpressure: once this many bytes sit unflushed across
/// the per-party outbound queues, party reads pause until the backlog
/// drains below half the mark. A valve, not a hard cap — deliveries
/// already routed still queue.
const OUT_HWM: usize = 4 << 20;

/// How long the scheduler keeps flushing `STOP` frames after shutdown
/// before abandoning undeliverable peers (worker EOF is the fallback).
const STOP_GRACE: Duration = Duration::from_millis(500);

// ---------------------------------------------------------------------
// Scheduler side: one readiness loop over all n dispatcher socket ends.
// ---------------------------------------------------------------------

/// The scheduler's view of one party's socket.
struct Peer {
    stream: Stream,
    fb: FrameBuffer,
    out: OutBuf,
    /// Still parsing this peer's submissions (false after EOF or a
    /// garbled frame — the party is crashed from the dispatcher's view).
    reading: bool,
    /// Write half still usable (false after a write error).
    open: bool,
    /// Interest currently registered with the poll, `None` when
    /// deregistered.
    registered: Option<Interest>,
}

impl Peer {
    fn new(stream: Stream) -> Self {
        Peer {
            stream,
            fb: FrameBuffer::new(),
            out: OutBuf::new(),
            reading: true,
            open: true,
            registered: None,
        }
    }

    /// Drains as much outbound as the socket accepts; a write error marks
    /// the peer dead (its worker will see EOF).
    fn flush(&mut self) {
        if self.out.flush(&mut self.stream).is_err() {
            self.open = false;
            self.reading = false;
        }
    }
}

/// Brings a peer's registered interest in line with what it currently
/// wants: readable while parsing (and not paused), writable while output
/// is pending — level-triggered, so stale interest means busy wakeups and
/// missing interest means a stall.
fn sync_peer_interest(registry: &Registry, peer: &mut Peer, token: Token, paused: bool) {
    let mut want: Option<Interest> = None;
    if peer.reading && !paused {
        want = Some(Interest::READABLE);
    }
    if peer.open && !peer.out.is_empty() {
        want = Some(match want {
            Some(i) => i | Interest::WRITABLE,
            None => Interest::WRITABLE,
        });
    }
    if want == peer.registered {
        return;
    }
    match want {
        Some(interest) => {
            let applied = if peer.registered.is_some() {
                registry.reregister(&mut peer.stream, token, interest)
            } else {
                registry.register(&mut peer.stream, token, interest)
            };
            if applied.is_ok() {
                peer.registered = Some(interest);
            }
        }
        None => {
            if peer.registered.take().is_some() {
                let _ = registry.deregister(&mut peer.stream);
            }
        }
    }
}

/// The scheduler thread: routes submissions through the shared delivery
/// heap and the timer wheel, flushes due deliveries, and runs the STOP
/// choreography on shutdown. Returns `(messages, peak_heap, wakeups,
/// peak_outbound_bytes)`.
fn scheduler_loop(
    mut peers: Vec<Peer>,
    mut wake: Stream,
    sub_rx: Receiver<Submission>,
    client_tx: Sender<Vec<u8>>,
    links: Vec<Duration>,
    epoch: Instant,
    chunk: Option<usize>,
) -> (u64, usize, u64, usize) {
    let n = peers.len();
    let mut poll = Poll::new().expect("readiness poll");
    poll.registry()
        .register(&mut wake, Token(n), Interest::READABLE)
        .expect("register wake pipe");
    let mut events = Events::with_capacity((n + 1).clamp(8, 1024));
    let mut dh = DeliveryHeap::new(n);
    let mut wheel: TimerWheel<(PartyId, u64)> = TimerWheel::new();
    let mut fired: Vec<(PartyId, u64)> = Vec::new();
    let mut wakeups: u64 = 0;
    let mut paused = false;
    let mut stopping = false;
    let mut grace: Option<Instant> = None;

    loop {
        // 1. Expired timers rejoin the delivery heap at `now`, stamped in
        //    firing order — the same global tie discipline as messages.
        wheel.advance_to(epoch.elapsed(), &mut fired);
        let now = Instant::now();
        for (party, tag) in fired.drain(..) {
            let _ = dh.route(
                Submission {
                    from: party,
                    kind: SubmissionKind::Timer {
                        delay: Duration::ZERO,
                        tag,
                    },
                },
                &links,
                now,
            );
        }

        // 2. Client submissions and the engine's shutdown marker.
        loop {
            match sub_rx.try_recv() {
                Ok(sub) => match sub.kind {
                    SubmissionKind::Shutdown => stopping = true,
                    SubmissionKind::Timer { delay, tag } => wheel.insert(delay, (sub.from, tag)),
                    kind => {
                        let _ = dh.route(
                            Submission {
                                from: sub.from,
                                kind,
                            },
                            &links,
                            Instant::now(),
                        );
                    }
                },
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    stopping = true;
                    break;
                }
            }
        }

        // 3. Shutdown entry: queue one STOP per live peer, stop reading
        //    and delivering, start the grace clock.
        if stopping && grace.is_none() {
            for peer in &mut peers {
                peer.reading = false;
                if peer.open {
                    peer.out.push_frame(&[KIND_STOP]);
                }
            }
            grace = Some(Instant::now() + STOP_GRACE);
        }

        // 4. Due deliveries into per-party queues (dropped once stopping,
        //    as the blocking dispatcher drops its heap on shutdown).
        if !stopping {
            while let Some(s) = dh.pop_due() {
                if s.to.as_usize() >= n {
                    if let Delivery::Msg { bytes, .. } = &s.what {
                        let _ = client_tx.send(bytes.as_ref().clone());
                    }
                    continue;
                }
                let peer = &mut peers[s.to.as_usize()];
                if peer.open {
                    peer.out.push_frame(&delivery_frame(&s.what));
                }
            }
        }

        // 5. Flush, recompute the backpressure valve, sync interests.
        let mut total_out = 0;
        for peer in &mut peers {
            if peer.open && !peer.out.is_empty() {
                peer.flush();
            }
            if peer.open {
                total_out += peer.out.len();
            }
        }
        paused = if paused {
            total_out > OUT_HWM / 2
        } else {
            total_out >= OUT_HWM
        };
        let registry = poll.registry();
        for (i, peer) in peers.iter_mut().enumerate() {
            sync_peer_interest(registry, peer, Token(i), paused);
        }

        // 6. Shutdown exit: everything flushed, or the grace expired.
        if let Some(g) = grace {
            let all_flushed = peers.iter().all(|p| !p.open || p.out.is_empty());
            if all_flushed || Instant::now() >= g {
                break;
            }
        }

        // 7. Sleep until the next deadline: heap due, wheel due, grace,
        //    or the idle-poll granularity — a readiness event or a wake
        //    byte interrupts any of them.
        let mut timeout = dh.next_timeout().min(IDLE_POLL);
        if let Some(t) = wheel.next_timeout(epoch.elapsed()) {
            timeout = timeout.min(t);
        }
        if let Some(g) = grace {
            timeout = timeout.min(g.saturating_duration_since(Instant::now()));
        }
        match poll.poll(&mut events, Some(timeout)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
        wakeups += 1;

        // 8. Readiness: drain the wake pipe, parse submissions, flush
        //    writable peers.
        for ev in &events {
            let t = ev.token().0;
            if t == n {
                let mut buf = [0u8; 64];
                loop {
                    match wake.read(&mut buf) {
                        Ok(0) => break,
                        Ok(_) => {}
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                }
                continue;
            }
            let peer = &mut peers[t];
            if ev.is_writable() && peer.open && !peer.out.is_empty() {
                peer.flush();
            }
            if ev.is_readable() && peer.reading {
                match peer.fb.fill(&mut peer.stream, chunk) {
                    Ok(eof) => {
                        while let Some(body) = peer.fb.next_frame() {
                            match parse_submission(PartyId::new(t as u32), body) {
                                Some(sub) => match sub.kind {
                                    SubmissionKind::Timer { delay, tag } => {
                                        wheel.insert(delay, (sub.from, tag));
                                    }
                                    // No wire kind maps to Shutdown; a
                                    // party cannot stop the run.
                                    SubmissionKind::Shutdown => {}
                                    kind => {
                                        let _ = dh.route(
                                            Submission {
                                                from: sub.from,
                                                kind,
                                            },
                                            &links,
                                            Instant::now(),
                                        );
                                    }
                                },
                                // Garbled frame: the party is crashed from
                                // the dispatcher's view; keep the run live.
                                None => {
                                    peer.reading = false;
                                    break;
                                }
                            }
                        }
                        if eof {
                            peer.reading = false;
                        }
                    }
                    Err(_) => peer.reading = false,
                }
            }
        }
    }
    let peak_out = peers.iter().map(|p| p.out.peak).max().unwrap_or(0);
    (dh.messages, dh.peak, wakeups, peak_out)
}

// ---------------------------------------------------------------------
// Worker side: one readiness loop per worker over its party shard.
// ---------------------------------------------------------------------

/// One party as a state machine owned by a worker.
struct WorkerParty {
    /// Index into the run's party vector (`PartyCore` holds the id).
    global: usize,
    core: PartyCore,
    strategy: Box<dyn Strategy<ErasedMsg>>,
    honest: bool,
    stream: Stream,
    fb: FrameBuffer,
    out: OutBuf,
    /// When the skew offset elapses and `start` fires. Frames arriving
    /// earlier buffer in `fb` unhandled — the pre-start inbox.
    start_at: Instant,
    started: bool,
    /// The protocol called `terminate`: stop handling, keep draining and
    /// flushing until STOP/EOF so the scheduler never wedges on us.
    terminated: bool,
    /// Saw STOP, EOF or a dead stream — out of the readiness set.
    finished: bool,
    /// Write half still usable.
    open: bool,
    registered: Option<Interest>,
}

impl WorkerParty {
    fn flush(&mut self) {
        if self.open && self.out.flush(&mut self.stream).is_err() {
            self.open = false;
        }
    }

    /// Runs one event through the shared core and encodes the effects as
    /// submission frames — the byte-transport drain, identical to the
    /// blocking socket party's.
    fn step(&mut self, step: Step<ErasedMsg>, commits: &Mutex<Vec<RawCommit>>, done: &Sender<()>) {
        if self.terminated {
            return;
        }
        let ctx = self.core.handle(self.strategy.as_mut(), step, commits);
        let out_round = self.core.out_round();
        for (to, msg) in ctx.sends {
            let mut body = Vec::new();
            body.push(KIND_UNICAST);
            to.encode(&mut body);
            out_round.encode(&mut body);
            msg.encode(&mut body);
            self.out.push_frame(&body);
        }
        for (skip, msg) in ctx.mcasts {
            let mut body = Vec::new();
            body.push(KIND_MULTICAST);
            skip.encode(&mut body);
            out_round.encode(&mut body);
            msg.encode(&mut body);
            self.out.push_frame(&body);
        }
        for (delay, tag) in ctx.timers {
            let mut body = Vec::new();
            body.push(KIND_TIMER);
            delay.as_micros().encode(&mut body);
            tag.encode(&mut body);
            self.out.push_frame(&body);
        }
        if ctx.terminate {
            self.terminated = true;
            if self.honest {
                let _ = done.send(());
            }
        }
        self.flush();
    }

    /// Pops and handles every complete frame in the reassembly buffer.
    /// Only called once started; a terminated party discards instead of
    /// handling (the draining state).
    fn drain(&mut self, codec: &MsgCodec, commits: &Mutex<Vec<RawCommit>>, done: &Sender<()>) {
        while let Some(body) = self.fb.next_frame() {
            match parse_delivery(&body) {
                Some(DeliveryFrame::Msg {
                    from,
                    round,
                    payload,
                }) => {
                    if self.terminated {
                        continue;
                    }
                    // The decode half of the wire round trip; a payload
                    // that does not decode came from a garbled peer — drop
                    // the frame, keep this party live.
                    match codec.decode(payload) {
                        Ok(msg) => self.step(Step::Msg { from, round, msg }, commits, done),
                        Err(_) => continue,
                    }
                }
                Some(DeliveryFrame::Timer(tag)) => {
                    if !self.terminated {
                        self.step(Step::Timer(tag), commits, done);
                    }
                }
                Some(DeliveryFrame::Stop) | None => {
                    self.finished = true;
                    return;
                }
            }
        }
    }
}

/// Registered interest a live party wants: always readable (pre-start
/// bytes buffer, post-terminate bytes drain), writable while output is
/// pending.
fn sync_party_interest(registry: &Registry, party: &mut WorkerParty, token: Token) {
    let want: Option<Interest> = if party.finished {
        None
    } else if party.open && !party.out.is_empty() {
        Some(Interest::READABLE | Interest::WRITABLE)
    } else {
        Some(Interest::READABLE)
    };
    if want == party.registered {
        return;
    }
    match want {
        Some(interest) => {
            let applied = if party.registered.is_some() {
                registry.reregister(&mut party.stream, token, interest)
            } else {
                registry.register(&mut party.stream, token, interest)
            };
            if applied.is_ok() {
                party.registered = Some(interest);
            }
        }
        None => {
            if party.registered.take().is_some() {
                let _ = registry.deregister(&mut party.stream);
            }
        }
    }
}

/// One worker thread: drives its shard of party state machines off a
/// single readiness loop. Returns per-party `(global index, terminated,
/// handled)` plus `(wakeups, peak_outbound_bytes)`.
fn worker_loop(
    mut parties: Vec<WorkerParty>,
    codec: MsgCodec,
    commits: Arc<Mutex<Vec<RawCommit>>>,
    done: Sender<()>,
    chunk: Option<usize>,
) -> (Vec<(usize, bool, u64)>, u64, usize) {
    let mut poll = Poll::new().expect("readiness poll");
    let mut events = Events::with_capacity(parties.len().clamp(8, 1024));
    let mut wakeups: u64 = 0;
    let mut live = parties.len();

    while live > 0 {
        let now = Instant::now();
        // Skew offsets falling due: fire `start`, then the pre-start
        // inbox in arrival order.
        for party in &mut parties {
            if !party.started && !party.finished && party.start_at <= now {
                party.started = true;
                party.step(Step::Start, &commits, &done);
                party.drain(&codec, &commits, &done);
            }
        }
        let registry = poll.registry();
        for (local, party) in parties.iter_mut().enumerate() {
            sync_party_interest(registry, party, Token(local));
        }
        live = parties.iter().filter(|p| !p.finished).count();
        if live == 0 {
            break;
        }

        let mut timeout = IDLE_POLL;
        for party in &parties {
            if !party.started && !party.finished {
                timeout = timeout.min(party.start_at.saturating_duration_since(now));
            }
        }
        match poll.poll(&mut events, Some(timeout)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
        wakeups += 1;

        for ev in &events {
            let party = &mut parties[ev.token().0];
            if party.finished {
                continue;
            }
            if ev.is_writable() {
                party.flush();
            }
            if ev.is_readable() {
                match party.fb.fill(&mut party.stream, chunk) {
                    Ok(eof) => {
                        if party.started {
                            party.drain(&codec, &commits, &done);
                        }
                        if eof && !party.finished {
                            party.finished = true;
                        }
                    }
                    Err(_) => party.finished = true,
                }
            }
        }
    }

    let peak_out = parties.iter().map(|p| p.out.peak).max().unwrap_or(0);
    let results = parties
        .into_iter()
        .map(|p| (p.global, p.terminated, p.core.handled))
        .collect();
    (results, wakeups, peak_out)
}

// ---------------------------------------------------------------------
// The run: scheduler + W workers + the engine thread's shutdown.
// ---------------------------------------------------------------------

/// Runs one spec's slots on the readiness-loop engine: `workers` party
/// shards behind one scheduler. Thread count is `workers + 1` (plus the
/// optional driver), independent of n.
pub(crate) fn run_async_slots(
    plan: EnginePlan,
    slots: Vec<(Box<dyn Strategy<ErasedMsg>>, bool)>,
    codec: MsgCodec,
    workers: usize,
    driver: Option<Box<dyn FnOnce(ClientHandle) + Send>>,
) -> RawRun {
    let n = plan.config.n();
    assert_eq!(slots.len(), n, "one slot per party");
    assert_eq!(plan.links.len(), n * n, "full link matrix");
    assert_eq!(plan.starts.len(), n, "one start offset per party");
    let honest: Vec<bool> = slots.iter().map(|(_, h)| *h).collect();
    let epoch = Instant::now();
    let commits: Arc<Mutex<Vec<RawCommit>>> = Arc::new(Mutex::new(Vec::new()));
    let w = workers.clamp(1, n.max(1));
    let chunk = plan.read_chunk;

    // One nonblocking socket pair per party, plus the wake pipe that
    // interrupts the scheduler's poll for channel-borne events (client
    // submissions, shutdown).
    let mut sched_ends = Vec::with_capacity(n);
    let mut party_ends = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, p) = stream_pair().expect("socket pair");
        s.set_nonblocking(true).expect("nonblocking");
        p.set_nonblocking(true).expect("nonblocking");
        sched_ends.push(s);
        party_ends.push(p);
    }
    let (wake_r, wake_w) = stream_pair().expect("wake pipe");
    wake_r.set_nonblocking(true).expect("nonblocking");
    wake_w.set_nonblocking(true).expect("nonblocking");
    let wake_w = Arc::new(wake_w);

    let (sub_tx, sub_rx) = unbounded::<Submission>();
    let (done_tx, done_rx) = unbounded::<()>();
    let (client_tx, client_rx) = unbounded::<Vec<u8>>();
    let shutdown_tx = sub_tx.clone();
    let driver_handle = driver.map(|driver| {
        let handle = ClientHandle::new(sub_tx.clone(), client_rx, Some(Arc::clone(&wake_w)));
        thread::spawn(move || driver(handle))
    });
    drop(sub_tx);

    let links = plan.links.clone();
    let scheduler = thread::spawn(move || {
        let peers = sched_ends.into_iter().map(Peer::new).collect();
        scheduler_loop(peers, wake_r, sub_rx, client_tx, links, epoch, chunk)
    });

    // Static round-robin shards: party i lives on worker i mod W.
    let mut shards: Vec<Vec<WorkerParty>> = (0..w).map(|_| Vec::new()).collect();
    for (i, ((strategy, is_honest), stream)) in slots.into_iter().zip(party_ends).enumerate() {
        let me = PartyId::new(i as u32);
        let start_at = epoch + plan.starts[i];
        shards[i % w].push(WorkerParty {
            global: i,
            core: PartyCore::new(me, plan.config, epoch, start_at),
            strategy,
            honest: is_honest,
            stream,
            fb: FrameBuffer::new(),
            out: OutBuf::new(),
            start_at,
            started: false,
            terminated: false,
            finished: false,
            open: true,
            registered: None,
        });
    }
    let worker_handles: Vec<_> = shards
        .into_iter()
        .map(|shard| {
            let commits = Arc::clone(&commits);
            let done = done_tx.clone();
            thread::spawn(move || worker_loop(shard, codec, commits, done, chunk))
        })
        .collect();
    drop(done_tx);

    // Early-exit protocol, exactly as the other wall engines.
    await_honest_done(&done_rx, &honest, epoch + plan.deadline);

    // Shutdown: a Shutdown submission plus one wake byte; the scheduler
    // flushes STOP frames under its grace clock, workers finish on STOP
    // or — once the scheduler drops its socket ends — on EOF.
    let _ = shutdown_tx.send(Submission {
        from: PartyId::new(0),
        kind: SubmissionKind::Shutdown,
    });
    let _ = (&*wake_w).write(&[1]);
    drop(shutdown_tx);

    let mut terminated = vec![false; n];
    let mut events_handled: u64 = 0;
    let mut wakeups: u64 = 0;
    let mut peak_out: usize = 0;
    for h in worker_handles {
        match h.join() {
            Ok((results, worker_wakeups, worker_peak)) => {
                wakeups += worker_wakeups;
                peak_out = peak_out.max(worker_peak);
                for (idx, t, handled) in results {
                    terminated[idx] = t;
                    events_handled += handled;
                }
            }
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
    let (messages_sent, peak_queue, sched_wakeups, sched_peak) = match scheduler.join() {
        Ok(r) => r,
        Err(panic) => std::panic::resume_unwind(panic),
    };
    wakeups += sched_wakeups;
    peak_out = peak_out.max(sched_peak);
    // The driver sees its submits fail once the scheduler is gone, so
    // this join is finite for any driver that stops on a failed submit.
    if let Some(h) = driver_handle {
        if let Err(panic) = h.join() {
            std::panic::resume_unwind(panic);
        }
    }

    let mut collected = std::mem::take(&mut *commits.lock());
    collected.sort_by_key(|c| c.elapsed);
    RawRun {
        commits: collected,
        terminated,
        honest,
        events_handled,
        messages_sent,
        peak_queue,
        elapsed: epoch.elapsed(),
        sched: Some(SchedCounters {
            workers: w,
            wakeups,
            peak_outbound_bytes: peak_out,
        }),
    }
}

/// Runs registry scenarios on the readiness-loop engine: every party a
/// state machine behind a nonblocking socket, all n multiplexed over a
/// fixed worker pool. See the [module docs](self) for the architecture;
/// the transport contract (real bytes, no pointer fast path) is the
/// blocking [`SocketBackend`](crate::SocketBackend)'s, the spec mapping
/// (δ/jitter, skew, adversary mix, audits) is shared by all wall
/// backends — so this backend differs *only* in scheduling, which is what
/// lets it reach n = 1024 parties on a pool of `min(cores, 8)` threads.
///
/// # Examples
///
/// ```
/// use gcl_net::AsyncBackend;
/// use gcl_types::Duration;
///
/// let reg = gcl_core::registry();
/// let spec = reg
///     .spec("brb2")
///     .unwrap()
///     .with_bounds(Duration::from_millis(2), Duration::from_millis(20));
/// let outcome = AsyncBackend::new().run(&reg, &spec).unwrap();
/// assert!(outcome.agreement_holds());
/// assert_eq!(outcome.committed_value(), Some(spec.input));
/// assert!(outcome.sched_counters().is_some(), "worker-pool observability");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AsyncBackend {
    deadline: Duration,
    workers: Option<usize>,
}

impl AsyncBackend {
    /// A backend with the default 2-second per-run deadline and a worker
    /// pool of `min(cores, 8)`.
    pub const fn new() -> Self {
        AsyncBackend {
            deadline: Duration::from_secs(2),
            workers: None,
        }
    }

    /// Replaces the per-run wall-clock deadline. Honest termination exits
    /// earlier; the deadline only caps runs where some honest party never
    /// terminates.
    #[must_use]
    pub const fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Pins the worker-pool size (clamped to ≥ 1 and ≤ n at run time).
    /// Default: `min(cores, 8)`.
    #[must_use]
    pub const fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(if workers == 0 { 1 } else { workers });
        self
    }

    fn pool_size(&self) -> usize {
        self.workers.unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1)
                .min(8)
        })
    }

    /// Convenience: validate and run one spec through a registry on this
    /// backend (`registry.run_on(spec, self)`).
    ///
    /// # Errors
    ///
    /// Everything `ScenarioRegistry::validate` rejects.
    pub fn run(
        &self,
        registry: &ScenarioRegistry,
        spec: &ScenarioSpec,
    ) -> Result<Outcome, ScenarioError> {
        registry.run_on(spec, self)
    }

    /// Like [`Backend::execute`], but with an external client: `driver`
    /// runs on its own thread for the duration of the run, injecting
    /// encoded messages through its [`ClientHandle`] — the open-loop
    /// serving path. The driver must stop once [`ClientHandle::submit`]
    /// returns `false`.
    pub fn execute_with_client(
        &self,
        spec: &ScenarioSpec,
        slots: Vec<ErasedSlot>,
        codec: MsgCodec,
        driver: impl FnOnce(ClientHandle) + Send + 'static,
    ) -> Outcome {
        let raw = run_async_slots(
            engine_plan(spec, self.deadline),
            slots.into_iter().map(|s| (s.strategy, s.honest)).collect(),
            codec,
            self.pool_size(),
            Some(Box::new(driver)),
        );
        outcome_from_raw(spec, raw)
    }
}

impl Default for AsyncBackend {
    fn default() -> Self {
        AsyncBackend::new()
    }
}

impl Backend for AsyncBackend {
    fn name(&self) -> &'static str {
        "async"
    }

    fn execute(&self, spec: &ScenarioSpec, slots: Vec<ErasedSlot>, codec: MsgCodec) -> Outcome {
        let raw = run_async_slots(
            engine_plan(spec, self.deadline),
            slots.into_iter().map(|s| (s.strategy, s.honest)).collect(),
            codec,
            self.pool_size(),
            None,
        );
        outcome_from_raw(spec, raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_sim::{AdversaryMix, Context, DelayChoice, SkewChoice};
    use gcl_types::{Duration as SimDuration, Value};

    /// Wall-safe bounds, as in the other wall backends' suites: δ' = 2 ms
    /// links, Δ' = 20 ms timers.
    fn brb_spec() -> ScenarioSpec {
        gcl_core::registry()
            .spec("brb2")
            .unwrap()
            .with_bounds(SimDuration::from_millis(2), SimDuration::from_millis(20))
    }

    #[test]
    fn brb_family_runs_on_async_backend() {
        let reg = gcl_core::registry();
        let spec = brb_spec();
        let o = AsyncBackend::new().run(&reg, &spec).unwrap();
        assert!(o.agreement_holds());
        assert!(o.all_honest_committed());
        assert!(o.all_honest_terminated());
        assert_eq!(o.committed_value(), Some(spec.input));
        assert!(o.messages_sent() > 0);
        let lat = o.good_case_latency().expect("all committed");
        assert!(lat >= SimDuration::from_millis(4), "latency {lat}");
        assert_eq!(o.good_case_rounds(), Some(2), "causal tags survive bytes");
        let sched = o.sched_counters().expect("readiness engine reports");
        assert!(sched.workers >= 1);
        assert!(sched.wakeups > 0, "the loop polled at least once");
        assert!(sched.peak_outbound_bytes > 0, "frames queued somewhere");
    }

    #[test]
    fn async_backend_honors_adversary_skew_and_jitter() {
        let reg = gcl_core::registry();
        let spec = brb_spec()
            .with_adversary(AdversaryMix::TrailingSilent { count: 1 })
            .with_skew(SkewChoice::OddHalfDelta)
            .with_delays(DelayChoice::Uniform {
                lo: SimDuration::from_millis(1),
                hi: SimDuration::from_millis(2),
            })
            .with_seed(5);
        let o = AsyncBackend::new().run(&reg, &spec).unwrap();
        assert!(!o.is_honest(PartyId::new(3)), "trailing slot is Byzantine");
        assert!(
            o.commit_of(PartyId::new(3)).is_none(),
            "silent never commits"
        );
        assert!(o.agreement_holds());
        assert!(o.all_honest_committed(), "f = 1 silence is tolerated");
        assert_eq!(o.committed_value(), Some(spec.input));
    }

    #[test]
    fn async_run_exits_early() {
        let reg = gcl_core::registry();
        let started = Instant::now();
        let o = AsyncBackend::new()
            .deadline(Duration::from_secs(10))
            .run(&reg, &brb_spec())
            .unwrap();
        assert!(o.all_honest_committed());
        let wall = started.elapsed();
        assert!(
            wall < Duration::from_millis(500),
            "early exit regressed: run took {wall:?} against a 10 s deadline"
        );
    }

    #[test]
    fn deadline_caps_a_run_that_cannot_terminate() {
        let reg = gcl_core::registry();
        let spec = brb_spec().with_adversary(AdversaryMix::CrashAt {
            party: PartyId::new(0),
            handled: 0,
        });
        let started = Instant::now();
        let o = AsyncBackend::new()
            .deadline(Duration::from_millis(200))
            .run(&reg, &spec)
            .unwrap();
        assert!(o.commits().is_empty());
        assert!(!o.all_honest_terminated());
        let wall = started.elapsed();
        assert!(
            wall >= Duration::from_millis(200),
            "waited out the deadline"
        );
        assert!(wall < Duration::from_secs(5), "but not much longer");
    }

    #[test]
    fn one_byte_reads_commit_identically() {
        // The short-read fuzz gate on the readiness path: every fill capped
        // at ONE byte, so each frame reassembles across dozens of readiness
        // events. Commits, termination and causal rounds must match the
        // unthrottled run.
        use gcl_core::asynchrony::{Brb2Msg, TwoRoundBrb};
        use gcl_crypto::Keychain;
        let spec = brb_spec();
        let cfg = spec.config().expect("valid shape");
        let run_with = |chunk: Option<usize>| {
            let chain = Keychain::generate(spec.n, spec.seed);
            let slots = spec.erased_slots(|p| {
                TwoRoundBrb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    spec.broadcaster,
                    spec.input_for(p),
                )
            });
            let mut plan = engine_plan(&spec, Duration::from_secs(10));
            plan.read_chunk = chunk;
            let raw = run_async_slots(
                plan,
                slots.into_iter().map(|s| (s.strategy, s.honest)).collect(),
                MsgCodec::of::<Brb2Msg>(),
                2,
                None,
            );
            outcome_from_raw(&spec, raw)
        };
        let chunked = run_with(Some(1));
        let normal = run_with(None);
        assert!(chunked.agreement_holds());
        assert!(
            chunked.all_honest_committed(),
            "1-byte reads must not stall"
        );
        assert!(chunked.all_honest_terminated());
        assert_eq!(chunked.committed_value(), normal.committed_value());
        assert_eq!(chunked.committed_value(), Some(spec.input));
        assert_eq!(
            chunked.good_case_rounds(),
            normal.good_case_rounds(),
            "causal structure survives byte-at-a-time delivery"
        );
    }

    #[test]
    fn garbled_client_frames_leave_the_run_live() {
        // The client path end to end — wake pipe, channel drain, heap
        // routing — under a client that floods undecodable frames.
        use gcl_core::asynchrony::{Brb2Msg, TwoRoundBrb};
        use gcl_crypto::Keychain;
        let spec = brb_spec();
        let cfg = spec.config().expect("valid shape");
        let chain = Keychain::generate(spec.n, spec.seed);
        let slots = spec.erased_slots(|p| {
            TwoRoundBrb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                spec.broadcaster,
                spec.input_for(p),
            )
        });
        let n = spec.n;
        let o = AsyncBackend::new().execute_with_client(
            &spec,
            slots,
            MsgCodec::of::<Brb2Msg>(),
            move |client: ClientHandle| {
                for round in 0..20u64 {
                    for p in 0..n as u32 {
                        let garbage = vec![255, round as u8, 0xde, 0xad, 0xbe, 0xef];
                        if !client.submit(PartyId::new(p), garbage) {
                            return;
                        }
                    }
                    thread::sleep(Duration::from_millis(1));
                }
            },
        );
        assert!(o.agreement_holds());
        assert!(
            o.all_honest_committed(),
            "garbage frames must not stop the protocol"
        );
        assert_eq!(o.committed_value(), Some(spec.input));
    }

    /// A party that arms one timer at start and commits when it fires —
    /// the cheapest possible protocol, for scale tests where the subject
    /// is the engine, not a protocol.
    struct TimerThenCommit;

    impl Strategy<ErasedMsg> for TimerThenCommit {
        fn start(&mut self, ctx: &mut dyn Context<ErasedMsg>) {
            ctx.set_timer(SimDuration::from_millis(150), 0);
        }
        fn on_message(&mut self, _: PartyId, _: ErasedMsg, _: &mut dyn Context<ErasedMsg>) {}
        fn on_timer(&mut self, _: u64, ctx: &mut dyn Context<ErasedMsg>) {
            ctx.commit(Value::new(7));
            ctx.terminate();
        }
    }

    #[cfg(target_os = "linux")]
    fn live_threads() -> usize {
        std::fs::read_dir("/proc/self/task")
            .expect("procfs")
            .count()
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn thread_count_stays_o_workers_at_n_512() {
        // The scaling claim, asserted: 512 parties on a 4-worker pool must
        // cost ~6 threads (scheduler + workers + the run's own thread) —
        // not 512, let alone the blocking engines' 3 × 512.
        use gcl_types::Config;
        let n = 512;
        let plan = EnginePlan {
            config: Config::new(n, 1).expect("valid shape"),
            links: vec![Duration::ZERO; n * n],
            starts: vec![Duration::ZERO; n],
            deadline: Duration::from_secs(30),
            read_chunk: None,
        };
        let slots: Vec<(Box<dyn Strategy<ErasedMsg>>, bool)> = (0..n)
            .map(|_| {
                (
                    Box::new(TimerThenCommit) as Box<dyn Strategy<ErasedMsg>>,
                    true,
                )
            })
            .collect();
        let before = live_threads();
        let run =
            thread::spawn(move || run_async_slots(plan, slots, MsgCodec::of::<u64>(), 4, None));
        // Sample mid-run: parties are armed and waiting on their timers.
        thread::sleep(Duration::from_millis(60));
        let during = live_threads();
        let raw = run.join().expect("run completes");
        let delta = during.saturating_sub(before);
        assert!(
            delta < 64,
            "expected O(workers) threads at n = 512, saw {delta} extra"
        );
        assert!(raw.terminated.iter().all(|t| *t), "every party terminated");
        assert_eq!(
            raw.commits.iter().filter(|c| c.first).count(),
            n,
            "every party committed"
        );
        let sched = raw.sched.expect("counters");
        assert_eq!(sched.workers, 4);
    }
}
