//! Threads + channels + wall clocks.
//!
//! One engine ([`run_slots`]) drives both public entry points: the typed
//! [`NetRuntime`] demo API and the registry-facing
//! [`NetBackend`](crate::NetBackend). Every party is an OS thread; a
//! dispatcher thread owns a min-heap of future deliveries (per-link
//! injected latency) and timer expiries. The engine discipline — party
//! bookkeeping, heap ordering, early exit — lives in [`crate::engine`]
//! and is shared with the socket and readiness-loop runtimes; what is
//! local here is the transport: in-memory channels and `Arc`-shared
//! multicast payloads. Three properties are load-bearing and covered by
//! unit tests here or in `engine.rs`:
//!
//! * **Early termination.** Party threads signal a completion channel when
//!   their strategy terminates; the engine stops as soon as every *honest*
//!   party has terminated. The wall-clock budget is a deadline, not a
//!   sentence — a good-case 4-party broadcast over 1 ms links returns in
//!   single-digit milliseconds even with a multi-second budget.
//! * **Shared-payload multicast.** [`NetCtx`] overrides
//!   [`Context::multicast`]: an n-way fan-out allocates the payload once
//!   behind an `Arc` and the n in-flight deliveries share it, cloning
//!   lazily at delivery (the last copy unwraps). This mirrors the
//!   simulator's `Rc` fast path — `Arc` because deliveries cross threads.
//! * **Stable delivery ties.** The dispatcher stamps every submission with
//!   a dispatcher-global sequence number on receipt, so heap ties at one
//!   instant pop in arrival order instead of racing two parties' private
//!   counters against each other.

use crate::engine::{
    await_honest_done, EnginePlan, PartyCore, RawCommit, RawRun, Scheduled, Step, IDLE_POLL,
};
use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};
use gcl_sim::{Protocol, Strategy};
use gcl_types::{Config, PartyId, Value};
use parking_lot::Mutex;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

#[cfg(doc)]
use crate::engine::NetCtx;
#[cfg(doc)]
use gcl_sim::Context;

/// One commit observed by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetCommit {
    /// The committing party.
    pub party: PartyId,
    /// The committed value.
    pub value: Value,
    /// Wall-clock time since runtime start.
    pub elapsed: Duration,
}

/// Everything observable after a threaded run.
///
/// [`NetOutcome::commits`] is the **raw commit stream**: every `commit`
/// call of every party, in wall-clock order — multi-commit workloads (the
/// SMR engine's per-replica log digests, diagnostics) are visible here.
/// The audit accessors ([`NetOutcome::agreement_holds`],
/// [`NetOutcome::committed_value`], [`NetOutcome::latency`]) follow the
/// [`Context::commit`] contract and judge each party by its *first*
/// commit, exactly as the simulator does.
#[derive(Debug)]
pub struct NetOutcome {
    commits: Vec<NetCommit>,
    n: usize,
}

impl NetOutcome {
    pub(crate) fn new(commits: Vec<NetCommit>, n: usize) -> Self {
        NetOutcome { commits, n }
    }

    /// All commits in wall-clock order (every call, not just the first per
    /// party).
    pub fn commits(&self) -> &[NetCommit] {
        &self.commits
    }

    /// Each party's first commit, in wall-clock order.
    pub fn first_commits(&self) -> Vec<&NetCommit> {
        let mut seen = vec![false; self.n];
        let mut firsts = Vec::new();
        for c in &self.commits {
            if !seen[c.party.as_usize()] {
                seen[c.party.as_usize()] = true;
                firsts.push(c);
            }
        }
        firsts
    }

    /// No two parties' (first) commits disagree.
    pub fn agreement_holds(&self) -> bool {
        let mut first = None;
        for c in self.first_commits() {
            match first {
                None => first = Some(c.value),
                Some(v) if v != c.value => return false,
                _ => {}
            }
        }
        true
    }

    /// The common committed value, if agreement holds and anyone committed.
    pub fn committed_value(&self) -> Option<Value> {
        if !self.agreement_holds() {
            return None;
        }
        self.first_commits().first().map(|c| c.value)
    }

    /// Whether every party committed.
    pub fn all_committed(&self) -> bool {
        self.first_commits().len() == self.n
    }

    /// Time from start to the last first-commit, if all committed.
    pub fn latency(&self) -> Option<Duration> {
        if !self.all_committed() {
            return None;
        }
        self.first_commits().iter().map(|c| c.elapsed).max()
    }
}

/// A delivery payload. Multicasts share one `Arc`-backed allocation across
/// all `n` in-flight copies; unicasts and timer-free self-sends stay
/// inline. Mirrors the simulator's `Rc` payload — atomic because the net
/// runtime's deliveries cross threads.
pub(crate) enum NetPayload<M> {
    /// The sole in-flight copy.
    Owned(M),
    /// One of the in-flight copies of a multicast.
    Shared(Arc<M>),
}

impl<M: Clone> NetPayload<M> {
    /// By-value extraction at delivery: inline payloads move, the last
    /// in-flight copy of a multicast unwraps for free, earlier ones clone
    /// lazily.
    pub(crate) fn into_msg(self) -> M {
        match self {
            NetPayload::Owned(m) => m,
            NetPayload::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
        }
    }
}

enum Event<M> {
    Msg {
        from: PartyId,
        /// Causal-depth round tag, as in the simulator.
        round: u32,
        payload: NetPayload<M>,
    },
    Timer(u64),
    Stop,
}

/// A delivery request as submitted by a party thread. The dispatcher
/// stamps the global tiebreak sequence on receipt — party threads carry no
/// ordering state of their own.
struct Submit<M> {
    due: Instant,
    to: PartyId,
    event: Event<M>,
}

/// Spawns one thread per slot plus a dispatcher, runs until every honest
/// slot terminates or the deadline passes, and collects the observations.
pub(crate) fn run_slots<M: Clone + fmt::Debug + Send + Sync + 'static>(
    plan: EnginePlan,
    slots: Vec<(Box<dyn Strategy<M>>, bool)>,
) -> RawRun {
    let n = plan.config.n();
    assert_eq!(slots.len(), n, "one slot per party");
    assert_eq!(plan.links.len(), n * n, "full link matrix");
    assert_eq!(plan.starts.len(), n, "one start offset per party");
    let honest: Vec<bool> = slots.iter().map(|(_, h)| *h).collect();
    let epoch = Instant::now();
    let commits: Arc<Mutex<Vec<RawCommit>>> = Arc::new(Mutex::new(Vec::new()));

    // Parties submit future deliveries here; the dispatcher stamps the
    // global tiebreak sequence and owns the clock-ordered heap.
    let (sched_tx, sched_rx) = unbounded::<Submit<M>>();
    let (done_tx, done_rx) = unbounded::<()>();
    let mut party_txs: Vec<Sender<Event<M>>> = Vec::with_capacity(n);
    let mut party_rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        party_txs.push(tx);
        party_rxs.push(rx);
    }

    let dispatcher_txs = party_txs.clone();
    let dispatcher = thread::spawn(move || {
        let mut heap: BinaryHeap<Scheduled<Event<M>>> = BinaryHeap::new();
        let mut next_seq: u64 = 0;
        let mut messages: u64 = 0;
        let mut peak: usize = 0;
        loop {
            let timeout = heap
                .peek()
                .map(|s| s.due.saturating_duration_since(Instant::now()))
                .unwrap_or(IDLE_POLL);
            match sched_rx.recv_timeout(timeout) {
                Ok(sub) => {
                    if matches!(sub.event, Event::Stop) {
                        // Propagate stop to every party and exit; events
                        // still in the heap are past the run's horizon.
                        for tx in &dispatcher_txs {
                            let _ = tx.send(Event::Stop);
                        }
                        return (messages, peak);
                    }
                    if matches!(sub.event, Event::Msg { .. }) {
                        messages += 1;
                    }
                    heap.push(Scheduled {
                        due: sub.due,
                        seq: next_seq,
                        to: sub.to,
                        what: sub.event,
                    });
                    next_seq += 1;
                    peak = peak.max(heap.len());
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return (messages, peak),
            }
            while heap.peek().is_some_and(|s| s.due <= Instant::now()) {
                let s = heap.pop().expect("peeked");
                let _ = dispatcher_txs[s.to.as_usize()].send(s.what);
            }
        }
    });

    let mut handles = Vec::with_capacity(n);
    for (i, ((mut strategy, is_honest), rx)) in slots.into_iter().zip(party_rxs).enumerate() {
        let me = PartyId::new(i as u32);
        let config = plan.config;
        let start_offset = plan.starts[i];
        let links: Vec<Duration> = plan.links[i * n..(i + 1) * n].to_vec();
        let sched = sched_tx.clone();
        let done = done_tx.clone();
        let commits = Arc::clone(&commits);
        handles.push(thread::spawn(move || {
            // Wall-clock skew: messages arriving before the start buffer in
            // the channel; the local clock begins after the offset.
            if !start_offset.is_zero() {
                thread::sleep(start_offset);
            }
            let mut core = PartyCore::new(me, config, epoch, Instant::now());
            // One handler invocation: bookkeeping and commit recording in
            // the shared core, effect drain over this transport (channels,
            // `Arc`-shared multicast payloads).
            let run = |strategy: &mut Box<dyn Strategy<M>>,
                       core: &mut PartyCore,
                       step: Step<M>|
             -> bool {
                let ctx = core.handle(strategy.as_mut(), step, &commits);
                let out_round = core.out_round();
                for (to, msg) in ctx.sends {
                    if to.as_usize() >= n {
                        // Out-of-band addresses (the reserved client id):
                        // this runtime has no client endpoint, so client
                        // acknowledgements are dropped here.
                        continue;
                    }
                    let _ = sched.send(Submit {
                        due: Instant::now() + links[to.as_usize()],
                        to,
                        event: Event::Msg {
                            from: me,
                            round: out_round,
                            payload: NetPayload::Owned(msg),
                        },
                    });
                }
                for (skip, msg) in ctx.mcasts {
                    // Fast path: one payload allocation, n pointer bumps,
                    // destinations in id order (the default multicast
                    // order).
                    let shared = Arc::new(msg);
                    for t in 0..n as u32 {
                        let to = PartyId::new(t);
                        if Some(to) == skip {
                            continue;
                        }
                        let _ = sched.send(Submit {
                            due: Instant::now() + links[to.as_usize()],
                            to,
                            event: Event::Msg {
                                from: me,
                                round: out_round,
                                payload: NetPayload::Shared(Arc::clone(&shared)),
                            },
                        });
                    }
                }
                for (delay, tag) in ctx.timers {
                    let _ = sched.send(Submit {
                        due: Instant::now() + Duration::from_micros(delay.as_micros()),
                        to: me,
                        event: Event::Timer(tag),
                    });
                }
                ctx.terminate
            };

            let finish = |handled: u64| {
                if is_honest {
                    let _ = done.send(());
                }
                (true, handled)
            };
            if run(&mut strategy, &mut core, Step::Start) {
                return finish(core.handled);
            }
            loop {
                match rx.recv_timeout(IDLE_POLL) {
                    Ok(Event::Stop) => return (false, core.handled),
                    Ok(Event::Msg {
                        from,
                        round,
                        payload,
                    }) => {
                        let step = Step::Msg {
                            from,
                            round,
                            msg: payload.into_msg(),
                        };
                        if run(&mut strategy, &mut core, step) {
                            return finish(core.handled);
                        }
                    }
                    Ok(Event::Timer(tag)) => {
                        if run(&mut strategy, &mut core, Step::Timer(tag)) {
                            return finish(core.handled);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return (false, core.handled),
                }
            }
        }));
    }
    drop(done_tx);

    // Early-exit protocol: every honest party reports termination on the
    // completion channel; `deadline` is only the fallback horizon for runs
    // where some honest party never terminates (adversarial schedules).
    await_honest_done(&done_rx, &honest, epoch + plan.deadline);

    let _ = sched_tx.send(Submit {
        due: Instant::now(),
        to: PartyId::new(0),
        event: Event::Stop,
    });
    let mut terminated = vec![false; n];
    let mut events_handled: u64 = 0;
    for (i, h) in handles.into_iter().enumerate() {
        // Propagate a party-thread panic (a crashed protocol handler)
        // instead of misreporting it as "party never terminated" — the
        // remaining threads have already been sent Stop and exit on their
        // own.
        let (t, handled) = match h.join() {
            Ok(result) => result,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        terminated[i] = t;
        events_handled += handled;
    }
    drop(sched_tx);
    let (messages_sent, peak_queue) = dispatcher.join().unwrap_or((0, 0));

    let mut collected = std::mem::take(&mut *commits.lock());
    collected.sort_by_key(|c| c.elapsed);
    RawRun {
        commits: collected,
        terminated,
        honest,
        events_handled,
        messages_sent,
        peak_queue,
        elapsed: epoch.elapsed(),
        sched: None,
    }
}

/// The threaded runtime: the typed, fixed-latency entry point for demos
/// and tests. For registry scenarios use
/// [`NetBackend`](crate::NetBackend), which derives link latencies, skew
/// and the adversary population from a `ScenarioSpec`.
#[derive(Debug)]
pub struct NetRuntime {
    config: Config,
    link_latency: Duration,
}

impl NetRuntime {
    /// A runtime for `config` with zero injected latency.
    pub fn new(config: Config) -> Self {
        NetRuntime {
            config,
            link_latency: Duration::ZERO,
        }
    }

    /// Injects a fixed latency on every inter-party link.
    #[must_use]
    pub fn link_latency(mut self, latency: Duration) -> Self {
        self.link_latency = latency;
        self
    }

    /// Spawns one thread per party running `make(party)` and collects the
    /// commits. `duration` is a **deadline**, not a sentence: the run
    /// returns as soon as every party terminates, and only an execution
    /// where someone never terminates burns the whole budget.
    pub fn run_for<P, F>(self, duration: Duration, mut make: F) -> NetOutcome
    where
        P: Protocol,
        F: FnMut(PartyId) -> P,
    {
        let n = self.config.n();
        let mut links = vec![Duration::ZERO; n * n];
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    links[from * n + to] = self.link_latency;
                }
            }
        }
        let raw = run_slots::<P::Msg>(
            EnginePlan {
                config: self.config,
                links,
                starts: vec![Duration::ZERO; n],
                deadline: duration,
                read_chunk: None,
            },
            (0..n)
                .map(|i| {
                    let slot: Box<dyn Strategy<P::Msg>> = Box::new(make(PartyId::new(i as u32)));
                    (slot, true)
                })
                .collect(),
        );
        NetOutcome::new(
            raw.commits
                .into_iter()
                .map(|c| NetCommit {
                    party: c.party,
                    value: c.value,
                    elapsed: c.elapsed,
                })
                .collect(),
            n,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NetCtx;
    use gcl_core::asynchrony::TwoRoundBrb;
    use gcl_core::psync::VbbFiveFMinusOne;
    use gcl_crypto::Keychain;
    use gcl_sim::Context;
    use gcl_types::{accept_all, LocalTime};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn brb_over_threads_exits_early() {
        // The early-termination regression gate: 4 parties over 1 ms links
        // with a 10 *second* budget must return in single-digit
        // milliseconds (generous 100 ms bound for loaded CI machines). The
        // pre-fix runtime slept the whole budget unconditionally.
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 140);
        let started = Instant::now();
        let o = NetRuntime::new(cfg)
            .link_latency(Duration::from_millis(1))
            .run_for(Duration::from_secs(10), |p| {
                TwoRoundBrb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(9)),
                )
            });
        let wall = started.elapsed();
        assert!(o.agreement_holds());
        assert!(o.all_committed(), "commits: {:?}", o.commits());
        assert_eq!(o.committed_value(), Some(Value::new(9)));
        assert!(o.latency().is_some());
        assert!(
            wall < Duration::from_millis(100),
            "early exit regressed: run took {wall:?} against a 10 s deadline"
        );
    }

    #[test]
    fn vbb_over_threads() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 141);
        let o = NetRuntime::new(cfg)
            .link_latency(Duration::from_millis(1))
            .run_for(Duration::from_millis(500), |p| {
                VbbFiveFMinusOne::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    accept_all(),
                    gcl_types::Duration::from_millis(40),
                    (p == PartyId::new(0)).then_some(Value::new(3)),
                )
            });
        assert!(o.agreement_holds());
        assert!(o.all_committed(), "commits: {:?}", o.commits());
        assert_eq!(o.committed_value(), Some(Value::new(3)));
    }

    #[test]
    fn outcome_audits_use_first_commit_per_party() {
        let c = |p: u32, v: u64, ms: u64| NetCommit {
            party: PartyId::new(p),
            value: Value::new(v),
            elapsed: Duration::from_millis(ms),
        };
        // Party 0 commits 1 then (multi-commit) 9; party 1 commits 1.
        let o = NetOutcome::new(vec![c(0, 1, 2), c(1, 1, 3), c(0, 9, 4)], 2);
        assert_eq!(o.commits().len(), 3, "raw stream keeps every commit");
        assert_eq!(o.first_commits().len(), 2);
        assert!(o.agreement_holds(), "the later 9 is not a first commit");
        assert_eq!(o.committed_value(), Some(Value::new(1)));
        assert!(o.all_committed());
        assert_eq!(o.latency(), Some(Duration::from_millis(3)));

        let disagree = NetOutcome::new(vec![c(0, 1, 2), c(1, 2, 3)], 2);
        assert!(!disagree.agreement_holds());
        assert_eq!(disagree.committed_value(), None);

        let partial = NetOutcome::new(vec![c(0, 1, 2)], 2);
        assert!(!partial.all_committed());
        assert_eq!(partial.latency(), None);
    }

    /// A message that counts how many times it is cloned.
    #[derive(Debug)]
    struct Counted {
        tag: u64,
        clones: Arc<AtomicUsize>,
    }
    impl Clone for Counted {
        fn clone(&self) -> Self {
            self.clones.fetch_add(1, Ordering::SeqCst);
            Counted {
                tag: self.tag,
                clones: Arc::clone(&self.clones),
            }
        }
    }

    #[test]
    fn multicast_buffers_one_shared_payload() {
        let clones = Arc::new(AtomicUsize::new(0));
        let mut ctx: NetCtx<Counted> =
            NetCtx::new(PartyId::new(0), Config::new(4, 1).unwrap(), LocalTime::ZERO);
        ctx.multicast(Counted {
            tag: 7,
            clones: Arc::clone(&clones),
        });
        assert!(ctx.sends.is_empty(), "no per-recipient fan-out at send");
        assert_eq!(ctx.mcasts.len(), 1, "one buffered multicast entry");
        assert_eq!(
            clones.load(Ordering::SeqCst),
            0,
            "zero clones at multicast time (the default Context impl would clone n times)"
        );

        // Fan the payload out the way the drain does — one allocation, n
        // shared handles — and deliver all four copies: recipients see
        // equal messages and the payload clones only n − 1 times (the last
        // in-flight copy unwraps the original allocation).
        let (_, msg) = ctx.mcasts.pop().unwrap();
        let shared = Arc::new(msg);
        let payloads: Vec<NetPayload<Counted>> = (0..4)
            .map(|_| NetPayload::Shared(Arc::clone(&shared)))
            .collect();
        drop(shared);
        let delivered: Vec<Counted> = payloads.into_iter().map(NetPayload::into_msg).collect();
        assert!(delivered.iter().all(|m| m.tag == 7), "equal messages");
        assert_eq!(
            clones.load(Ordering::SeqCst),
            3,
            "n - 1 lazy clones at delivery, one original moved out"
        );
    }

    #[test]
    fn shared_payload_unwraps_or_clones() {
        let clones = Arc::new(AtomicUsize::new(0));
        let solo = NetPayload::Owned(Counted {
            tag: 1,
            clones: Arc::clone(&clones),
        });
        assert_eq!(solo.into_msg().tag, 1);
        assert_eq!(clones.load(Ordering::SeqCst), 0, "owned payloads move");
    }
}
