//! Threads + channels + wall clocks.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gcl_sim::{Context, Protocol};
use gcl_types::{Config, Duration as SimDuration, LocalTime, PartyId, Value};
use parking_lot::Mutex;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// One commit observed by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetCommit {
    /// The committing party.
    pub party: PartyId,
    /// The committed value.
    pub value: Value,
    /// Wall-clock time since runtime start.
    pub elapsed: Duration,
}

/// Everything observable after a threaded run.
#[derive(Debug)]
pub struct NetOutcome {
    commits: Vec<NetCommit>,
    n: usize,
}

impl NetOutcome {
    /// All commits in commit order.
    pub fn commits(&self) -> &[NetCommit] {
        &self.commits
    }

    /// No two parties committed different values.
    pub fn agreement_holds(&self) -> bool {
        let mut first = None;
        for c in &self.commits {
            match first {
                None => first = Some(c.value),
                Some(v) if v != c.value => return false,
                _ => {}
            }
        }
        true
    }

    /// The common committed value, if agreement holds and anyone committed.
    pub fn committed_value(&self) -> Option<Value> {
        if !self.agreement_holds() {
            return None;
        }
        self.commits.first().map(|c| c.value)
    }

    /// Whether every party committed.
    pub fn all_committed(&self) -> bool {
        let mut seen = vec![false; self.n];
        for c in &self.commits {
            seen[c.party.as_usize()] = true;
        }
        seen.iter().all(|s| *s)
    }

    /// Time from start to the last commit, if all committed.
    pub fn latency(&self) -> Option<Duration> {
        if !self.all_committed() {
            return None;
        }
        self.commits.iter().map(|c| c.elapsed).max()
    }
}

enum Event<M> {
    Msg(PartyId, M),
    Timer(u64),
    Stop,
}

struct Scheduled<M> {
    due: Instant,
    seq: u64,
    to: PartyId,
    event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The threaded runtime.
#[derive(Debug)]
pub struct NetRuntime {
    config: Config,
    link_latency: Duration,
}

impl NetRuntime {
    /// A runtime for `config` with zero injected latency.
    pub fn new(config: Config) -> Self {
        NetRuntime {
            config,
            link_latency: Duration::ZERO,
        }
    }

    /// Injects a fixed latency on every inter-party link.
    #[must_use]
    pub fn link_latency(mut self, latency: Duration) -> Self {
        self.link_latency = latency;
        self
    }

    /// Spawns one thread per party running `make(party)`, lets the system
    /// run for `duration` of wall-clock time (or until every party
    /// terminates), and collects the commits.
    pub fn run_for<P, F>(self, duration: Duration, mut make: F) -> NetOutcome
    where
        P: Protocol,
        F: FnMut(PartyId) -> P,
    {
        let n = self.config.n();
        let start = Instant::now();
        let commits: Arc<Mutex<Vec<NetCommit>>> = Arc::new(Mutex::new(Vec::new()));

        // Dispatcher: a min-heap of scheduled deliveries, fed by a channel.
        let (sched_tx, sched_rx) = unbounded::<Scheduled<P::Msg>>();
        let mut party_txs: Vec<Sender<Event<P::Msg>>> = Vec::with_capacity(n);
        let mut party_rxs: Vec<Receiver<Event<P::Msg>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            party_txs.push(tx);
            party_rxs.push(rx);
        }

        let dispatcher_txs = party_txs.clone();
        let dispatcher = thread::spawn(move || {
            let mut heap: BinaryHeap<Scheduled<P::Msg>> = BinaryHeap::new();
            loop {
                let timeout = heap
                    .peek()
                    .map(|s| s.due.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_millis(50));
                match sched_rx.recv_timeout(timeout) {
                    Ok(s) => {
                        if matches!(s.event, Event::Stop) {
                            // Propagate stop to every party and exit.
                            for tx in &dispatcher_txs {
                                let _ = tx.send(Event::Stop);
                            }
                            return;
                        }
                        heap.push(s);
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return,
                }
                while heap.peek().is_some_and(|s| s.due <= Instant::now()) {
                    let s = heap.pop().expect("peeked");
                    let _ = dispatcher_txs[s.to.as_usize()].send(s.event);
                }
            }
        });

        let mut handles = Vec::with_capacity(n);
        for (i, rx) in party_rxs.into_iter().enumerate() {
            let me = PartyId::new(i as u32);
            let mut protocol = make(me);
            let config = self.config;
            let latency = self.link_latency;
            let sched = sched_tx.clone();
            let commits = Arc::clone(&commits);
            handles.push(thread::spawn(move || {
                let local_start = Instant::now();
                let mut seq: u64 = 0;
                let mut committed = false;
                let mut run = |proto: &mut P, ev: Option<Event<P::Msg>>| -> bool {
                    let mut ctx = NetCtx {
                        me,
                        config,
                        now: LocalTime::from_micros(local_start.elapsed().as_micros() as u64),
                        sends: Vec::new(),
                        timers: Vec::new(),
                        commit_values: Vec::new(),
                        terminate: false,
                    };
                    match ev {
                        None => proto.start(&mut ctx),
                        Some(Event::Msg(from, m)) => proto.on_message(from, m, &mut ctx),
                        Some(Event::Timer(tag)) => proto.on_timer(tag, &mut ctx),
                        Some(Event::Stop) => return true,
                    }
                    for v in ctx.commit_values {
                        if !committed {
                            committed = true;
                            commits.lock().push(NetCommit {
                                party: me,
                                value: v,
                                elapsed: start.elapsed(),
                            });
                        }
                    }
                    for (to, msg) in ctx.sends {
                        seq += 1;
                        let due = if to == me {
                            Instant::now()
                        } else {
                            Instant::now() + latency
                        };
                        let _ = sched.send(Scheduled {
                            due,
                            seq,
                            to,
                            event: Event::Msg(me, msg),
                        });
                    }
                    for (delay, tag) in ctx.timers {
                        seq += 1;
                        let _ = sched.send(Scheduled {
                            due: Instant::now() + Duration::from_micros(delay.as_micros()),
                            seq,
                            to: me,
                            event: Event::Timer(tag),
                        });
                    }
                    ctx.terminate
                };
                if run(&mut protocol, None) {
                    return;
                }
                loop {
                    match rx.recv_timeout(Duration::from_millis(100)) {
                        Ok(Event::Stop) => return,
                        Ok(ev) => {
                            if run(&mut protocol, Some(ev)) {
                                return;
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            }));
        }

        thread::sleep(duration);
        let _ = sched_tx.send(Scheduled {
            due: Instant::now(),
            seq: u64::MAX,
            to: PartyId::new(0),
            event: Event::Stop,
        });
        for h in handles {
            let _ = h.join();
        }
        drop(sched_tx);
        let _ = dispatcher.join();

        let mut collected = commits.lock().clone();
        collected.sort_by_key(|c| c.elapsed);
        NetOutcome {
            commits: collected,
            n,
        }
    }
}

struct NetCtx<M> {
    me: PartyId,
    config: Config,
    now: LocalTime,
    sends: Vec<(PartyId, M)>,
    timers: Vec<(SimDuration, u64)>,
    commit_values: Vec<Value>,
    terminate: bool,
}

impl<M> Context<M> for NetCtx<M> {
    fn me(&self) -> PartyId {
        self.me
    }
    fn config(&self) -> Config {
        self.config
    }
    fn now(&self) -> LocalTime {
        self.now
    }
    fn send(&mut self, to: PartyId, msg: M) {
        self.sends.push((to, msg));
    }
    fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.timers.push((delay, tag));
    }
    fn commit(&mut self, value: Value) {
        self.commit_values.push(value);
    }
    fn terminate(&mut self) {
        self.terminate = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_core::asynchrony::TwoRoundBrb;
    use gcl_core::psync::VbbFiveFMinusOne;
    use gcl_crypto::Keychain;
    use gcl_types::accept_all;

    #[test]
    fn brb_over_threads() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 140);
        let o = NetRuntime::new(cfg)
            .link_latency(Duration::from_millis(1))
            .run_for(Duration::from_millis(400), |p| {
                TwoRoundBrb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(9)),
                )
            });
        assert!(o.agreement_holds());
        assert!(o.all_committed(), "commits: {:?}", o.commits());
        assert_eq!(o.committed_value(), Some(Value::new(9)));
        assert!(o.latency().is_some());
    }

    #[test]
    fn vbb_over_threads() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 141);
        let o = NetRuntime::new(cfg)
            .link_latency(Duration::from_millis(1))
            .run_for(Duration::from_millis(500), |p| {
                VbbFiveFMinusOne::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    accept_all(),
                    gcl_types::Duration::from_millis(40),
                    (p == PartyId::new(0)).then_some(Value::new(3)),
                )
            });
        assert!(o.agreement_holds());
        assert!(o.all_committed(), "commits: {:?}", o.commits());
        assert_eq!(o.committed_value(), Some(Value::new(3)));
    }

    #[test]
    fn outcome_accessors() {
        let o = NetOutcome {
            commits: vec![
                NetCommit {
                    party: PartyId::new(0),
                    value: Value::new(1),
                    elapsed: Duration::from_millis(2),
                },
                NetCommit {
                    party: PartyId::new(1),
                    value: Value::new(2),
                    elapsed: Duration::from_millis(3),
                },
            ],
            n: 2,
        };
        assert!(!o.agreement_holds());
        assert_eq!(o.committed_value(), None);
        assert!(o.all_committed());
        assert_eq!(o.latency(), Some(Duration::from_millis(3)));
    }
}
