//! The wall-clock execution backend for the scenario registry.
//!
//! [`NetBackend`] implements [`gcl_sim::Backend`], which makes `gcl_net` a
//! first-class execution target for **every** registered scenario family:
//! `registry.run_on(&spec, &NetBackend::new())` runs the same spec the
//! simulator runs — same protocol constructors, same adversary
//! population, same audits — over real OS threads and wall clocks.
//!
//! The spec maps onto the thread engine as follows:
//!
//! * **δ / jitter** — [`ScenarioSpec::link_delays`] becomes the injected
//!   per-link wall latency matrix (microseconds are interpreted as real
//!   microseconds): fixed δ on every link, or seeded per-link uniform
//!   draws, clamped to the timing model's honest bound.
//! * **Skew** — [`ScenarioSpec::skew_schedule`] becomes per-party thread
//!   start offsets; a late party's messages buffer in its channel until
//!   its local clock starts, as in the simulator.
//! * **Adversary mix** — the registry hands this backend the same
//!   pre-wrapped slots the simulator would spawn: silent slots run a mute
//!   thread, crashing slots run the honest code until their seeded budget
//!   expires and then ignore every event (a mid-run-killed party).
//! * **Deadline** — [`NetBackend::deadline`] bounds each run; honest
//!   termination exits early, so good-case runs return in milliseconds.
//!
//! The returned [`Outcome`] supports the same agreement/validity audits as
//! a simulated one. Interpret its *latency* numbers as wall-clock
//! measurements (thread spawn, scheduler jitter and channel overhead are
//! all in there) — for the paper's exact δ/Δ tables, trust the simulator;
//! for evidence the protocols survive real concurrency and real clocks,
//! trust this backend.

use crate::engine::{engine_plan, outcome_from_raw};
use crate::runtime::run_slots;
use gcl_sim::{
    Backend, ErasedMsg, ErasedSlot, MsgCodec, Outcome, ScenarioError, ScenarioRegistry,
    ScenarioSpec,
};
use std::time::Duration;

/// Runs registry scenarios over threads and wall clocks. See the
/// [module docs](self) for the spec-to-environment mapping.
///
/// # Examples
///
/// ```
/// use gcl_net::NetBackend;
/// use gcl_types::Duration;
///
/// let reg = gcl_core::registry();
/// // Millisecond-scale bounds: wall-clock noise is tiny next to them.
/// let spec = reg
///     .spec("brb2")
///     .unwrap()
///     .with_bounds(Duration::from_millis(2), Duration::from_millis(20));
/// let outcome = NetBackend::new().run(&reg, &spec).unwrap();
/// assert!(outcome.agreement_holds());
/// assert_eq!(outcome.committed_value(), Some(spec.input));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct NetBackend {
    deadline: Duration,
}

impl NetBackend {
    /// A backend with the default 2-second per-run deadline.
    pub const fn new() -> Self {
        NetBackend {
            deadline: Duration::from_secs(2),
        }
    }

    /// Replaces the per-run wall-clock deadline. Honest termination exits
    /// earlier; the deadline only caps runs where some honest party never
    /// terminates.
    #[must_use]
    pub const fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Convenience: validate and run one spec through a registry on this
    /// backend (`registry.run_on(spec, self)`).
    ///
    /// # Errors
    ///
    /// Everything `ScenarioRegistry::validate` rejects.
    pub fn run(
        &self,
        registry: &ScenarioRegistry,
        spec: &ScenarioSpec,
    ) -> Result<Outcome, ScenarioError> {
        registry.run_on(spec, self)
    }
}

impl Default for NetBackend {
    fn default() -> Self {
        NetBackend::new()
    }
}

impl Backend for NetBackend {
    fn name(&self) -> &'static str {
        "net"
    }

    fn execute(&self, spec: &ScenarioSpec, slots: Vec<ErasedSlot>, _codec: MsgCodec) -> Outcome {
        // In-memory transport: erased payloads move between threads
        // directly (`Arc`-shared multicasts), so the codec goes unused —
        // `SocketBackend` is the transport that exercises it.
        let raw = run_slots::<ErasedMsg>(
            engine_plan(spec, self.deadline),
            slots.into_iter().map(|s| (s.strategy, s.honest)).collect(),
        );
        outcome_from_raw(spec, raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_sim::{AdversaryMix, SkewChoice};
    use gcl_types::{Duration as SimDuration, PartyId};

    /// Wall-safe bounds: δ' = 2 ms links, Δ' = 20 ms timers — protocol
    /// timeouts (≥ 4Δ) then dwarf thread-scheduling noise.
    fn brb_spec() -> ScenarioSpec {
        gcl_core::registry()
            .spec("brb2")
            .unwrap()
            .with_bounds(SimDuration::from_millis(2), SimDuration::from_millis(20))
    }

    #[test]
    fn brb_family_runs_on_net_backend() {
        let reg = gcl_core::registry();
        let spec = brb_spec();
        let o = NetBackend::new().run(&reg, &spec).unwrap();
        assert!(o.agreement_holds());
        assert!(o.all_honest_committed());
        assert!(o.all_honest_terminated());
        assert_eq!(o.committed_value(), Some(spec.input));
        assert!(o.messages_sent() > 0);
        assert!(o.events_processed() > 0);
        // Wall latency is noisy but must at least cover the two injected
        // 2 ms hops of the good case.
        let lat = o.good_case_latency().expect("all committed");
        assert!(lat >= SimDuration::from_millis(4), "latency {lat}");
        // Round accounting carries over: causal tags put the commit in
        // round 2, exactly the simulator's (and the paper's) good case.
        assert_eq!(o.good_case_rounds(), Some(2));
    }

    #[test]
    fn net_backend_honors_adversary_and_skew() {
        let reg = gcl_core::registry();
        let spec = brb_spec()
            .with_adversary(AdversaryMix::TrailingSilent { count: 1 })
            .with_skew(SkewChoice::OddHalfDelta);
        let o = NetBackend::new().run(&reg, &spec).unwrap();
        assert!(!o.is_honest(PartyId::new(3)), "trailing slot is Byzantine");
        assert!(
            o.commit_of(PartyId::new(3)).is_none(),
            "silent never commits"
        );
        assert!(o.agreement_holds());
        assert!(o.all_honest_committed(), "f = 1 silence is tolerated");
        assert_eq!(o.committed_value(), Some(spec.input));
    }

    #[test]
    fn inadmissible_spec_rejected_before_spawning_threads() {
        let reg = gcl_core::registry();
        let spec = brb_spec().with_shape(4, 2);
        assert!(NetBackend::new().run(&reg, &spec).is_err());
    }

    #[test]
    fn deadline_caps_a_run_that_cannot_terminate() {
        // Crash the broadcaster before it proposes: honest parties wait
        // forever, so the run must return at the deadline with no commits —
        // and not hang.
        let reg = gcl_core::registry();
        let spec = brb_spec().with_adversary(AdversaryMix::CrashAt {
            party: PartyId::new(0),
            handled: 0,
        });
        let started = std::time::Instant::now();
        let o = NetBackend::new()
            .deadline(Duration::from_millis(200))
            .run(&reg, &spec)
            .unwrap();
        assert!(o.commits().is_empty());
        assert!(!o.all_honest_terminated());
        let wall = started.elapsed();
        assert!(
            wall >= Duration::from_millis(200),
            "waited out the deadline"
        );
        assert!(wall < Duration::from_secs(5), "but not much longer");
    }
}
