//! The engine pieces every wall-clock backend shares.
//!
//! Three backends execute scenario specs on real clocks — the
//! thread-per-party runtime (`runtime.rs`), the blocking socket runtime
//! (`socket.rs`) and the readiness-loop runtime (`async_backend.rs`) —
//! and they agree on everything except how parties are scheduled:
//!
//! * the **spec mapping** ([`engine_plan`]): δ/jitter → the injected
//!   per-link latency matrix, skew → per-party start offsets, plus the
//!   caller's deadline;
//! * the **party state machine** ([`PartyCore`] + [`NetCtx`]): one
//!   handler invocation per event, effects buffered and drained by the
//!   transport, commits recorded with wall/local clocks, round tags and
//!   step counts exactly as the simulator defines them;
//! * the **dispatcher discipline** ([`Scheduled`], [`DeliveryHeap`]): a
//!   min-heap ordered by `(due, seq)` with a dispatcher-global sequence
//!   stamp, so delivery ties pop in arrival order on every backend;
//! * the **frame protocol** (`KIND_*`, [`write_frame`], [`read_frame`],
//!   [`FrameBuffer`], [`parse_submission`], [`parse_delivery`],
//!   [`delivery_frame`]): `u32`-length-prefixed frames carrying encoded
//!   submissions (party → dispatcher) and deliveries (dispatcher →
//!   party), with a `STOP` frame closing the run — the shutdown
//!   choreography that keeps every join finite;
//! * the **audit fold** ([`outcome_from_raw`]): first-commit-per-party
//!   into the simulator-comparable [`Outcome`].
//!
//! Frame reads are robust to short reads at *arbitrary* byte boundaries
//! and to `EINTR`/`WouldBlock`: [`read_frame`] fills both the length
//! prefix and the body incrementally (the pre-refactor socket reader
//! handled partial reads only on the prefix), and [`FrameBuffer`] is the
//! nonblocking analogue — it accumulates whatever bytes the socket has
//! and yields only complete frames. Both are fuzzed one byte at a time in
//! the tests below.

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use gcl_sim::{
    CommitRecord, Context, Outcome, OutcomeParts, ScenarioSpec, SchedCounters, Strategy,
};
use gcl_types::{
    Config, Decode, Duration as SimDuration, Encode, GlobalTime, LocalTime, PartyId, Value,
};
use parking_lot::Mutex;
use std::collections::{BinaryHeap, VecDeque};
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[cfg(not(unix))]
pub(crate) use std::net::TcpStream as Stream;
#[cfg(unix)]
pub(crate) use std::os::unix::net::UnixStream as Stream;

/// A connected bidirectional stream pair: Unix-domain socketpair where
/// available, TCP loopback elsewhere.
#[cfg(unix)]
pub(crate) fn stream_pair() -> io::Result<(Stream, Stream)> {
    Stream::pair()
}

/// TCP-localhost fallback for platforms without Unix sockets.
#[cfg(not(unix))]
pub(crate) fn stream_pair() -> io::Result<(Stream, Stream)> {
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let a = Stream::connect(addr)?;
    let (b, _) = listener.accept()?;
    a.set_nodelay(true)?;
    b.set_nodelay(true)?;
    Ok((a, b))
}

/// How long an engine thread sleeps when it has nothing scheduled — pure
/// wake-up granularity; a submission, a readiness event or a stop
/// interrupts it immediately.
pub(crate) const IDLE_POLL: Duration = Duration::from_millis(50);

/// Everything the engines need to know about the environment of one run.
pub(crate) struct EnginePlan {
    pub config: Config,
    /// Injected wall latency per `(from, to)` link, `from * n + to`
    /// indexing, zero on the diagonal.
    pub links: Vec<Duration>,
    /// Per-party protocol start offsets (wall-clock skew schedule).
    pub starts: Vec<Duration>,
    /// Hard wall-clock budget; honest termination exits earlier.
    pub deadline: Duration,
    /// Test knob: cap every socket read at this many bytes, forcing frame
    /// reassembly through arbitrary short-read boundaries. `None` (the
    /// default everywhere outside tests) reads full buffers.
    pub read_chunk: Option<usize>,
}

/// One commit as recorded by an engine (all commits, not just firsts).
pub(crate) struct RawCommit {
    pub party: PartyId,
    pub value: Value,
    /// Since engine start.
    pub elapsed: Duration,
    /// Since the party's own start.
    pub local: Duration,
    /// Causal round tag at the commit (1 + max delivered round).
    pub round: u32,
    /// The party's handled-event count at the commit.
    pub step: u64,
    /// Whether this is the party's first commit.
    pub first: bool,
}

/// Raw observations of one engine run.
pub(crate) struct RawRun {
    pub commits: Vec<RawCommit>,
    pub terminated: Vec<bool>,
    pub honest: Vec<bool>,
    /// Handler invocations summed over all parties.
    pub events_handled: u64,
    /// Point-to-point messages scheduled (multicast counts `n`).
    pub messages_sent: u64,
    /// High-water mark of the dispatcher heap.
    pub peak_queue: usize,
    /// Wall time from engine start to shutdown.
    pub elapsed: Duration,
    /// Worker-pool counters (readiness-loop backend only).
    pub sched: Option<SchedCounters>,
}

/// Converts a simulated duration (integer µs) to a wall-clock one.
pub(crate) fn wall(d: SimDuration) -> Duration {
    Duration::from_micros(d.as_micros())
}

/// Truncates a wall-clock duration back to integer microseconds.
pub(crate) fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// The spec-to-environment mapping shared by every wall-clock backend in
/// this crate: δ/jitter → the injected link matrix, skew → party start
/// offsets, plus the caller's deadline.
pub(crate) fn engine_plan(spec: &ScenarioSpec, deadline: Duration) -> EnginePlan {
    let config = spec.config().expect("validated by the registry");
    let n = config.n();
    let skew = spec.skew_schedule();
    EnginePlan {
        config,
        links: spec.link_delays().into_iter().map(wall).collect(),
        starts: (0..n)
            .map(|i| {
                wall(
                    skew.start_of(PartyId::new(i as u32))
                        .since(GlobalTime::ZERO),
                )
            })
            .collect(),
        deadline,
        read_chunk: None,
    }
}

/// Folds a raw engine run into the simulator-comparable [`Outcome`]: each
/// party's first commit (the simulator's contract), plus the engine-level
/// counters. The raw multi-commit stream stays an engine observation.
pub(crate) fn outcome_from_raw(spec: &ScenarioSpec, raw: RawRun) -> Outcome {
    let config = spec.config().expect("validated by the registry");
    let skew = spec.skew_schedule();
    let commits = raw
        .commits
        .iter()
        .filter(|c| c.first)
        .map(|c| CommitRecord {
            party: c.party,
            value: c.value,
            global: GlobalTime::from_micros(micros(c.elapsed)),
            local: LocalTime::from_micros(micros(c.local)),
            round: c.round,
            step: c.step,
        })
        .collect();
    Outcome::from(OutcomeParts {
        config,
        honest: raw.honest,
        commits,
        terminated: raw.terminated,
        broadcaster: spec.broadcaster,
        broadcaster_start: skew.start_of(spec.broadcaster),
        end_time: GlobalTime::from_micros(micros(raw.elapsed)),
        events_processed: raw.events_handled,
        messages_sent: raw.messages_sent,
        peak_queue_depth: raw.peak_queue,
        // Simulator-only metrics: the wall runtimes deliver over real
        // transports, so there is no enqueue-drop path or retained queue.
        drops_at_enqueue: 0,
        queue_bytes: 0,
        sched: raw.sched,
    })
}

/// The party-side [`Context`] of the wall-clock runtimes. Effects buffer
/// here and the transport drains them after the handler returns;
/// `multicast` stays one entry (not `n` sends) so the drain can share the
/// payload — as an `Arc` on the in-memory transport, as one encoded byte
/// buffer on the socket transports.
pub(crate) struct NetCtx<M> {
    pub(crate) me: PartyId,
    pub(crate) config: Config,
    pub(crate) now: LocalTime,
    pub(crate) sends: Vec<(PartyId, M)>,
    pub(crate) mcasts: Vec<(Option<PartyId>, M)>,
    pub(crate) timers: Vec<(SimDuration, u64)>,
    pub(crate) commit_values: Vec<Value>,
    pub(crate) terminate: bool,
}

impl<M> NetCtx<M> {
    /// An empty effect buffer for one handler invocation at local `now`.
    pub(crate) fn new(me: PartyId, config: Config, now: LocalTime) -> Self {
        NetCtx {
            me,
            config,
            now,
            sends: Vec::new(),
            mcasts: Vec::new(),
            timers: Vec::new(),
            commit_values: Vec::new(),
            terminate: false,
        }
    }
}

impl<M> Context<M> for NetCtx<M> {
    fn me(&self) -> PartyId {
        self.me
    }
    fn config(&self) -> Config {
        self.config
    }
    fn now(&self) -> LocalTime {
        self.now
    }
    fn send(&mut self, to: PartyId, msg: M) {
        self.sends.push((to, msg));
    }
    fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.timers.push((delay, tag));
    }
    fn commit(&mut self, value: Value) {
        self.commit_values.push(value);
    }
    fn terminate(&mut self) {
        self.terminate = true;
    }
    fn multicast(&mut self, msg: M)
    where
        M: Clone,
    {
        self.mcasts.push((None, msg));
    }
    fn multicast_except(&mut self, msg: M, skip: PartyId)
    where
        M: Clone,
    {
        self.mcasts.push((Some(skip), msg));
    }
}

/// One event a party handles.
pub(crate) enum Step<M> {
    /// The protocol's `start` hook (fires once, after the skew offset).
    Start,
    /// A delivered message.
    Msg { from: PartyId, round: u32, msg: M },
    /// An expired timer.
    Timer(u64),
}

/// The per-party bookkeeping every engine repeats around a handler call:
/// the handled-event count, the causal round tag, and first-commit
/// detection. [`PartyCore::handle`] runs one event through the strategy
/// and records any commits; the caller drains the returned [`NetCtx`]'s
/// sends/multicasts/timers in its transport-specific way and reads
/// `terminate` off it.
pub(crate) struct PartyCore {
    pub me: PartyId,
    pub config: Config,
    /// Engine start (shared by all parties; commit `elapsed` is measured
    /// from here).
    epoch: Instant,
    /// This party's own clock zero (set when its skew offset elapses).
    pub local_start: Instant,
    max_round: Option<u32>,
    pub handled: u64,
    committed: bool,
}

impl PartyCore {
    pub(crate) fn new(me: PartyId, config: Config, epoch: Instant, local_start: Instant) -> Self {
        PartyCore {
            me,
            config,
            epoch,
            local_start,
            max_round: None,
            handled: 0,
            committed: false,
        }
    }

    /// The causal round tag outgoing messages carry (1 + max delivered
    /// round).
    pub(crate) fn out_round(&self) -> u32 {
        self.max_round.map_or(0, |r| r + 1)
    }

    /// Runs one event through `strategy`, records commits into the shared
    /// log, and returns the effect buffer for the caller to drain.
    pub(crate) fn handle<M: 'static>(
        &mut self,
        strategy: &mut dyn Strategy<M>,
        step: Step<M>,
        commits: &Mutex<Vec<RawCommit>>,
    ) -> NetCtx<M> {
        self.handled += 1;
        let mut ctx = NetCtx::new(
            self.me,
            self.config,
            LocalTime::from_micros(self.local_start.elapsed().as_micros() as u64),
        );
        match step {
            Step::Start => strategy.start(&mut ctx),
            Step::Msg { from, round, msg } => {
                self.max_round = Some(self.max_round.map_or(round, |r| r.max(round)));
                strategy.on_message(from, msg, &mut ctx);
            }
            Step::Timer(tag) => strategy.on_timer(tag, &mut ctx),
        }
        if !ctx.commit_values.is_empty() {
            let out_round = self.out_round();
            let elapsed = self.epoch.elapsed();
            let local = self.local_start.elapsed();
            let mut log = commits.lock();
            for value in ctx.commit_values.drain(..) {
                log.push(RawCommit {
                    party: self.me,
                    value,
                    elapsed,
                    local,
                    round: out_round,
                    step: self.handled,
                    first: !self.committed,
                });
                self.committed = true;
            }
        }
        ctx
    }
}

/// A heap entry: min-order on `(due, seq)` with `seq` dispatcher-global,
/// so ties at one instant pop in arrival order (stable replay under zero
/// injected latency). `D` is the backend's delivery payload.
pub(crate) struct Scheduled<D> {
    pub due: Instant,
    pub seq: u64,
    pub to: PartyId,
    pub what: D,
}

impl<D> PartialEq for Scheduled<D> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<D> Eq for Scheduled<D> {}
impl<D> Ord for Scheduled<D> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}
impl<D> PartialOrd for Scheduled<D> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Blocks until every honest party has reported termination on `done_rx`
/// or `deadline_at` passes — the early-exit protocol shared by all wall
/// engines (the deadline is only the fallback horizon for runs where some
/// honest party never terminates).
pub(crate) fn await_honest_done(done_rx: &Receiver<()>, honest: &[bool], deadline_at: Instant) {
    let mut remaining = honest.iter().filter(|h| **h).count();
    while remaining > 0 {
        let left = deadline_at.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        match done_rx.recv_timeout(left) {
            Ok(()) => remaining -= 1,
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

// ---------------------------------------------------------------------
// The frame protocol (shared by the socket and readiness-loop backends).
// ---------------------------------------------------------------------

// Frame kind tags. Submissions travel party → dispatcher, deliveries
// dispatcher → party; `STOP` only ever travels dispatcher → party.
pub(crate) const KIND_UNICAST: u8 = 1;
pub(crate) const KIND_MULTICAST: u8 = 2;
pub(crate) const KIND_TIMER: u8 = 3;
pub(crate) const KIND_STOP: u8 = 4;

/// Writes one `u32`-length-prefixed frame.
pub(crate) fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len()).expect("frames stay far below 4 GiB");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)
}

/// Retryable read interruptions: a signal mid-syscall, or a spurious
/// wakeup / read timeout on a blocking socket. (On *non*blocking sockets
/// use [`FrameBuffer`], which treats `WouldBlock` as "no more bytes yet"
/// instead of retrying.)
fn retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
    )
}

/// Reads one length-prefixed frame (blocking). `Ok(None)` on clean EOF at
/// a frame boundary. Both the 4-byte prefix and the body are filled
/// incrementally, so short reads and `EINTR`/`WouldBlock` at *any* byte
/// boundary — mid-prefix or mid-body — never corrupt the stream.
pub(crate) fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if retryable(&e) => {}
            Err(e) => return Err(e),
        }
    }
    let want = u32::from_le_bytes(len) as usize;
    let mut body = vec![0u8; want];
    let mut filled = 0;
    while filled < want {
        match r.read(&mut body[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if retryable(&e) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(body))
}

/// A reader adapter that caps every `read` at `chunk` bytes — the
/// [`EnginePlan::read_chunk`] test knob, forcing frame reassembly through
/// arbitrary short-read boundaries. `chunk = usize::MAX` is a no-op wrap.
pub(crate) struct Throttle<R> {
    pub inner: R,
    pub chunk: usize,
}

impl<R: Read> Read for Throttle<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let cap = buf.len().min(self.chunk.max(1));
        self.inner.read(&mut buf[..cap])
    }
}

/// Incremental frame reassembly for nonblocking sockets: [`fill`] drains
/// whatever bytes the socket has right now, [`next_frame`] yields only
/// complete frames — a partial length prefix or body simply waits for the
/// next readiness event.
///
/// [`fill`]: FrameBuffer::fill
/// [`next_frame`]: FrameBuffer::next_frame
pub(crate) struct FrameBuffer {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameBuffer {
    pub(crate) fn new() -> Self {
        FrameBuffer {
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Reads from the (nonblocking) stream until it would block or hits
    /// EOF, appending to the reassembly buffer. `Ok(true)` means EOF.
    /// `chunk` caps the per-syscall read size (test knob; `None` = full
    /// buffers).
    pub(crate) fn fill(&mut self, r: &mut impl Read, chunk: Option<usize>) -> io::Result<bool> {
        let mut tmp = [0u8; 16 * 1024];
        let cap = chunk.unwrap_or(tmp.len()).clamp(1, tmp.len());
        loop {
            match r.read(&mut tmp[..cap]) {
                Ok(0) => return Ok(true),
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
    }

    /// Appends raw bytes (tests drive reassembly without a socket).
    #[cfg(test)]
    pub(crate) fn push_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if the buffer holds one.
    pub(crate) fn next_frame(&mut self) -> Option<Vec<u8>> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            self.compact();
            return None;
        }
        let len = u32::from_le_bytes(
            self.buf[self.pos..self.pos + 4]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        if avail < 4 + len {
            self.compact();
            return None;
        }
        let frame = self.buf[self.pos + 4..self.pos + 4 + len].to_vec();
        self.pos += 4 + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Some(frame)
    }

    /// Drops the consumed prefix so the buffer doesn't grow with the
    /// stream's lifetime.
    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// A nonblocking outbound frame queue: frames append fully, the socket
/// drains as much as it accepts per [`flush`], and the high-water mark is
/// the backpressure observability metric.
///
/// [`flush`]: OutBuf::flush
pub(crate) struct OutBuf {
    buf: VecDeque<u8>,
    /// High-water mark of pending bytes over the queue's lifetime.
    pub peak: usize,
}

impl OutBuf {
    pub(crate) fn new() -> Self {
        OutBuf {
            buf: VecDeque::new(),
            peak: 0,
        }
    }

    /// Appends one length-prefixed frame (never blocks; backpressure is
    /// the *caller's* job, watching [`OutBuf::len`]).
    pub(crate) fn push_frame(&mut self, body: &[u8]) {
        let len = u32::try_from(body.len()).expect("frames stay far below 4 GiB");
        self.buf.extend(len.to_le_bytes());
        self.buf.extend(body.iter().copied());
        self.peak = self.peak.max(self.buf.len());
    }

    /// Writes as much as the socket accepts right now. `Ok(true)` means
    /// the queue drained empty; `Ok(false)` means the socket would block
    /// and write-readiness should be watched.
    pub(crate) fn flush(&mut self, w: &mut impl Write) -> io::Result<bool> {
        while !self.buf.is_empty() {
            let (front, _) = self.buf.as_slices();
            match w.write(front) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.buf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pending (unflushed) bytes.
    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }
}

/// A submission as parsed off a party's socket by the dispatcher.
pub(crate) struct Submission {
    pub from: PartyId,
    pub kind: SubmissionKind,
}

pub(crate) enum SubmissionKind {
    Unicast {
        to: PartyId,
        round: u32,
        bytes: Vec<u8>,
    },
    Multicast {
        skip: Option<PartyId>,
        round: u32,
        bytes: Arc<Vec<u8>>,
    },
    Timer {
        delay: Duration,
        tag: u64,
    },
    /// Engine-internal: the run is over, flush stop frames and exit.
    Shutdown,
}

/// What the dispatcher delivers to a party.
pub(crate) enum Delivery {
    Msg {
        from: PartyId,
        round: u32,
        bytes: Arc<Vec<u8>>,
    },
    Timer(u64),
}

/// Renders a delivery as a frame body.
pub(crate) fn delivery_frame(delivery: &Delivery) -> Vec<u8> {
    let mut body = Vec::new();
    match delivery {
        Delivery::Msg { from, round, bytes } => {
            body.push(KIND_UNICAST);
            from.encode(&mut body);
            round.encode(&mut body);
            body.extend_from_slice(bytes);
        }
        Delivery::Timer(tag) => {
            body.push(KIND_TIMER);
            tag.encode(&mut body);
        }
    }
    body
}

/// Parses a submission frame body. Total: a malformed frame (unknown kind,
/// truncated header) yields `None`, and the dispatcher treats the sending
/// party as crashed — one garbled peer must never abort the whole run.
pub(crate) fn parse_submission(from: PartyId, body: Vec<u8>) -> Option<Submission> {
    let mut r = &body[..];
    let kind = match u8::decode(&mut r).ok()? {
        KIND_UNICAST => {
            let to = PartyId::decode(&mut r).ok()?;
            let round = u32::decode(&mut r).ok()?;
            SubmissionKind::Unicast {
                to,
                round,
                bytes: r.to_vec(),
            }
        }
        KIND_MULTICAST => {
            let skip = Option::<PartyId>::decode(&mut r).ok()?;
            let round = u32::decode(&mut r).ok()?;
            SubmissionKind::Multicast {
                skip,
                round,
                bytes: Arc::new(r.to_vec()),
            }
        }
        KIND_TIMER => {
            let delay = u64::decode(&mut r).ok()?;
            let tag = u64::decode(&mut r).ok()?;
            SubmissionKind::Timer {
                delay: Duration::from_micros(delay),
                tag,
            }
        }
        _ => return None,
    };
    Some(Submission { from, kind })
}

/// A delivery frame as seen by the party side, payload still encoded.
pub(crate) enum DeliveryFrame<'a> {
    Msg {
        from: PartyId,
        round: u32,
        payload: &'a [u8],
    },
    Timer(u64),
    Stop,
}

/// Parses a delivery frame body. `None` means the frame header itself is
/// corrupt — the stream is garbled beyond one frame and the reader should
/// stop consuming it. (An undecodable *payload* is the codec's verdict,
/// taken per frame by the caller.)
pub(crate) fn parse_delivery(body: &[u8]) -> Option<DeliveryFrame<'_>> {
    let mut r = body;
    match u8::decode(&mut r).ok()? {
        KIND_UNICAST => {
            let from = PartyId::decode(&mut r).ok()?;
            let round = u32::decode(&mut r).ok()?;
            Some(DeliveryFrame::Msg {
                from,
                round,
                payload: r,
            })
        }
        KIND_TIMER => u64::decode(&mut r).ok().map(DeliveryFrame::Timer),
        KIND_STOP => Some(DeliveryFrame::Stop),
        _ => None,
    }
}

/// What [`DeliveryHeap::route`] decided about one submission.
pub(crate) enum Routed {
    /// Scheduled (or fanned out) into the heap.
    Queued,
    /// The engine's shutdown marker: flush stop frames and exit.
    Shutdown,
}

/// The dispatcher's clock-ordered delivery heap plus the routing rules
/// every socket-transport backend shares: unicasts cross their link,
/// multicasts fan out sharing one encoded payload, timers return to their
/// owner, and client-addressed frames (the reserved out-of-band id) cross
/// the sender's worst link — the external client is at least as far away
/// as the farthest party.
pub(crate) struct DeliveryHeap {
    heap: BinaryHeap<Scheduled<Delivery>>,
    next_seq: u64,
    n: usize,
    /// Point-to-point messages scheduled (multicast counts `n`).
    pub messages: u64,
    /// High-water mark of the heap.
    pub peak: usize,
}

impl DeliveryHeap {
    pub(crate) fn new(n: usize) -> Self {
        DeliveryHeap {
            heap: BinaryHeap::new(),
            next_seq: 0,
            n,
            messages: 0,
            peak: 0,
        }
    }

    fn push(&mut self, due: Instant, to: PartyId, what: Delivery) {
        self.heap.push(Scheduled {
            due,
            seq: self.next_seq,
            to,
            what,
        });
        self.next_seq += 1;
    }

    /// Stamps and schedules one submission. `links` is the full n×n link
    /// matrix of the plan.
    pub(crate) fn route(&mut self, sub: Submission, links: &[Duration], now: Instant) -> Routed {
        let n = self.n;
        let row = sub.from.as_usize() * n;
        match sub.kind {
            SubmissionKind::Shutdown => return Routed::Shutdown,
            SubmissionKind::Unicast { to, round, bytes } => {
                self.messages += 1;
                let delay = if to.as_usize() >= n {
                    links[row..row + n]
                        .iter()
                        .copied()
                        .max()
                        .unwrap_or_default()
                } else {
                    links[row + to.as_usize()]
                };
                self.push(
                    now + delay,
                    to,
                    Delivery::Msg {
                        from: sub.from,
                        round,
                        bytes: Arc::new(bytes),
                    },
                );
            }
            SubmissionKind::Multicast { skip, round, bytes } => {
                // One encoded payload, n scheduled frames — the byte-
                // transport analogue of the `Arc` fan-out. Every recipient
                // still decodes its own copy.
                for t in 0..n as u32 {
                    let to = PartyId::new(t);
                    if Some(to) == skip {
                        continue;
                    }
                    self.messages += 1;
                    self.push(
                        now + links[row + to.as_usize()],
                        to,
                        Delivery::Msg {
                            from: sub.from,
                            round,
                            bytes: Arc::clone(&bytes),
                        },
                    );
                }
            }
            SubmissionKind::Timer { delay, tag } => {
                self.push(now + delay, sub.from, Delivery::Timer(tag));
            }
        }
        self.peak = self.peak.max(self.heap.len());
        Routed::Queued
    }

    /// How long the dispatcher may sleep before the next entry falls due
    /// (the idle-poll granularity when the heap is empty).
    pub(crate) fn next_timeout(&self) -> Duration {
        self.heap
            .peek()
            .map(|s| s.due.saturating_duration_since(Instant::now()))
            .unwrap_or(IDLE_POLL)
    }

    /// Pops the next entry if it has fallen due.
    pub(crate) fn pop_due(&mut self) -> Option<Scheduled<Delivery>> {
        if self.heap.peek().is_some_and(|s| s.due <= Instant::now()) {
            return Some(self.heap.pop().expect("peeked"));
        }
        None
    }
}

/// A client's way into a socket-transport run: injects encoded messages
/// that are scheduled and delivered exactly like party traffic (self-link
/// delay, real bytes across the recipient's socket) — and receives the
/// frames replicas address to the reserved [`PartyId::CLIENT`] (serving
/// acknowledgements and back-pressure).
///
/// Handed to the driver closure of
/// [`SocketBackend::execute_with_client`](crate::SocketBackend::execute_with_client)
/// or
/// [`AsyncBackend::execute_with_client`](crate::AsyncBackend::execute_with_client);
/// cloneable so a driver may fan out over threads (receives are
/// serialized behind a mutex — one clone draining the delivery channel is
/// the intended shape).
#[derive(Clone)]
pub struct ClientHandle {
    sub_tx: Sender<Submission>,
    delivery_rx: Arc<Mutex<Receiver<Vec<u8>>>>,
    /// Readiness-loop runs wake their scheduler through this pipe; the
    /// blocking socket runtime wakes through the channel itself.
    waker: Option<Arc<Stream>>,
}

impl ClientHandle {
    pub(crate) fn new(
        sub_tx: Sender<Submission>,
        delivery_rx: Receiver<Vec<u8>>,
        waker: Option<Arc<Stream>>,
    ) -> Self {
        ClientHandle {
            sub_tx,
            delivery_rx: Arc::new(Mutex::new(delivery_rx)),
            waker,
        }
    }

    /// Injects one encoded message for `to` (delivered as if `to` had sent
    /// it to itself, i.e. after the zero self-link delay). Returns `false`
    /// once the run has shut down — drivers should stop submitting then.
    pub fn submit(&self, to: PartyId, bytes: Vec<u8>) -> bool {
        let ok = self
            .sub_tx
            .send(Submission {
                from: to,
                kind: SubmissionKind::Unicast {
                    to,
                    round: 0,
                    bytes,
                },
            })
            .is_ok();
        if ok {
            if let Some(w) = &self.waker {
                // One byte on the wake pipe; a full pipe means the
                // scheduler is already awake, so WouldBlock is success.
                let _ = (&**w).write(&[1]);
            }
        }
        ok
    }

    /// Receives the next client-addressed delivery (the encoded bytes of a
    /// message a replica sent to [`PartyId::CLIENT`]), waiting up to
    /// `timeout`. `None` on timeout or once the run has shut down.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Vec<u8>> {
        self.delivery_rx.lock().recv_timeout(timeout).ok()
    }

    /// Non-blocking receive of the next client-addressed delivery.
    pub fn try_recv(&self) -> Option<Vec<u8>> {
        self.delivery_rx.lock().try_recv().ok()
    }
}

impl std::fmt::Debug for ClientHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ClientHandle")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_length_prefix() {
        let (mut a, mut b) = stream_pair().expect("pair");
        write_frame(&mut a, &[9, 8, 7]).unwrap();
        write_frame(&mut a, &[]).unwrap();
        assert_eq!(read_frame(&mut b).unwrap(), Some(vec![9, 8, 7]));
        assert_eq!(read_frame(&mut b).unwrap(), Some(vec![]));
        drop(a);
        assert_eq!(read_frame(&mut b).unwrap(), None, "clean EOF");
    }

    /// A reader that yields one byte per call and injects a retryable
    /// error before every byte — the worst legal stream.
    struct OneByteInterrupted {
        data: Vec<u8>,
        pos: usize,
        interrupt_next: bool,
    }

    impl Read for OneByteInterrupted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                // Alternate the two retryable kinds.
                let kind = if self.pos.is_multiple_of(2) {
                    io::ErrorKind::Interrupted
                } else {
                    io::ErrorKind::WouldBlock
                };
                return Err(kind.into());
            }
            self.interrupt_next = true;
            if self.pos == self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn read_frame_survives_one_byte_reads_and_interruptions() {
        // Three frames back to back, delivered one byte at a time with an
        // EINTR/WouldBlock before every single byte — mid-prefix and
        // mid-body alike. The pre-fix reader `read_exact`ed the body, so a
        // WouldBlock mid-body was a hard error.
        let mut wire = Vec::new();
        for body in [&b"hello"[..], &b""[..], &[1u8, 2, 3, 4, 5, 6, 7][..]] {
            write_frame(&mut wire, body).unwrap();
        }
        let mut r = OneByteInterrupted {
            data: wire,
            pos: 0,
            interrupt_next: true,
        };
        assert_eq!(read_frame(&mut r).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Vec::new()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(vec![1, 2, 3, 4, 5, 6, 7]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF at boundary");
    }

    #[test]
    fn read_frame_rejects_eof_mid_frame() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"truncated").unwrap();
        for cut in 1..wire.len() {
            let mut r = io::Cursor::new(wire[..cut].to_vec());
            let err = read_frame(&mut r).expect_err("EOF mid-frame at {cut}");
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        }
    }

    #[test]
    fn throttle_caps_read_size() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[42; 100]).unwrap();
        let mut t = Throttle {
            inner: io::Cursor::new(wire),
            chunk: 1,
        };
        assert_eq!(read_frame(&mut t).unwrap(), Some(vec![42; 100]));
    }

    #[test]
    fn frame_buffer_reassembles_one_byte_at_a_time() {
        // The fuzz-style 1-byte delivery test: feed a multi-frame stream
        // byte by byte; complete frames must pop out exactly at their
        // boundaries, identical to a bulk parse.
        let frames: Vec<Vec<u8>> = vec![b"abc".to_vec(), Vec::new(), vec![0xFF; 300]];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for (i, byte) in wire.iter().enumerate() {
            fb.push_bytes(&[*byte]);
            while let Some(frame) = fb.next_frame() {
                got.push((i, frame));
            }
        }
        let bodies: Vec<Vec<u8>> = got.iter().map(|(_, f)| f.clone()).collect();
        assert_eq!(bodies, frames);
        // Each frame completes exactly when its last byte lands.
        let mut boundary = 0;
        for ((at, _), f) in got.iter().zip(&frames) {
            boundary += 4 + f.len();
            assert_eq!(*at, boundary - 1, "frame complete at its final byte");
        }
    }

    #[test]
    fn frame_buffer_reassembles_under_lcg_chunking() {
        // Same stream, sliced at LCG-random boundaries (including zero-
        // length slices): reassembly must be byte-exact regardless of how
        // the kernel fragments reads.
        let frames: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; i as usize * 7]).collect();
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut state: u64 = 0x9e3779b97f4a7c15;
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        let mut pos = 0;
        while pos < wire.len() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let take = ((state >> 33) as usize % 23).min(wire.len() - pos);
            fb.push_bytes(&wire[pos..pos + take]);
            pos += take;
            while let Some(frame) = fb.next_frame() {
                got.push(frame);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn frame_buffer_fills_from_nonblocking_socket() {
        let (mut a, mut b) = stream_pair().expect("pair");
        b.set_nonblocking(true).expect("nonblocking");
        write_frame(&mut a, b"over the wire").unwrap();
        let mut fb = FrameBuffer::new();
        // Data may take an instant to appear in the receive buffer.
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let eof = fb.fill(&mut b, Some(1)).unwrap();
            assert!(!eof, "peer still open");
            if let Some(frame) = fb.next_frame() {
                assert_eq!(frame, b"over the wire");
                break;
            }
            assert!(Instant::now() < deadline, "frame never arrived");
        }
        drop(a);
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            if fb.fill(&mut b, None).unwrap() {
                break; // EOF observed
            }
            assert!(Instant::now() < deadline, "EOF never arrived");
        }
    }

    #[test]
    fn out_buf_flushes_across_would_block() {
        /// A writer that accepts at most 3 bytes per call and every other
        /// call would block.
        struct Dribble {
            sink: Vec<u8>,
            block_next: bool,
        }
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.block_next {
                    self.block_next = false;
                    return Err(io::ErrorKind::WouldBlock.into());
                }
                self.block_next = true;
                let take = buf.len().min(3);
                self.sink.extend_from_slice(&buf[..take]);
                Ok(take)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut out = OutBuf::new();
        out.push_frame(b"first frame");
        out.push_frame(&[7; 40]);
        let expect_len = (4 + 11) + (4 + 40);
        assert_eq!(out.len(), expect_len);
        assert_eq!(out.peak, expect_len);

        let mut w = Dribble {
            sink: Vec::new(),
            block_next: false,
        };
        let mut rounds = 0;
        while !out.flush(&mut w).unwrap() {
            rounds += 1;
            assert!(rounds < 1000, "flush must make progress");
        }
        assert!(out.is_empty());
        // The dribbled bytes reassemble into the original frames.
        let mut fb = FrameBuffer::new();
        fb.push_bytes(&w.sink);
        assert_eq!(fb.next_frame().unwrap(), b"first frame");
        assert_eq!(fb.next_frame().unwrap(), vec![7; 40]);
        assert!(fb.next_frame().is_none());
    }

    #[test]
    fn delivery_frames_round_trip_through_parse() {
        let msg = Delivery::Msg {
            from: PartyId::new(3),
            round: 9,
            bytes: Arc::new(vec![1, 2, 3]),
        };
        match parse_delivery(&delivery_frame(&msg)) {
            Some(DeliveryFrame::Msg {
                from,
                round,
                payload,
            }) => {
                assert_eq!(from, PartyId::new(3));
                assert_eq!(round, 9);
                assert_eq!(payload, &[1, 2, 3]);
            }
            _ => panic!("unicast frame must parse as Msg"),
        }
        match parse_delivery(&delivery_frame(&Delivery::Timer(77))) {
            Some(DeliveryFrame::Timer(77)) => {}
            _ => panic!("timer frame must parse as Timer(77)"),
        }
        assert!(matches!(
            parse_delivery(&[KIND_STOP]),
            Some(DeliveryFrame::Stop)
        ));
        assert!(parse_delivery(&[]).is_none(), "empty frame is corrupt");
        assert!(parse_delivery(&[99]).is_none(), "unknown kind is corrupt");
        assert!(
            parse_delivery(&[KIND_TIMER, 1]).is_none(),
            "truncated timer tag is corrupt"
        );
    }

    #[test]
    fn dispatcher_seq_breaks_ties_in_arrival_order() {
        // Equal `due` instants must pop in stamp order — the
        // dispatcher-global sequence, not per-party counters.
        let due = Instant::now();
        let mut heap: BinaryHeap<Scheduled<u64>> = BinaryHeap::new();
        for seq in [3u64, 0, 2, 1] {
            heap.push(Scheduled {
                due,
                seq,
                to: PartyId::new(0),
                what: seq,
            });
        }
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|s| s.seq)).collect();
        assert_eq!(order, vec![0, 1, 2, 3], "FIFO at equal due");

        // An earlier due instant still wins regardless of stamp order.
        let mut heap: BinaryHeap<Scheduled<u64>> = BinaryHeap::new();
        heap.push(Scheduled {
            due: due + Duration::from_millis(5),
            seq: 0,
            to: PartyId::new(0),
            what: 0,
        });
        heap.push(Scheduled {
            due,
            seq: 1,
            to: PartyId::new(0),
            what: 1,
        });
        assert_eq!(heap.pop().unwrap().seq, 1, "time beats stamp order");
    }

    #[test]
    fn delivery_heap_routes_client_frames_across_worst_link() {
        // 2-party plan with asymmetric links: party 0's worst link is 9 ms.
        let links = vec![
            Duration::ZERO,
            Duration::from_millis(9),
            Duration::from_millis(4),
            Duration::ZERO,
        ];
        let mut dh = DeliveryHeap::new(2);
        let now = Instant::now();
        let sub = Submission {
            from: PartyId::new(0),
            kind: SubmissionKind::Unicast {
                to: PartyId::CLIENT,
                round: 0,
                bytes: vec![1],
            },
        };
        assert!(matches!(dh.route(sub, &links, now), Routed::Queued));
        let entry = dh.heap.pop().expect("scheduled");
        assert_eq!(entry.to, PartyId::CLIENT);
        assert_eq!(entry.due, now + Duration::from_millis(9), "worst link");
        assert_eq!(dh.messages, 1);
    }

    #[test]
    fn delivery_heap_multicast_shares_one_payload() {
        let links = vec![Duration::ZERO; 9];
        let mut dh = DeliveryHeap::new(3);
        let sub = Submission {
            from: PartyId::new(1),
            kind: SubmissionKind::Multicast {
                skip: Some(PartyId::new(1)),
                round: 2,
                bytes: Arc::new(vec![5, 6]),
            },
        };
        assert!(matches!(
            dh.route(sub, &links, Instant::now()),
            Routed::Queued
        ));
        assert_eq!(dh.messages, 2, "skip excluded");
        assert_eq!(dh.peak, 2);
        let mut recipients = Vec::new();
        while let Some(s) = dh.heap.pop() {
            match s.what {
                Delivery::Msg { bytes, .. } => {
                    assert_eq!(*bytes, vec![5, 6]);
                    recipients.push(s.to);
                }
                Delivery::Timer(_) => panic!("not a timer"),
            }
        }
        recipients.sort();
        assert_eq!(recipients, vec![PartyId::new(0), PartyId::new(2)]);
    }
}
