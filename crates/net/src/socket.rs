//! The socket execution backend: every delivered message is real bytes on
//! a real socket.
//!
//! [`SocketBackend`] is the third `gcl_sim::Backend` (after the inline
//! simulator and the in-memory thread engine). Each party runs as its own
//! event loop behind a socket pair — Unix-domain stream sockets where the
//! platform has them, TCP over localhost elsewhere — and *every* protocol
//! message crosses two sockets as length-prefixed frames:
//!
//! ```text
//! sender party ──encode──▶ [socket] ──▶ dispatcher heap ──▶ [socket] ──decode──▶ receiver party
//! ```
//!
//! There is deliberately **no** shared-pointer fast path on this
//! transport: a multicast encodes its payload once, but every recipient
//! decodes its own copy from the delivered frame, so a run on this backend
//! is end-to-end proof that the family's message type survives
//! serialization (`gcl_types::wire`). The in-memory `NetBackend` keeps the
//! `Arc` fast path; this backend keeps the bytes honest.
//!
//! Everything else — the frame protocol, the `(due, seq)` delivery heap
//! and its routing rules, the party bookkeeping, the honest-done early
//! exit — is the shared engine discipline in [`crate::engine`], reused
//! verbatim by the readiness-loop backend
//! ([`AsyncBackend`](crate::AsyncBackend)). What is local here is the
//! threading shape: blocking sockets, one reader + one strategy thread
//! per party, one reader per party on the dispatcher side.

use crate::engine::{
    await_honest_done, delivery_frame, engine_plan, outcome_from_raw, parse_delivery, read_frame,
    stream_pair, write_frame, ClientHandle, Delivery, DeliveryFrame, DeliveryHeap, EnginePlan,
    PartyCore, RawCommit, RawRun, Routed, Step, Stream, Submission, SubmissionKind, Throttle,
    IDLE_POLL, KIND_MULTICAST, KIND_STOP, KIND_TIMER, KIND_UNICAST,
};
use crossbeam::channel::{unbounded, RecvTimeoutError};
use gcl_sim::{
    Backend, ErasedMsg, ErasedSlot, MsgCodec, Outcome, ScenarioError, ScenarioRegistry,
    ScenarioSpec, Strategy,
};
use gcl_types::{Encode, PartyId};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// What a party's socket reader hands its event loop.
enum PartyEvent {
    Msg {
        from: PartyId,
        round: u32,
        msg: ErasedMsg,
    },
    Timer(u64),
    Stop,
}

/// Spawns one socket-backed event loop per slot plus a dispatcher, runs
/// until every honest slot terminates or the deadline passes, and collects
/// the observations. The transport contract: every delivered protocol
/// message was encoded by its sender and decoded by its receiver — no
/// in-memory payload sharing across the party boundary.
///
/// `driver`, when present, runs on its own thread with a [`ClientHandle`]
/// and models external clients (open-loop load, fault injection).
pub(crate) fn run_socket_slots(
    plan: EnginePlan,
    slots: Vec<(Box<dyn Strategy<ErasedMsg>>, bool)>,
    codec: MsgCodec,
    driver: Option<Box<dyn FnOnce(ClientHandle) + Send>>,
) -> RawRun {
    let n = plan.config.n();
    assert_eq!(slots.len(), n, "one slot per party");
    assert_eq!(plan.links.len(), n * n, "full link matrix");
    assert_eq!(plan.starts.len(), n, "one start offset per party");
    let honest: Vec<bool> = slots.iter().map(|(_, h)| *h).collect();
    let epoch = Instant::now();
    let commits: Arc<Mutex<Vec<RawCommit>>> = Arc::new(Mutex::new(Vec::new()));
    // Test knob: cap every socket read at this many bytes (frame
    // reassembly through arbitrary short-read boundaries).
    let chunk = plan.read_chunk.unwrap_or(usize::MAX);

    // One socket pair per party: the party end lives with the party's
    // threads, the dispatcher end with the dispatcher's.
    let mut party_ends = Vec::with_capacity(n);
    let mut dispatcher_ends = Vec::with_capacity(n);
    for _ in 0..n {
        let (p, d) = stream_pair().expect("socket pair");
        party_ends.push(p);
        dispatcher_ends.push(d);
    }

    let (sub_tx, sub_rx) = unbounded::<Submission>();
    let (done_tx, done_rx) = unbounded::<()>();
    // Held by the engine thread to order the shutdown below.
    let shutdown_tx = sub_tx.clone();

    // The client driver, if any, gets its own submission handle; its
    // injected frames are scheduled exactly like party submissions, and
    // frames the replicas address to the reserved client id come back to
    // it through the delivery channel. Without a driver the receiver is
    // dropped here and the scheduler's client deliveries fail harmlessly.
    let (client_tx, client_rx) = unbounded::<Vec<u8>>();
    let driver_handle = driver.map(|driver| {
        let handle = ClientHandle::new(sub_tx.clone(), client_rx, None);
        thread::spawn(move || driver(handle))
    });

    // Dispatcher readers: one blocking-read loop per party socket, parsing
    // submission frames and stamping them into the scheduler's channel.
    let mut dispatcher_writers = Vec::with_capacity(n);
    let mut reader_handles = Vec::with_capacity(n);
    for (i, end) in dispatcher_ends.into_iter().enumerate() {
        let read_end = end.try_clone().expect("clone dispatcher end");
        dispatcher_writers.push(end);
        let sub_tx = sub_tx.clone();
        let from = PartyId::new(i as u32);
        reader_handles.push(thread::spawn(move || {
            let mut read_end = Throttle {
                inner: read_end,
                chunk,
            };
            while let Ok(Some(body)) = read_frame(&mut read_end) {
                // A malformed frame means the party behind this socket is
                // garbled: stop reading it (crashed, from the dispatcher's
                // point of view) and keep the rest of the run live.
                let Some(sub) = crate::engine::parse_submission(from, body) else {
                    break;
                };
                if sub_tx.send(sub).is_err() {
                    break;
                }
            }
        }));
    }
    drop(sub_tx);

    // The scheduler: owns the delivery heap and all dispatcher-side write
    // halves. Writes delivery frames when entries fall due; a Shutdown
    // submission flushes stop frames to every party and exits.
    let links = plan.links.clone();
    let scheduler = thread::spawn(move || {
        let mut dh = DeliveryHeap::new(n);
        loop {
            match sub_rx.recv_timeout(dh.next_timeout()) {
                Ok(sub) => match dh.route(sub, &links, Instant::now()) {
                    Routed::Shutdown => {
                        for w in &mut dispatcher_writers {
                            let _ = write_frame(w, &[KIND_STOP]);
                        }
                        return (dh.messages, dh.peak);
                    }
                    Routed::Queued => {}
                },
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return (dh.messages, dh.peak),
            }
            while let Some(s) = dh.pop_due() {
                if s.to.as_usize() >= n {
                    // Client delivery: hand the payload bytes to the
                    // external client channel (dropped when no driver is
                    // attached — a send failure is harmless).
                    if let Delivery::Msg { bytes, .. } = &s.what {
                        let _ = client_tx.send(bytes.as_ref().clone());
                    }
                    continue;
                }
                let frame = delivery_frame(&s.what);
                // A write failure means the recipient is gone (terminated
                // and closed its end) — past the run's horizon, drop it.
                let _ = write_frame(&mut dispatcher_writers[s.to.as_usize()], &frame);
            }
        }
    });

    // Party event loops: a blocking socket reader feeding an in-process
    // channel (so mid-frame reads never race the poll timeout), and the
    // strategy loop draining it.
    let mut party_handles = Vec::with_capacity(n);
    let mut party_reader_handles = Vec::with_capacity(n);
    for (i, ((mut strategy, is_honest), end)) in slots.into_iter().zip(party_ends).enumerate() {
        let me = PartyId::new(i as u32);
        let config = plan.config;
        let start_offset = plan.starts[i];
        let done = done_tx.clone();
        let commits = Arc::clone(&commits);

        let (ev_tx, ev_rx) = unbounded::<PartyEvent>();
        let read_end = end.try_clone().expect("clone party end");
        party_reader_handles.push(thread::spawn(move || {
            let mut read_end = Throttle {
                inner: read_end,
                chunk,
            };
            while let Ok(Some(body)) = read_frame(&mut read_end) {
                let event = match parse_delivery(&body) {
                    Some(DeliveryFrame::Msg {
                        from,
                        round,
                        payload,
                    }) => {
                        // The decode half of the wire round trip: the frame
                        // payload is exactly one encoded message. A payload
                        // that does not decode came from a garbled peer —
                        // drop the frame (sender treated as crashed) and
                        // keep this party's run live.
                        match codec.decode(payload) {
                            Ok(msg) => PartyEvent::Msg { from, round, msg },
                            Err(_) => continue,
                        }
                    }
                    Some(DeliveryFrame::Timer(tag)) => PartyEvent::Timer(tag),
                    Some(DeliveryFrame::Stop) => {
                        let _ = ev_tx.send(PartyEvent::Stop);
                        return;
                    }
                    // Corrupt delivery header: this stream is garbled
                    // beyond one frame; stop reading it.
                    None => return,
                };
                if ev_tx.send(event).is_err() {
                    // Event loop exited (terminated); keep draining so the
                    // scheduler's writes never block on a full buffer.
                    continue;
                }
            }
        }));

        let mut write_end = end;
        party_handles.push(thread::spawn(move || {
            // Wall-clock skew: frames arriving before the start buffer in
            // the socket; the local clock begins after the offset.
            if !start_offset.is_zero() {
                thread::sleep(start_offset);
            }
            let mut core = PartyCore::new(me, config, epoch, Instant::now());
            // One handler invocation: bookkeeping and commit recording in
            // the shared core, effect drain over this transport. The encode
            // half of the wire round trip: every outbound payload leaves
            // this thread as bytes, never as a pointer.
            let run = |strategy: &mut Box<dyn Strategy<ErasedMsg>>,
                       core: &mut PartyCore,
                       step: Step<ErasedMsg>,
                       write_end: &mut Stream|
             -> bool {
                let ctx = core.handle(strategy.as_mut(), step, &commits);
                let out_round = core.out_round();
                for (to, msg) in ctx.sends {
                    let mut body = Vec::new();
                    body.push(KIND_UNICAST);
                    to.encode(&mut body);
                    out_round.encode(&mut body);
                    msg.encode(&mut body);
                    let _ = write_frame(write_end, &body);
                }
                for (skip, msg) in ctx.mcasts {
                    let mut body = Vec::new();
                    body.push(KIND_MULTICAST);
                    skip.encode(&mut body);
                    out_round.encode(&mut body);
                    msg.encode(&mut body);
                    let _ = write_frame(write_end, &body);
                }
                for (delay, tag) in ctx.timers {
                    let mut body = Vec::new();
                    body.push(KIND_TIMER);
                    delay.as_micros().encode(&mut body);
                    tag.encode(&mut body);
                    let _ = write_frame(write_end, &body);
                }
                ctx.terminate
            };

            let finish = |handled: u64| {
                if is_honest {
                    let _ = done.send(());
                }
                (true, handled)
            };
            if run(&mut strategy, &mut core, Step::Start, &mut write_end) {
                return finish(core.handled);
            }
            loop {
                match ev_rx.recv_timeout(IDLE_POLL) {
                    Ok(PartyEvent::Stop) => return (false, core.handled),
                    Ok(PartyEvent::Msg { from, round, msg }) => {
                        let step = Step::Msg { from, round, msg };
                        if run(&mut strategy, &mut core, step, &mut write_end) {
                            return finish(core.handled);
                        }
                    }
                    Ok(PartyEvent::Timer(tag)) => {
                        if run(&mut strategy, &mut core, Step::Timer(tag), &mut write_end) {
                            return finish(core.handled);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return (false, core.handled),
                }
            }
        }));
    }
    drop(done_tx);

    // Early-exit protocol, exactly as the thread engine: every honest
    // party reports termination; the deadline only caps runs where some
    // honest party never terminates.
    await_honest_done(&done_rx, &honest, epoch + plan.deadline);

    // Shutdown: the scheduler flushes stop frames; party readers forward
    // Stop and close their ends; party loops exit; dispatcher readers then
    // see EOF. This ordering is what keeps every join below finite. (A
    // failed send means the scheduler already exited on its own, in which
    // case the joins finish regardless.)
    let _ = shutdown_tx.send(Submission {
        from: PartyId::new(0),
        kind: SubmissionKind::Shutdown,
    });
    drop(shutdown_tx);

    let mut terminated = vec![false; n];
    let mut events_handled: u64 = 0;
    for (i, h) in party_handles.into_iter().enumerate() {
        let (t, handled) = match h.join() {
            Ok(result) => result,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        terminated[i] = t;
        events_handled += handled;
    }
    let (messages_sent, peak_queue) = scheduler.join().unwrap_or((0, 0));
    // Readers parse totally: a malformed frame makes them stop reading the
    // garbled stream (sender treated as crashed) rather than panic, so a
    // reader panic here can only be an engine bug (e.g. a poisoned
    // channel) — propagate it just like a party-loop panic. All readers
    // have exited by now (Stop frames then EOF), so these joins are
    // finite even on the panic path (a panicked party reader drops its
    // socket clone, the party loop exits on channel disconnect, and the
    // scheduler's writes to that party fail with EPIPE, which it ignores).
    for h in reader_handles.into_iter().chain(party_reader_handles) {
        if let Err(panic) = h.join() {
            std::panic::resume_unwind(panic);
        }
    }
    // The driver sees its submits fail once the scheduler is gone, so this
    // join is finite for any driver that stops on a failed submit.
    if let Some(h) = driver_handle {
        if let Err(panic) = h.join() {
            std::panic::resume_unwind(panic);
        }
    }

    let mut collected = std::mem::take(&mut *commits.lock());
    collected.sort_by_key(|c| c.elapsed);
    RawRun {
        commits: collected,
        terminated,
        honest,
        events_handled,
        messages_sent,
        peak_queue,
        elapsed: epoch.elapsed(),
        sched: None,
    }
}

/// Runs registry scenarios over socket-connected party event loops. See
/// the [module docs](self) for the transport contract; the spec mapping
/// (δ/jitter, skew, adversary mix, audits) is identical to
/// [`NetBackend`](crate::NetBackend), so the two wall-clock backends
/// differ *only* in whether messages cross the party boundary as bytes or
/// as shared pointers.
///
/// # Examples
///
/// ```
/// use gcl_net::SocketBackend;
/// use gcl_types::Duration;
///
/// let reg = gcl_core::registry();
/// let spec = reg
///     .spec("brb2")
///     .unwrap()
///     .with_bounds(Duration::from_millis(2), Duration::from_millis(20));
/// let outcome = SocketBackend::new().run(&reg, &spec).unwrap();
/// assert!(outcome.agreement_holds());
/// assert_eq!(outcome.committed_value(), Some(spec.input));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SocketBackend {
    deadline: Duration,
}

impl SocketBackend {
    /// A backend with the default 2-second per-run deadline.
    pub const fn new() -> Self {
        SocketBackend {
            deadline: Duration::from_secs(2),
        }
    }

    /// Replaces the per-run wall-clock deadline. Honest termination exits
    /// earlier; the deadline only caps runs where some honest party never
    /// terminates.
    #[must_use]
    pub const fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Convenience: validate and run one spec through a registry on this
    /// backend (`registry.run_on(spec, self)`).
    ///
    /// # Errors
    ///
    /// Everything `ScenarioRegistry::validate` rejects.
    pub fn run(
        &self,
        registry: &ScenarioRegistry,
        spec: &ScenarioSpec,
    ) -> Result<Outcome, ScenarioError> {
        registry.run_on(spec, self)
    }
}

impl Default for SocketBackend {
    fn default() -> Self {
        SocketBackend::new()
    }
}

impl Backend for SocketBackend {
    fn name(&self) -> &'static str {
        "socket"
    }

    fn execute(&self, spec: &ScenarioSpec, slots: Vec<ErasedSlot>, codec: MsgCodec) -> Outcome {
        let raw = run_socket_slots(
            engine_plan(spec, self.deadline),
            slots.into_iter().map(|s| (s.strategy, s.honest)).collect(),
            codec,
            None,
        );
        outcome_from_raw(spec, raw)
    }
}

impl SocketBackend {
    /// Like [`Backend::execute`], but with an external client: `driver`
    /// runs on its own thread for the duration of the run, injecting
    /// encoded messages through its [`ClientHandle`] — the open-loop
    /// serving path (e.g. a load generator feeding an SMR leader's
    /// mempool). The driver must stop once [`ClientHandle::submit`]
    /// returns `false`.
    pub fn execute_with_client(
        &self,
        spec: &ScenarioSpec,
        slots: Vec<ErasedSlot>,
        codec: MsgCodec,
        driver: impl FnOnce(ClientHandle) + Send + 'static,
    ) -> Outcome {
        let raw = run_socket_slots(
            engine_plan(spec, self.deadline),
            slots.into_iter().map(|s| (s.strategy, s.honest)).collect(),
            codec,
            Some(Box::new(driver)),
        );
        outcome_from_raw(spec, raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::parse_submission;
    use gcl_sim::{AdversaryMix, DelayChoice, SkewChoice};
    use gcl_types::Duration as SimDuration;

    /// Wall-safe bounds, as in the net backend's suite: δ' = 2 ms links,
    /// Δ' = 20 ms timers.
    fn brb_spec() -> ScenarioSpec {
        gcl_core::registry()
            .spec("brb2")
            .unwrap()
            .with_bounds(SimDuration::from_millis(2), SimDuration::from_millis(20))
    }

    #[test]
    fn brb_family_runs_over_sockets() {
        let reg = gcl_core::registry();
        let spec = brb_spec();
        let o = SocketBackend::new().run(&reg, &spec).unwrap();
        assert!(o.agreement_holds());
        assert!(o.all_honest_committed());
        assert!(o.all_honest_terminated());
        assert_eq!(o.committed_value(), Some(spec.input));
        assert!(o.messages_sent() > 0);
        // Wall latency must at least cover the two injected 2 ms hops.
        let lat = o.good_case_latency().expect("all committed");
        assert!(lat >= SimDuration::from_millis(4), "latency {lat}");
        assert_eq!(o.good_case_rounds(), Some(2), "causal tags survive bytes");
    }

    #[test]
    fn socket_backend_honors_adversary_skew_and_jitter() {
        let reg = gcl_core::registry();
        let spec = brb_spec()
            .with_adversary(AdversaryMix::TrailingSilent { count: 1 })
            .with_skew(SkewChoice::OddHalfDelta)
            .with_delays(DelayChoice::Uniform {
                lo: SimDuration::from_millis(1),
                hi: SimDuration::from_millis(2),
            })
            .with_seed(5);
        let o = SocketBackend::new().run(&reg, &spec).unwrap();
        assert!(!o.is_honest(PartyId::new(3)), "trailing slot is Byzantine");
        assert!(
            o.commit_of(PartyId::new(3)).is_none(),
            "silent never commits"
        );
        assert!(o.agreement_holds());
        assert!(o.all_honest_committed(), "f = 1 silence is tolerated");
        assert_eq!(o.committed_value(), Some(spec.input));
    }

    #[test]
    fn socket_run_exits_early() {
        // The early-termination discipline carries over: a good-case run
        // against a 10 s deadline returns in far less than a second.
        let reg = gcl_core::registry();
        let started = Instant::now();
        let o = SocketBackend::new()
            .deadline(Duration::from_secs(10))
            .run(&reg, &brb_spec())
            .unwrap();
        assert!(o.all_honest_committed());
        let wall = started.elapsed();
        assert!(
            wall < Duration::from_millis(500),
            "early exit regressed: run took {wall:?} against a 10 s deadline"
        );
    }

    #[test]
    fn deadline_caps_a_run_that_cannot_terminate() {
        // Crash the broadcaster before it proposes: honest parties wait
        // forever, so the run must return at the deadline with no commits —
        // and every engine thread must still wind down (no join hangs).
        let reg = gcl_core::registry();
        let spec = brb_spec().with_adversary(AdversaryMix::CrashAt {
            party: PartyId::new(0),
            handled: 0,
        });
        let started = Instant::now();
        let o = SocketBackend::new()
            .deadline(Duration::from_millis(200))
            .run(&reg, &spec)
            .unwrap();
        assert!(o.commits().is_empty());
        assert!(!o.all_honest_terminated());
        let wall = started.elapsed();
        assert!(
            wall >= Duration::from_millis(200),
            "waited out the deadline"
        );
        assert!(wall < Duration::from_secs(5), "but not much longer");
    }

    #[test]
    fn one_byte_socket_reads_commit_identically() {
        // The short-read fuzz gate, end to end: run the same broadcast
        // twice, once with every socket read capped at ONE byte (so every
        // frame — prefix and body alike — reassembles across dozens of
        // partial reads) and once normally. Commits, termination and causal
        // rounds must be identical. The pre-fix reader `read_exact`ed frame
        // bodies, which cannot survive arbitrary-boundary partial reads.
        use gcl_core::asynchrony::{Brb2Msg, TwoRoundBrb};
        use gcl_crypto::Keychain;
        let spec = brb_spec();
        let cfg = spec.config().expect("valid shape");
        let run_with = |chunk: Option<usize>| {
            let chain = Keychain::generate(spec.n, spec.seed);
            let slots = spec.erased_slots(|p| {
                TwoRoundBrb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    spec.broadcaster,
                    spec.input_for(p),
                )
            });
            let mut plan = engine_plan(&spec, Duration::from_secs(10));
            plan.read_chunk = chunk;
            let raw = run_socket_slots(
                plan,
                slots.into_iter().map(|s| (s.strategy, s.honest)).collect(),
                MsgCodec::of::<Brb2Msg>(),
                None,
            );
            outcome_from_raw(&spec, raw)
        };
        let chunked = run_with(Some(1));
        let normal = run_with(None);
        assert!(chunked.agreement_holds());
        assert!(
            chunked.all_honest_committed(),
            "1-byte reads must not stall"
        );
        assert!(chunked.all_honest_terminated());
        assert_eq!(chunked.committed_value(), normal.committed_value());
        assert_eq!(chunked.committed_value(), Some(spec.input));
        assert_eq!(
            chunked.good_case_rounds(),
            normal.good_case_rounds(),
            "causal structure survives byte-at-a-time delivery"
        );
    }

    #[test]
    fn malformed_submission_frames_are_rejected_not_fatal() {
        // Fuzz-style sweep over the submission parser: truncations of every
        // valid frame shape, unknown kinds, and LCG-generated garbage all
        // come back as `None` (sender treated as crashed) — the pre-fix
        // parser panicked the dispatcher reader on every one of these.
        let from = PartyId::new(1);
        let mut unicast = vec![KIND_UNICAST];
        PartyId::new(2).encode(&mut unicast);
        7u32.encode(&mut unicast);
        unicast.extend_from_slice(b"payload");
        let mut multicast = vec![KIND_MULTICAST];
        Option::<PartyId>::None.encode(&mut multicast);
        7u32.encode(&mut multicast);
        let mut timer = vec![KIND_TIMER];
        5u64.encode(&mut timer);
        9u64.encode(&mut timer);
        // Pair each frame with its header length: everything after the
        // header is payload bytes, and a truncated *payload* is the codec's
        // problem, not the framing's. Only the unicast frame above carries
        // payload bytes (7 of them).
        for (valid, header_len) in [
            (&unicast, unicast.len() - 7),
            (&multicast, multicast.len()),
            (&timer, timer.len()),
        ] {
            assert!(parse_submission(from, valid.clone()).is_some());
            // Every strict prefix of the header is truncated garbage.
            for cut in 0..header_len {
                assert!(
                    parse_submission(from, valid[..cut].to_vec()).is_none(),
                    "truncation at {cut} must be rejected"
                );
            }
        }
        assert!(parse_submission(from, vec![]).is_none(), "empty frame");
        for kind in [0u8, KIND_STOP, 5, 99, 255] {
            assert!(
                parse_submission(from, vec![kind, 0, 0, 0, 0]).is_none(),
                "kind {kind} is not a submission"
            );
        }
        let mut state: u64 = 0x6b6f;
        for len in 0..64usize {
            let body: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) as u8
                })
                .collect();
            let _ = parse_submission(from, body); // must not panic
        }
    }

    #[test]
    fn garbled_client_frames_leave_the_run_live() {
        // End-to-end: a client floods every party with undecodable frames
        // mid-run. Party readers must drop them (garbled peer = crashed
        // peer) and the broadcast must still commit on every honest party.
        use gcl_core::asynchrony::{Brb2Msg, TwoRoundBrb};
        use gcl_crypto::Keychain;
        let spec = brb_spec();
        let cfg = spec.config().expect("valid shape");
        let chain = Keychain::generate(spec.n, spec.seed);
        let slots = spec.erased_slots(|p| {
            TwoRoundBrb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                spec.broadcaster,
                spec.input_for(p),
            )
        });
        let codec = MsgCodec::of::<Brb2Msg>();
        let n = spec.n;
        let o = SocketBackend::new().execute_with_client(
            &spec,
            slots,
            codec,
            move |client: ClientHandle| {
                for round in 0..20u64 {
                    for p in 0..n as u32 {
                        // Tag 255 is no BrbMsg variant; the rest is noise.
                        let garbage = vec![255, round as u8, 0xde, 0xad, 0xbe, 0xef];
                        if !client.submit(PartyId::new(p), garbage) {
                            return;
                        }
                    }
                    thread::sleep(Duration::from_millis(1));
                }
            },
        );
        assert!(o.agreement_holds());
        assert!(
            o.all_honest_committed(),
            "garbage frames must not stop the protocol"
        );
        assert_eq!(o.committed_value(), Some(spec.input));
    }
}
