//! The socket execution backend: every delivered message is real bytes on
//! a real socket.
//!
//! [`SocketBackend`] is the third `gcl_sim::Backend` (after the inline
//! simulator and the in-memory thread engine). Each party runs as its own
//! event loop behind a socket pair — Unix-domain stream sockets where the
//! platform has them, TCP over localhost elsewhere — and *every* protocol
//! message crosses two sockets as length-prefixed frames:
//!
//! ```text
//! sender party ──encode──▶ [socket] ──▶ dispatcher heap ──▶ [socket] ──decode──▶ receiver party
//! ```
//!
//! There is deliberately **no** shared-pointer fast path on this
//! transport: a multicast encodes its payload once, but every recipient
//! decodes its own copy from the delivered frame, so a run on this backend
//! is end-to-end proof that the family's message type survives
//! serialization (`gcl_types::wire`). The in-memory `NetBackend` keeps the
//! `Arc` fast path; this backend keeps the bytes honest.
//!
//! Everything else reuses the PR-4 engine discipline:
//!
//! * the dispatcher owns a min-heap ordered by `(due, seq)` with a
//!   dispatcher-global sequence stamp, so delivery ties pop in arrival
//!   order exactly as in the thread engine;
//! * honest parties signal an in-process completion channel when they
//!   terminate, so the wall-clock budget is a deadline, not a sentence;
//! * the spec maps identically: δ/jitter → the injected per-link latency
//!   matrix, skew → event-loop start offsets, adversary mix → pre-wrapped
//!   silent/crashing slots — all 15 registered families run here with
//!   zero registration edits.
//!
//! Frames are framed `u32`-length-prefixed and parsed with the same
//! `gcl_types::wire` primitives the payloads use. Timers also route
//! through the dispatcher (as control frames) so timer/message ties keep
//! one global order.

use crate::backend::{engine_plan, outcome_from_raw};
use crate::runtime::{EnginePlan, NetCtx, RawCommit, RawRun, IDLE_POLL};
use crossbeam::channel::{unbounded, RecvTimeoutError};
use gcl_sim::{
    Backend, ErasedMsg, ErasedSlot, MsgCodec, Outcome, ScenarioError, ScenarioRegistry,
    ScenarioSpec, Strategy,
};
use gcl_types::{Decode, Encode, LocalTime, PartyId};
use parking_lot::Mutex;
use std::collections::BinaryHeap;
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

#[cfg(not(unix))]
use std::net::TcpStream as Stream;
#[cfg(unix)]
use std::os::unix::net::UnixStream as Stream;

/// A connected bidirectional stream pair: Unix-domain socketpair where
/// available, TCP loopback elsewhere.
#[cfg(unix)]
fn stream_pair() -> io::Result<(Stream, Stream)> {
    Stream::pair()
}

/// TCP-localhost fallback for platforms without Unix sockets.
#[cfg(not(unix))]
fn stream_pair() -> io::Result<(Stream, Stream)> {
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let a = Stream::connect(addr)?;
    let (b, _) = listener.accept()?;
    a.set_nodelay(true)?;
    b.set_nodelay(true)?;
    Ok((a, b))
}

// Frame kind tags. Submissions travel party → dispatcher, deliveries
// dispatcher → party; `STOP` only ever travels dispatcher → party.
const KIND_UNICAST: u8 = 1;
const KIND_MULTICAST: u8 = 2;
const KIND_TIMER: u8 = 3;
const KIND_STOP: u8 = 4;

/// Writes one `u32`-length-prefixed frame.
fn write_frame(stream: &mut Stream, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len()).expect("frames stay far below 4 GiB");
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(body)
}

/// Reads one length-prefixed frame (blocking). `Ok(None)` on clean EOF at
/// a frame boundary.
fn read_frame(stream: &mut Stream) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match stream.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

/// What a party's socket reader hands its event loop.
enum PartyEvent {
    Msg {
        from: PartyId,
        round: u32,
        msg: ErasedMsg,
    },
    Timer(u64),
    Stop,
}

/// A submission as parsed off a party's socket by its dispatcher reader.
struct Submission {
    from: PartyId,
    kind: SubmissionKind,
}

enum SubmissionKind {
    Unicast {
        to: PartyId,
        round: u32,
        bytes: Vec<u8>,
    },
    Multicast {
        skip: Option<PartyId>,
        round: u32,
        bytes: Arc<Vec<u8>>,
    },
    Timer {
        delay: Duration,
        tag: u64,
    },
    /// Engine-internal: the run is over, flush stop frames and exit.
    Shutdown,
}

/// One scheduled delivery in the dispatcher heap. Min-order on
/// `(due, seq)` with `seq` dispatcher-global — the same stable-tie rule
/// the thread engine uses.
struct Scheduled {
    due: Instant,
    seq: u64,
    to: PartyId,
    delivery: Delivery,
}

enum Delivery {
    Msg {
        from: PartyId,
        round: u32,
        bytes: Arc<Vec<u8>>,
    },
    Timer(u64),
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Renders a delivery as a frame body.
fn delivery_frame(delivery: &Delivery) -> Vec<u8> {
    let mut body = Vec::new();
    match delivery {
        Delivery::Msg { from, round, bytes } => {
            body.push(KIND_UNICAST);
            from.encode(&mut body);
            round.encode(&mut body);
            body.extend_from_slice(bytes);
        }
        Delivery::Timer(tag) => {
            body.push(KIND_TIMER);
            tag.encode(&mut body);
        }
    }
    body
}

/// Parses a submission frame body. Total: a malformed frame (unknown kind,
/// truncated header) yields `None`, and the dispatcher treats the sending
/// party as crashed — one garbled peer must never abort the whole run.
fn parse_submission(from: PartyId, body: Vec<u8>) -> Option<Submission> {
    let mut r = &body[..];
    let kind = match u8::decode(&mut r).ok()? {
        KIND_UNICAST => {
            let to = PartyId::decode(&mut r).ok()?;
            let round = u32::decode(&mut r).ok()?;
            SubmissionKind::Unicast {
                to,
                round,
                bytes: r.to_vec(),
            }
        }
        KIND_MULTICAST => {
            let skip = Option::<PartyId>::decode(&mut r).ok()?;
            let round = u32::decode(&mut r).ok()?;
            SubmissionKind::Multicast {
                skip,
                round,
                bytes: Arc::new(r.to_vec()),
            }
        }
        KIND_TIMER => {
            let delay = u64::decode(&mut r).ok()?;
            let tag = u64::decode(&mut r).ok()?;
            SubmissionKind::Timer {
                delay: Duration::from_micros(delay),
                tag,
            }
        }
        _ => return None,
    };
    Some(Submission { from, kind })
}

/// A client's way into a socket run: injects encoded messages that are
/// scheduled and delivered exactly like party traffic (self-link delay,
/// real bytes across the recipient's socket) — and receives the frames
/// replicas address to the reserved [`PartyId::CLIENT`] (serving
/// acknowledgements and back-pressure).
///
/// Handed to the driver closure of
/// [`SocketBackend::execute_with_client`]; cloneable so a driver may fan
/// out over threads (receives are serialized behind a mutex — one clone
/// draining the delivery channel is the intended shape).
#[derive(Clone)]
pub struct ClientHandle {
    sub_tx: crossbeam::channel::Sender<Submission>,
    delivery_rx: Arc<Mutex<crossbeam::channel::Receiver<Vec<u8>>>>,
}

impl ClientHandle {
    /// Injects one encoded message for `to` (delivered as if `to` had sent
    /// it to itself, i.e. after the zero self-link delay). Returns `false`
    /// once the run has shut down — drivers should stop submitting then.
    pub fn submit(&self, to: PartyId, bytes: Vec<u8>) -> bool {
        self.sub_tx
            .send(Submission {
                from: to,
                kind: SubmissionKind::Unicast {
                    to,
                    round: 0,
                    bytes,
                },
            })
            .is_ok()
    }

    /// Receives the next client-addressed delivery (the encoded bytes of a
    /// message a replica sent to [`PartyId::CLIENT`]), waiting up to
    /// `timeout`. `None` on timeout or once the run has shut down.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Vec<u8>> {
        self.delivery_rx.lock().recv_timeout(timeout).ok()
    }

    /// Non-blocking receive of the next client-addressed delivery.
    pub fn try_recv(&self) -> Option<Vec<u8>> {
        self.delivery_rx.lock().try_recv().ok()
    }
}

impl std::fmt::Debug for ClientHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ClientHandle")
    }
}

/// Spawns one socket-backed event loop per slot plus a dispatcher, runs
/// until every honest slot terminates or the deadline passes, and collects
/// the observations. The transport contract: every delivered protocol
/// message was encoded by its sender and decoded by its receiver — no
/// in-memory payload sharing across the party boundary.
///
/// `driver`, when present, runs on its own thread with a [`ClientHandle`]
/// and models external clients (open-loop load, fault injection).
pub(crate) fn run_socket_slots(
    plan: EnginePlan,
    slots: Vec<(Box<dyn Strategy<ErasedMsg>>, bool)>,
    codec: MsgCodec,
    driver: Option<Box<dyn FnOnce(ClientHandle) + Send>>,
) -> RawRun {
    let n = plan.config.n();
    assert_eq!(slots.len(), n, "one slot per party");
    assert_eq!(plan.links.len(), n * n, "full link matrix");
    assert_eq!(plan.starts.len(), n, "one start offset per party");
    let honest: Vec<bool> = slots.iter().map(|(_, h)| *h).collect();
    let epoch = Instant::now();
    let commits: Arc<Mutex<Vec<RawCommit>>> = Arc::new(Mutex::new(Vec::new()));

    // One socket pair per party: the party end lives with the party's
    // threads, the dispatcher end with the dispatcher's.
    let mut party_ends = Vec::with_capacity(n);
    let mut dispatcher_ends = Vec::with_capacity(n);
    for _ in 0..n {
        let (p, d) = stream_pair().expect("socket pair");
        party_ends.push(p);
        dispatcher_ends.push(d);
    }

    let (sub_tx, sub_rx) = unbounded::<Submission>();
    let (done_tx, done_rx) = unbounded::<()>();
    // Held by the engine thread to order the shutdown below.
    let shutdown_tx = sub_tx.clone();

    // The client driver, if any, gets its own submission handle; its
    // injected frames are scheduled exactly like party submissions, and
    // frames the replicas address to the reserved client id come back to
    // it through the delivery channel. Without a driver the receiver is
    // dropped here and the scheduler's client deliveries fail harmlessly.
    let (client_tx, client_rx) = unbounded::<Vec<u8>>();
    let driver_handle = driver.map(|driver| {
        let handle = ClientHandle {
            sub_tx: sub_tx.clone(),
            delivery_rx: Arc::new(Mutex::new(client_rx)),
        };
        thread::spawn(move || driver(handle))
    });

    // Dispatcher readers: one blocking-read loop per party socket, parsing
    // submission frames and stamping them into the scheduler's channel.
    let mut dispatcher_writers = Vec::with_capacity(n);
    let mut reader_handles = Vec::with_capacity(n);
    for (i, end) in dispatcher_ends.into_iter().enumerate() {
        let mut read_end = end.try_clone().expect("clone dispatcher end");
        dispatcher_writers.push(end);
        let sub_tx = sub_tx.clone();
        let from = PartyId::new(i as u32);
        reader_handles.push(thread::spawn(move || {
            while let Ok(Some(body)) = read_frame(&mut read_end) {
                // A malformed frame means the party behind this socket is
                // garbled: stop reading it (crashed, from the dispatcher's
                // point of view) and keep the rest of the run live.
                let Some(sub) = parse_submission(from, body) else {
                    break;
                };
                if sub_tx.send(sub).is_err() {
                    break;
                }
            }
        }));
    }
    drop(sub_tx);

    // The scheduler: owns the delivery heap and all dispatcher-side write
    // halves. Writes delivery frames when entries fall due; a Shutdown
    // submission flushes stop frames to every party and exits.
    let links = plan.links.clone();
    let scheduler = thread::spawn(move || {
        let mut heap: BinaryHeap<Scheduled> = BinaryHeap::new();
        let mut next_seq: u64 = 0;
        let mut messages: u64 = 0;
        let mut peak: usize = 0;
        let mut push = |heap: &mut BinaryHeap<Scheduled>, due, to, delivery| {
            heap.push(Scheduled {
                due,
                seq: next_seq,
                to,
                delivery,
            });
            next_seq += 1;
        };
        loop {
            let timeout = heap
                .peek()
                .map(|s| s.due.saturating_duration_since(Instant::now()))
                .unwrap_or(IDLE_POLL);
            match sub_rx.recv_timeout(timeout) {
                Ok(sub) => {
                    let now = Instant::now();
                    let row = sub.from.as_usize() * n;
                    match sub.kind {
                        SubmissionKind::Shutdown => {
                            for w in &mut dispatcher_writers {
                                let _ = write_frame(w, &[KIND_STOP]);
                            }
                            return (messages, peak);
                        }
                        SubmissionKind::Unicast { to, round, bytes } => {
                            messages += 1;
                            // Client-addressed frames (the reserved
                            // out-of-band id) cross the sender's worst
                            // link — the external client is at least as
                            // far away as the farthest party.
                            let delay = if to.as_usize() >= n {
                                links[row..row + n]
                                    .iter()
                                    .copied()
                                    .max()
                                    .unwrap_or_default()
                            } else {
                                links[row + to.as_usize()]
                            };
                            push(
                                &mut heap,
                                now + delay,
                                to,
                                Delivery::Msg {
                                    from: sub.from,
                                    round,
                                    bytes: Arc::new(bytes),
                                },
                            );
                        }
                        SubmissionKind::Multicast { skip, round, bytes } => {
                            // One encoded payload, n scheduled frames — the
                            // byte-transport analogue of the `Arc` fan-out.
                            // Every recipient still decodes its own copy.
                            for t in 0..n as u32 {
                                let to = PartyId::new(t);
                                if Some(to) == skip {
                                    continue;
                                }
                                messages += 1;
                                push(
                                    &mut heap,
                                    now + links[row + to.as_usize()],
                                    to,
                                    Delivery::Msg {
                                        from: sub.from,
                                        round,
                                        bytes: Arc::clone(&bytes),
                                    },
                                );
                            }
                        }
                        SubmissionKind::Timer { delay, tag } => {
                            push(&mut heap, now + delay, sub.from, Delivery::Timer(tag));
                        }
                    }
                    peak = peak.max(heap.len());
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return (messages, peak),
            }
            while heap.peek().is_some_and(|s| s.due <= Instant::now()) {
                let s = heap.pop().expect("peeked");
                if s.to.as_usize() >= n {
                    // Client delivery: hand the payload bytes to the
                    // external client channel (dropped when no driver is
                    // attached — a send failure is harmless).
                    if let Delivery::Msg { bytes, .. } = &s.delivery {
                        let _ = client_tx.send(bytes.as_ref().clone());
                    }
                    continue;
                }
                let frame = delivery_frame(&s.delivery);
                // A write failure means the recipient is gone (terminated
                // and closed its end) — past the run's horizon, drop it.
                let _ = write_frame(&mut dispatcher_writers[s.to.as_usize()], &frame);
            }
        }
    });

    // Party event loops: a blocking socket reader feeding an in-process
    // channel (so mid-frame reads never race the poll timeout), and the
    // strategy loop draining it.
    let mut party_handles = Vec::with_capacity(n);
    let mut party_reader_handles = Vec::with_capacity(n);
    for (i, ((mut strategy, is_honest), end)) in slots.into_iter().zip(party_ends).enumerate() {
        let me = PartyId::new(i as u32);
        let config = plan.config;
        let start_offset = plan.starts[i];
        let done = done_tx.clone();
        let commits = Arc::clone(&commits);

        let (ev_tx, ev_rx) = unbounded::<PartyEvent>();
        let mut read_end = end.try_clone().expect("clone party end");
        party_reader_handles.push(thread::spawn(move || {
            while let Ok(Some(body)) = read_frame(&mut read_end) {
                let mut r = &body[..];
                let event = match u8::decode(&mut r) {
                    Ok(KIND_UNICAST) => {
                        let header = PartyId::decode(&mut r)
                            .and_then(|from| u32::decode(&mut r).map(|round| (from, round)));
                        let Ok((from, round)) = header else {
                            // Truncated delivery header: this stream is
                            // corrupt beyond one frame; stop reading it.
                            return;
                        };
                        // The decode half of the wire round trip: the frame
                        // payload is exactly one encoded message. A payload
                        // that does not decode came from a garbled peer —
                        // drop the frame (sender treated as crashed) and
                        // keep this party's run live.
                        match codec.decode(r) {
                            Ok(msg) => PartyEvent::Msg { from, round, msg },
                            Err(_) => continue,
                        }
                    }
                    Ok(KIND_TIMER) => match u64::decode(&mut r) {
                        Ok(tag) => PartyEvent::Timer(tag),
                        Err(_) => return,
                    },
                    Ok(KIND_STOP) => {
                        let _ = ev_tx.send(PartyEvent::Stop);
                        return;
                    }
                    // Unknown kind or empty frame: corrupt stream.
                    _ => return,
                };
                if ev_tx.send(event).is_err() {
                    // Event loop exited (terminated); keep draining so the
                    // scheduler's writes never block on a full buffer.
                    continue;
                }
            }
        }));

        let mut write_end = end;
        party_handles.push(thread::spawn(move || {
            // Wall-clock skew: frames arriving before the start buffer in
            // the socket; the local clock begins after the offset.
            if !start_offset.is_zero() {
                thread::sleep(start_offset);
            }
            let local_start = Instant::now();
            let mut max_round: Option<u32> = None;
            let mut handled: u64 = 0;
            let mut committed = false;
            let run = |strategy: &mut Box<dyn Strategy<ErasedMsg>>,
                       ev: Option<PartyEvent>,
                       max_round: &mut Option<u32>,
                       handled: &mut u64,
                       committed: &mut bool,
                       write_end: &mut Stream|
             -> bool {
                *handled += 1;
                let mut ctx = NetCtx::new(
                    me,
                    config,
                    LocalTime::from_micros(local_start.elapsed().as_micros() as u64),
                );
                match ev {
                    None => strategy.start(&mut ctx),
                    Some(PartyEvent::Msg { from, round, msg }) => {
                        *max_round = Some(max_round.map_or(round, |r| r.max(round)));
                        strategy.on_message(from, msg, &mut ctx);
                    }
                    Some(PartyEvent::Timer(tag)) => strategy.on_timer(tag, &mut ctx),
                    Some(PartyEvent::Stop) => unreachable!("Stop is intercepted before dispatch"),
                }
                let out_round = max_round.map_or(0, |r| r + 1);
                if !ctx.commit_values.is_empty() {
                    let elapsed = epoch.elapsed();
                    let local = local_start.elapsed();
                    let mut log = commits.lock();
                    for value in ctx.commit_values.drain(..) {
                        log.push(RawCommit {
                            party: me,
                            value,
                            elapsed,
                            local,
                            round: out_round,
                            step: *handled,
                            first: !*committed,
                        });
                        *committed = true;
                    }
                }
                // The encode half of the wire round trip: every outbound
                // payload leaves this thread as bytes, never as a pointer.
                for (to, msg) in ctx.sends.drain(..) {
                    let mut body = Vec::new();
                    body.push(KIND_UNICAST);
                    to.encode(&mut body);
                    out_round.encode(&mut body);
                    msg.encode(&mut body);
                    let _ = write_frame(write_end, &body);
                }
                for (skip, msg) in ctx.mcasts.drain(..) {
                    let mut body = Vec::new();
                    body.push(KIND_MULTICAST);
                    skip.encode(&mut body);
                    out_round.encode(&mut body);
                    msg.encode(&mut body);
                    let _ = write_frame(write_end, &body);
                }
                for (delay, tag) in ctx.timers.drain(..) {
                    let mut body = Vec::new();
                    body.push(KIND_TIMER);
                    delay.as_micros().encode(&mut body);
                    tag.encode(&mut body);
                    let _ = write_frame(write_end, &body);
                }
                ctx.terminate
            };

            let finish = |handled: u64| {
                if is_honest {
                    let _ = done.send(());
                }
                (true, handled)
            };
            if run(
                &mut strategy,
                None,
                &mut max_round,
                &mut handled,
                &mut committed,
                &mut write_end,
            ) {
                return finish(handled);
            }
            loop {
                match ev_rx.recv_timeout(IDLE_POLL) {
                    Ok(PartyEvent::Stop) => return (false, handled),
                    Ok(ev) => {
                        if run(
                            &mut strategy,
                            Some(ev),
                            &mut max_round,
                            &mut handled,
                            &mut committed,
                            &mut write_end,
                        ) {
                            return finish(handled);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return (false, handled),
                }
            }
        }));
    }
    drop(done_tx);

    // Early-exit protocol, exactly as the thread engine: every honest
    // party reports termination; the deadline only caps runs where some
    // honest party never terminates.
    let deadline_at = epoch + plan.deadline;
    let mut remaining = honest.iter().filter(|h| **h).count();
    while remaining > 0 {
        let left = deadline_at.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        match done_rx.recv_timeout(left) {
            Ok(()) => remaining -= 1,
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    // Shutdown: the scheduler flushes stop frames; party readers forward
    // Stop and close their ends; party loops exit; dispatcher readers then
    // see EOF. This ordering is what keeps every join below finite. (A
    // failed send means the scheduler already exited on its own, in which
    // case the joins finish regardless.)
    let _ = shutdown_tx.send(Submission {
        from: PartyId::new(0),
        kind: SubmissionKind::Shutdown,
    });
    drop(shutdown_tx);

    let mut terminated = vec![false; n];
    let mut events_handled: u64 = 0;
    for (i, h) in party_handles.into_iter().enumerate() {
        let (t, handled) = match h.join() {
            Ok(result) => result,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        terminated[i] = t;
        events_handled += handled;
    }
    let (messages_sent, peak_queue) = scheduler.join().unwrap_or((0, 0));
    // Readers parse totally: a malformed frame makes them stop reading the
    // garbled stream (sender treated as crashed) rather than panic, so a
    // reader panic here can only be an engine bug (e.g. a poisoned
    // channel) — propagate it just like a party-loop panic. All readers
    // have exited by now (Stop frames then EOF), so these joins are
    // finite even on the panic path (a panicked party reader drops its
    // socket clone, the party loop exits on channel disconnect, and the
    // scheduler's writes to that party fail with EPIPE, which it ignores).
    for h in reader_handles.into_iter().chain(party_reader_handles) {
        if let Err(panic) = h.join() {
            std::panic::resume_unwind(panic);
        }
    }
    // The driver sees its submits fail once the scheduler is gone, so this
    // join is finite for any driver that stops on a failed submit.
    if let Some(h) = driver_handle {
        if let Err(panic) = h.join() {
            std::panic::resume_unwind(panic);
        }
    }

    let mut collected = std::mem::take(&mut *commits.lock());
    collected.sort_by_key(|c| c.elapsed);
    RawRun {
        commits: collected,
        terminated,
        honest,
        events_handled,
        messages_sent,
        peak_queue,
        elapsed: epoch.elapsed(),
    }
}

/// Runs registry scenarios over socket-connected party event loops. See
/// the [module docs](self) for the transport contract; the spec mapping
/// (δ/jitter, skew, adversary mix, audits) is identical to
/// [`NetBackend`](crate::NetBackend), so the two wall-clock backends
/// differ *only* in whether messages cross the party boundary as bytes or
/// as shared pointers.
///
/// # Examples
///
/// ```
/// use gcl_net::SocketBackend;
/// use gcl_types::Duration;
///
/// let reg = gcl_core::registry();
/// let spec = reg
///     .spec("brb2")
///     .unwrap()
///     .with_bounds(Duration::from_millis(2), Duration::from_millis(20));
/// let outcome = SocketBackend::new().run(&reg, &spec).unwrap();
/// assert!(outcome.agreement_holds());
/// assert_eq!(outcome.committed_value(), Some(spec.input));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SocketBackend {
    deadline: Duration,
}

impl SocketBackend {
    /// A backend with the default 2-second per-run deadline.
    pub const fn new() -> Self {
        SocketBackend {
            deadline: Duration::from_secs(2),
        }
    }

    /// Replaces the per-run wall-clock deadline. Honest termination exits
    /// earlier; the deadline only caps runs where some honest party never
    /// terminates.
    #[must_use]
    pub const fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Convenience: validate and run one spec through a registry on this
    /// backend (`registry.run_on(spec, self)`).
    ///
    /// # Errors
    ///
    /// Everything `ScenarioRegistry::validate` rejects.
    pub fn run(
        &self,
        registry: &ScenarioRegistry,
        spec: &ScenarioSpec,
    ) -> Result<Outcome, ScenarioError> {
        registry.run_on(spec, self)
    }
}

impl Default for SocketBackend {
    fn default() -> Self {
        SocketBackend::new()
    }
}

impl Backend for SocketBackend {
    fn name(&self) -> &'static str {
        "socket"
    }

    fn execute(&self, spec: &ScenarioSpec, slots: Vec<ErasedSlot>, codec: MsgCodec) -> Outcome {
        let raw = run_socket_slots(
            engine_plan(spec, self.deadline),
            slots.into_iter().map(|s| (s.strategy, s.honest)).collect(),
            codec,
            None,
        );
        outcome_from_raw(spec, raw)
    }
}

impl SocketBackend {
    /// Like [`Backend::execute`], but with an external client: `driver`
    /// runs on its own thread for the duration of the run, injecting
    /// encoded messages through its [`ClientHandle`] — the open-loop
    /// serving path (e.g. a load generator feeding an SMR leader's
    /// mempool). The driver must stop once [`ClientHandle::submit`]
    /// returns `false`.
    pub fn execute_with_client(
        &self,
        spec: &ScenarioSpec,
        slots: Vec<ErasedSlot>,
        codec: MsgCodec,
        driver: impl FnOnce(ClientHandle) + Send + 'static,
    ) -> Outcome {
        let raw = run_socket_slots(
            engine_plan(spec, self.deadline),
            slots.into_iter().map(|s| (s.strategy, s.honest)).collect(),
            codec,
            Some(Box::new(driver)),
        );
        outcome_from_raw(spec, raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_sim::{AdversaryMix, DelayChoice, SkewChoice};
    use gcl_types::Duration as SimDuration;

    /// Wall-safe bounds, as in the net backend's suite: δ' = 2 ms links,
    /// Δ' = 20 ms timers.
    fn brb_spec() -> ScenarioSpec {
        gcl_core::registry()
            .spec("brb2")
            .unwrap()
            .with_bounds(SimDuration::from_millis(2), SimDuration::from_millis(20))
    }

    #[test]
    fn brb_family_runs_over_sockets() {
        let reg = gcl_core::registry();
        let spec = brb_spec();
        let o = SocketBackend::new().run(&reg, &spec).unwrap();
        assert!(o.agreement_holds());
        assert!(o.all_honest_committed());
        assert!(o.all_honest_terminated());
        assert_eq!(o.committed_value(), Some(spec.input));
        assert!(o.messages_sent() > 0);
        // Wall latency must at least cover the two injected 2 ms hops.
        let lat = o.good_case_latency().expect("all committed");
        assert!(lat >= SimDuration::from_millis(4), "latency {lat}");
        assert_eq!(o.good_case_rounds(), Some(2), "causal tags survive bytes");
    }

    #[test]
    fn socket_backend_honors_adversary_skew_and_jitter() {
        let reg = gcl_core::registry();
        let spec = brb_spec()
            .with_adversary(AdversaryMix::TrailingSilent { count: 1 })
            .with_skew(SkewChoice::OddHalfDelta)
            .with_delays(DelayChoice::Uniform {
                lo: SimDuration::from_millis(1),
                hi: SimDuration::from_millis(2),
            })
            .with_seed(5);
        let o = SocketBackend::new().run(&reg, &spec).unwrap();
        assert!(!o.is_honest(PartyId::new(3)), "trailing slot is Byzantine");
        assert!(
            o.commit_of(PartyId::new(3)).is_none(),
            "silent never commits"
        );
        assert!(o.agreement_holds());
        assert!(o.all_honest_committed(), "f = 1 silence is tolerated");
        assert_eq!(o.committed_value(), Some(spec.input));
    }

    #[test]
    fn socket_run_exits_early() {
        // The early-termination discipline carries over: a good-case run
        // against a 10 s deadline returns in far less than a second.
        let reg = gcl_core::registry();
        let started = Instant::now();
        let o = SocketBackend::new()
            .deadline(Duration::from_secs(10))
            .run(&reg, &brb_spec())
            .unwrap();
        assert!(o.all_honest_committed());
        let wall = started.elapsed();
        assert!(
            wall < Duration::from_millis(500),
            "early exit regressed: run took {wall:?} against a 10 s deadline"
        );
    }

    #[test]
    fn deadline_caps_a_run_that_cannot_terminate() {
        // Crash the broadcaster before it proposes: honest parties wait
        // forever, so the run must return at the deadline with no commits —
        // and every engine thread must still wind down (no join hangs).
        let reg = gcl_core::registry();
        let spec = brb_spec().with_adversary(AdversaryMix::CrashAt {
            party: PartyId::new(0),
            handled: 0,
        });
        let started = Instant::now();
        let o = SocketBackend::new()
            .deadline(Duration::from_millis(200))
            .run(&reg, &spec)
            .unwrap();
        assert!(o.commits().is_empty());
        assert!(!o.all_honest_terminated());
        let wall = started.elapsed();
        assert!(
            wall >= Duration::from_millis(200),
            "waited out the deadline"
        );
        assert!(wall < Duration::from_secs(5), "but not much longer");
    }

    #[test]
    fn frames_round_trip_length_prefix() {
        let (mut a, mut b) = stream_pair().expect("pair");
        write_frame(&mut a, &[9, 8, 7]).unwrap();
        write_frame(&mut a, &[]).unwrap();
        assert_eq!(read_frame(&mut b).unwrap(), Some(vec![9, 8, 7]));
        assert_eq!(read_frame(&mut b).unwrap(), Some(vec![]));
        drop(a);
        assert_eq!(read_frame(&mut b).unwrap(), None, "clean EOF");
    }

    #[test]
    fn malformed_submission_frames_are_rejected_not_fatal() {
        // Fuzz-style sweep over the submission parser: truncations of every
        // valid frame shape, unknown kinds, and LCG-generated garbage all
        // come back as `None` (sender treated as crashed) — the pre-fix
        // parser panicked the dispatcher reader on every one of these.
        let from = PartyId::new(1);
        let mut unicast = vec![KIND_UNICAST];
        PartyId::new(2).encode(&mut unicast);
        7u32.encode(&mut unicast);
        unicast.extend_from_slice(b"payload");
        let mut multicast = vec![KIND_MULTICAST];
        Option::<PartyId>::None.encode(&mut multicast);
        7u32.encode(&mut multicast);
        let mut timer = vec![KIND_TIMER];
        5u64.encode(&mut timer);
        9u64.encode(&mut timer);
        // Pair each frame with its header length: everything after the
        // header is payload bytes, and a truncated *payload* is the codec's
        // problem, not the framing's. Only the unicast frame above carries
        // payload bytes (7 of them).
        for (valid, header_len) in [
            (&unicast, unicast.len() - 7),
            (&multicast, multicast.len()),
            (&timer, timer.len()),
        ] {
            assert!(parse_submission(from, valid.clone()).is_some());
            // Every strict prefix of the header is truncated garbage.
            for cut in 0..header_len {
                assert!(
                    parse_submission(from, valid[..cut].to_vec()).is_none(),
                    "truncation at {cut} must be rejected"
                );
            }
        }
        assert!(parse_submission(from, vec![]).is_none(), "empty frame");
        for kind in [0u8, KIND_STOP, 5, 99, 255] {
            assert!(
                parse_submission(from, vec![kind, 0, 0, 0, 0]).is_none(),
                "kind {kind} is not a submission"
            );
        }
        let mut state: u64 = 0x6b6f;
        for len in 0..64usize {
            let body: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) as u8
                })
                .collect();
            let _ = parse_submission(from, body); // must not panic
        }
    }

    #[test]
    fn garbled_client_frames_leave_the_run_live() {
        // End-to-end: a client floods every party with undecodable frames
        // mid-run. Party readers must drop them (garbled peer = crashed
        // peer) and the broadcast must still commit on every honest party.
        use gcl_core::asynchrony::{Brb2Msg, TwoRoundBrb};
        use gcl_crypto::Keychain;
        let spec = brb_spec();
        let cfg = spec.config().expect("valid shape");
        let chain = Keychain::generate(spec.n, spec.seed);
        let slots = spec.erased_slots(|p| {
            TwoRoundBrb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                spec.broadcaster,
                spec.input_for(p),
            )
        });
        let codec = MsgCodec::of::<Brb2Msg>();
        let n = spec.n;
        let o = SocketBackend::new().execute_with_client(
            &spec,
            slots,
            codec,
            move |client: ClientHandle| {
                for round in 0..20u64 {
                    for p in 0..n as u32 {
                        // Tag 255 is no BrbMsg variant; the rest is noise.
                        let garbage = vec![255, round as u8, 0xde, 0xad, 0xbe, 0xef];
                        if !client.submit(PartyId::new(p), garbage) {
                            return;
                        }
                    }
                    thread::sleep(Duration::from_millis(1));
                }
            },
        );
        assert!(o.agreement_holds());
        assert!(
            o.all_honest_committed(),
            "garbage frames must not stop the protocol"
        );
        assert_eq!(o.committed_value(), Some(spec.input));
    }
}
