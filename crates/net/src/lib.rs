//! A real (non-simulated) runtime: every party is an OS thread or
//! socket-backed event loop, links carry injected latency, clocks are
//! wall clocks.
//!
//! # The four-backend architecture
//!
//! The workspace has four execution targets behind one scenario layer:
//!
//! * **`gcl_sim`** — the deterministic discrete-event simulator. δ and Δ
//!   are exact, executions replay bit-for-bit, and a million-event run
//!   costs milliseconds. Every *measured* number in the paper tables
//!   (Table 1, Figure 8, the throughput trajectory) comes from here.
//! * **[`NetBackend`]** (this crate) — threads, channels and wall clocks.
//!   The protocols in `gcl-core` are written against [`gcl_sim::Context`]
//!   and run **unmodified** here, demonstrating they are not
//!   simulator-bound: real concurrency, real message races, real timer
//!   drift. Multicast payloads are `Arc`-shared across threads — fast,
//!   but in-memory.
//! * **[`SocketBackend`]** (this crate) — the same wall-clock discipline,
//!   but every message is *encoded to bytes, carried across a Unix-domain
//!   socket (TCP-localhost fallback), and decoded on the far side* via
//!   the `gcl_types::wire` codec. There is no pointer fast path across
//!   the party boundary, so a committing run is end-to-end proof the
//!   family's message types survive serialization. One dispatcher plus
//!   one reader thread per party: faithful, but thread count is O(n).
//! * **[`AsyncBackend`]** (this crate) — the socket transport contract
//!   (same framed wire bytes, same socket pairs) with an inverted
//!   execution model: every party is a *state machine* behind a
//!   nonblocking socket, and all n of them are multiplexed over one
//!   readiness loop feeding a fixed worker pool (default
//!   `min(cores, 8)`). Partial reads reassemble per-party, writes are
//!   backpressure-aware, timers live on a timer wheel. Thread count is
//!   O(workers), not O(n) — this is the backend that runs n = 1024
//!   parties on a laptop.
//!
//! All three wall backends implement [`gcl_sim::Backend`], so any
//! [`gcl_sim::ScenarioSpec`] admitted by a
//! [`gcl_sim::ScenarioRegistry`] runs on all four targets:
//!
//! ```text
//! registry.run(&spec)                           // simulator (exact, fast)
//! registry.run_on(&spec, &NetBackend::new())    // threads + wall clocks
//! registry.run_on(&spec, &SocketBackend::new()) // + real bytes on real sockets
//! registry.run_on(&spec, &AsyncBackend::new())  // + n parties, O(workers) threads
//! ```
//!
//! The spec's δ/jitter become injected per-link latencies, its skew
//! schedule becomes per-thread (or per-timer) start offsets, and its
//! adversary mix becomes muted or mid-run-crashing parties. Outcomes
//! convert to the same [`gcl_sim::Outcome`] audits (agreement, validity,
//! commits) the simulator reports, which is what the workspace's
//! `net_conformance` suite checks: every registered family commits the
//! same value on all four backends.
//!
//! **When to trust which numbers:** wall-clock latencies from this crate
//! include thread spawn, scheduler jitter and channel overhead — treat
//! them as *evidence of liveness under real concurrency*, not as
//! measurements of δ-bounds. Pick spec bounds well above scheduler noise
//! (milliseconds, not the simulator's canonical 100 µs) so protocol
//! timeouts (≥ 4Δ) stay far from spurious firing. For exact good-case
//! latency claims — `2δ` vs `3δ` vs `Δ + 1.5δ` — use the simulator, where
//! those quantities are the model, not an estimate. Per backend: `net`
//! numbers isolate concurrency from serialization (no codec on the
//! path); `socket` numbers add the codec and syscalls but pay O(n)
//! threads, so beyond a few dozen parties they measure the OS scheduler;
//! `async` numbers are the ones to read at scale — the readiness loop
//! keeps the thread count fixed, and [`gcl_sim::SchedCounters`] on the
//! outcome (workers, wakeups, peak outbound buffer) say how hard the
//! loop actually worked.
//!
//! Runs exit as soon as every honest party terminates; the wall-clock
//! budget passed to [`NetRuntime::run_for`] (or
//! [`NetBackend::deadline`]) is only the fallback horizon for executions
//! where some honest party never can.
//!
//! # Examples
//!
//! The typed demo API, for running one protocol directly:
//!
//! ```
//! use gcl_core::asynchrony::TwoRoundBrb;
//! use gcl_crypto::Keychain;
//! use gcl_net::NetRuntime;
//! use gcl_types::{Config, PartyId, Value};
//! use std::time::Duration;
//!
//! let cfg = Config::new(4, 1)?;
//! let chain = Keychain::generate(4, 33);
//! let outcome = NetRuntime::new(cfg)
//!     .link_latency(Duration::from_millis(1))
//!     // A deadline, not a sentence: the run returns in a few ms.
//!     .run_for(Duration::from_secs(5), |p| {
//!         TwoRoundBrb::new(
//!             cfg, chain.signer(p), chain.pki(), PartyId::new(0),
//!             (p == PartyId::new(0)).then_some(Value::new(5)),
//!         )
//!     });
//! assert!(outcome.agreement_holds());
//! assert_eq!(outcome.committed_value(), Some(Value::new(5)));
//! # Ok::<(), gcl_types::ConfigError>(())
//! ```
//!
//! The registry path, for running any registered family (see
//! [`NetBackend`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod async_backend;
mod backend;
mod engine;
mod runtime;
mod socket;
mod wheel;

pub use async_backend::AsyncBackend;
pub use backend::NetBackend;
pub use engine::ClientHandle;
pub use runtime::{NetCommit, NetOutcome, NetRuntime};
pub use socket::SocketBackend;
