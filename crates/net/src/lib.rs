//! A real (non-simulated) runtime: every party is an OS thread, links are
//! channels with injected latency, clocks are wall clocks.
//!
//! The protocols in `gcl-core` are written against [`gcl_sim::Context`] and
//! run **unmodified** here — demonstrating they are not simulator-bound.
//! The runtime implements the same semantics: local clocks start at thread
//! spawn, timers fire on the wall clock, `multicast` includes the sender.
//!
//! This runtime is for demonstration and integration testing (examples,
//! smoke tests); latency *measurements* for the paper's tables use the
//! deterministic simulator, where δ and Δ are exact.
//!
//! # Examples
//!
//! ```
//! use gcl_core::asynchrony::TwoRoundBrb;
//! use gcl_crypto::Keychain;
//! use gcl_net::NetRuntime;
//! use gcl_types::{Config, PartyId, Value};
//! use std::time::Duration;
//!
//! let cfg = Config::new(4, 1)?;
//! let chain = Keychain::generate(4, 33);
//! let outcome = NetRuntime::new(cfg)
//!     .link_latency(Duration::from_millis(1))
//!     .run_for(Duration::from_millis(300), |p| {
//!         TwoRoundBrb::new(
//!             cfg, chain.signer(p), chain.pki(), PartyId::new(0),
//!             (p == PartyId::new(0)).then_some(Value::new(5)),
//!         )
//!     });
//! assert!(outcome.agreement_holds());
//! assert_eq!(outcome.committed_value(), Some(Value::new(5)));
//! # Ok::<(), gcl_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod runtime;

pub use runtime::{NetCommit, NetOutcome, NetRuntime};
