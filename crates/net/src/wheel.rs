//! A hashed timing wheel for the readiness-loop scheduler.
//!
//! The async backend multiplexes every party's view/Δ timers onto one
//! scheduler thread, so timer arming must be O(1) regardless of how many
//! are pending — a `BinaryHeap` would pay O(log pending) per protocol
//! timeout, and at n = 1024 parties each arming several Δ-scale timers
//! per view that is the scheduler's hot path. The classic fix (Varghese &
//! Lauck) is a hashed wheel: a ring of [`WHEEL_SLOTS`] buckets at 1 ms
//! tick granularity, with timers beyond the ring's horizon parked in a
//! sorted overflow map and cascaded in as the wheel turns.
//!
//! Semantics the engine relies on:
//!
//! * **Never early.** A delay is rounded *up* to the next tick (and a
//!   zero delay to one full tick), so a timer armed for `after` fires at
//!   wall time ≥ `after`. Protocol timeouts are ≥ Δ' = tens of
//!   milliseconds on this backend, so 1 ms granularity disappears into
//!   scheduler noise.
//! * **FIFO within a tick.** Timers expiring on the same tick drain in
//!   arming order (a per-wheel sequence stamp) — the same tie discipline
//!   as the dispatcher heap's `(due, seq)` order.
//! * **Due order across ticks.** [`advance_to`] walks ticks in order, so
//!   an earlier-due timer is always yielded before a later one even when
//!   one `advance_to` call covers many elapsed ticks.
//!
//! [`advance_to`]: TimerWheel::advance_to

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

/// Ring size: one second of 1 ms ticks. Timers further out than this park
/// in the overflow map until the wheel turns within range.
pub(crate) const WHEEL_SLOTS: usize = 1024;

/// Tick granularity in microseconds (1 ms).
const TICK_US: u64 = 1_000;

/// A hashed timing wheel over items of type `T`. See the [module
/// docs](self) for the expiry semantics.
pub(crate) struct TimerWheel<T> {
    /// `slots[due % WHEEL_SLOTS]` holds `(due_tick, seq, item)`. A bucket
    /// may hold entries from different ring revolutions; only entries
    /// whose `due_tick` equals the current tick fire, the rest rotate
    /// back.
    slots: Vec<VecDeque<(u64, u64, T)>>,
    /// The current tick (elapsed milliseconds the wheel has advanced to).
    tick: u64,
    /// Arming-order stamp, for FIFO ties within a tick.
    seq: u64,
    /// Timers due beyond the ring's horizon, keyed `(due_tick, seq)`.
    overflow: BTreeMap<(u64, u64), T>,
    /// Pending timers (ring + overflow).
    pending: usize,
}

impl<T> TimerWheel<T> {
    pub(crate) fn new() -> Self {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            tick: 0,
            seq: 0,
            overflow: BTreeMap::new(),
            pending: 0,
        }
    }

    /// Arms `item` to fire `after` from now (i.e. from the wheel's current
    /// tick). Rounds up to the next tick — never early — and a zero delay
    /// still waits one full tick.
    pub(crate) fn insert(&mut self, after: Duration, item: T) {
        let after_us = u64::try_from(after.as_micros()).unwrap_or(u64::MAX);
        let ticks = after_us.div_ceil(TICK_US).max(1);
        let due = self.tick.saturating_add(ticks);
        let seq = self.seq;
        self.seq += 1;
        if ticks < WHEEL_SLOTS as u64 {
            self.slots[(due % WHEEL_SLOTS as u64) as usize].push_back((due, seq, item));
        } else {
            self.overflow.insert((due, seq), item);
        }
        self.pending += 1;
    }

    /// Advances the wheel to wall-clock `elapsed` (measured from the same
    /// epoch as every `insert`), appending expired items to `out` in
    /// `(due, seq)` order.
    pub(crate) fn advance_to(&mut self, elapsed: Duration, out: &mut Vec<T>) {
        let target = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX) / TICK_US;
        while self.tick < target {
            if self.pending == 0 {
                // Nothing armed: jump instead of walking empty ticks.
                self.tick = target;
                break;
            }
            self.tick += 1;
            // Cascade overflow entries that are now within the ring's
            // horizon into their bucket.
            let horizon = self.tick + WHEEL_SLOTS as u64 - 1;
            while let Some((&(due, _), _)) = self.overflow.first_key_value() {
                if due > horizon {
                    break;
                }
                let ((due, seq), item) = self.overflow.pop_first().expect("peeked");
                self.slots[(due % WHEEL_SLOTS as u64) as usize].push_back((due, seq, item));
            }
            // Fire this tick's entries; entries from other revolutions
            // sharing the bucket rotate back.
            let slot = &mut self.slots[(self.tick % WHEEL_SLOTS as u64) as usize];
            let mut fired: Vec<(u64, u64, T)> = Vec::new();
            for _ in 0..slot.len() {
                let entry = slot.pop_front().expect("counted");
                if entry.0 == self.tick {
                    fired.push(entry);
                } else {
                    slot.push_back(entry);
                }
            }
            fired.sort_by_key(|&(_, seq, _)| seq);
            self.pending -= fired.len();
            out.extend(fired.into_iter().map(|(_, _, item)| item));
        }
    }

    /// How long until the earliest pending timer falls due, measured
    /// against the caller's `elapsed` clock. `None` when nothing is
    /// armed; `Some(ZERO)` when a timer is already overdue (the caller
    /// should [`advance_to`](Self::advance_to) and poll with a zero
    /// timeout).
    pub(crate) fn next_timeout(&self, elapsed: Duration) -> Option<Duration> {
        let due = self.earliest_due_tick()?;
        Some(Duration::from_millis(due).saturating_sub(elapsed))
    }

    /// Earliest pending `due_tick`, scanning the ring and the overflow
    /// head. O(pending + WHEEL_SLOTS) — called once per scheduler poll,
    /// not per timer.
    fn earliest_due_tick(&self) -> Option<u64> {
        if self.pending == 0 {
            return None;
        }
        let mut best = self.overflow.keys().next().map(|&(due, _)| due);
        for slot in &self.slots {
            for &(due, _, _) in slot {
                best = Some(best.map_or(due, |b| b.min(due)));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn drain(wheel: &mut TimerWheel<u32>, elapsed: Duration) -> Vec<u32> {
        let mut out = Vec::new();
        wheel.advance_to(elapsed, &mut out);
        out
    }

    #[test]
    fn timers_round_up_and_never_fire_early() {
        let mut wheel = TimerWheel::new();
        wheel.insert(Duration::from_micros(1_500), 1); // 1.5 ms → tick 2
        wheel.insert(Duration::ZERO, 2); // zero → one full tick
        assert_eq!(drain(&mut wheel, Duration::from_micros(999)), vec![]);
        assert_eq!(drain(&mut wheel, ms(1)), vec![2], "zero delay at tick 1");
        assert_eq!(drain(&mut wheel, Duration::from_micros(1_999)), vec![]);
        assert_eq!(drain(&mut wheel, ms(2)), vec![1], "1.5 ms rounds up to 2");
    }

    #[test]
    fn same_tick_fires_in_arming_order() {
        let mut wheel = TimerWheel::new();
        for id in 0..10u32 {
            wheel.insert(ms(5), id);
        }
        assert_eq!(drain(&mut wheel, ms(5)), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn one_big_advance_yields_due_order_across_ticks() {
        let mut wheel = TimerWheel::new();
        // Armed out of due order, spread across buckets.
        wheel.insert(ms(30), 30);
        wheel.insert(ms(10), 10);
        wheel.insert(ms(20), 20);
        wheel.insert(ms(10), 11); // same tick as 10, armed later
        assert_eq!(drain(&mut wheel, ms(100)), vec![10, 11, 20, 30]);
    }

    #[test]
    fn far_future_timers_cascade_from_overflow() {
        let mut wheel = TimerWheel::new();
        // Beyond the 1024-tick ring: parks in overflow.
        wheel.insert(ms(2_500), 99);
        wheel.insert(ms(3), 3);
        assert_eq!(drain(&mut wheel, ms(1_000)), vec![3]);
        assert_eq!(drain(&mut wheel, ms(2_499)), vec![]);
        assert_eq!(drain(&mut wheel, ms(2_500)), vec![99]);
        assert_eq!(wheel.next_timeout(ms(2_500)), None, "wheel drained");
    }

    #[test]
    fn ring_revolutions_do_not_alias() {
        // Two timers whose due ticks collide modulo the ring size: the
        // near one must fire without dragging the far one along, and the
        // far one must still fire on its own tick.
        let mut wheel = TimerWheel::new();
        wheel.insert(ms(2), 2);
        wheel.insert(ms(2 + WHEEL_SLOTS as u64), 1026);
        assert_eq!(drain(&mut wheel, ms(2)), vec![2]);
        assert_eq!(drain(&mut wheel, ms(1 + WHEEL_SLOTS as u64)), vec![]);
        assert_eq!(drain(&mut wheel, ms(2 + WHEEL_SLOTS as u64)), vec![1026]);
    }

    #[test]
    fn next_timeout_tracks_the_earliest_timer() {
        let mut wheel = TimerWheel::new();
        assert_eq!(wheel.next_timeout(Duration::ZERO), None);
        wheel.insert(ms(50), 1);
        wheel.insert(ms(5_000), 2); // overflow
        assert_eq!(wheel.next_timeout(Duration::ZERO), Some(ms(50)));
        assert_eq!(wheel.next_timeout(ms(48)), Some(ms(2)));
        assert_eq!(wheel.next_timeout(ms(60)), Some(ms(0)), "overdue is zero");
        assert_eq!(drain(&mut wheel, ms(60)), vec![1]);
        assert_eq!(wheel.next_timeout(ms(60)), Some(ms(4_940)));
        assert_eq!(drain(&mut wheel, ms(5_000)), vec![2]);
    }

    #[test]
    fn idle_gaps_jump_instead_of_walking() {
        // An empty wheel advanced by an hour must not walk 3.6 M ticks —
        // regression guard by arming after the jump and checking due math.
        let mut wheel = TimerWheel::new();
        let mut out = Vec::new();
        wheel.advance_to(Duration::from_secs(3_600), &mut out);
        assert!(out.is_empty());
        wheel.insert(ms(2), 7);
        assert_eq!(
            wheel.next_timeout(Duration::from_secs(3_600)),
            Some(ms(2)),
            "due is measured from the advanced tick"
        );
        assert_eq!(
            drain(&mut wheel, Duration::from_secs(3_600) + ms(2)),
            vec![7]
        );
    }
}
