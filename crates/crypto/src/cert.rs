//! Quorum certificates: multi-signature accumulation over one digest.

use crate::digest::{Digest, Digestible};
use crate::keys::Signature;
use crate::sha256::Sha256;
use crate::verify::{MemoTag, Verify};
use gcl_types::{Encode, PartyId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A set of signatures from distinct parties over a single digest.
///
/// Every voting protocol in the paper commits on "`q` signed votes for the
/// same value"; `QuorumCert` is that accumulator. Duplicate signers are
/// ignored, so `len` counts *distinct* signers, as all the quorum arguments
/// require.
///
/// # Examples
///
/// ```
/// use gcl_crypto::{Digest, Keychain, QuorumCert};
/// use gcl_types::PartyId;
///
/// let chain = Keychain::generate(4, 9);
/// let d = Digest::of(&("vote", 3u64));
/// let mut qc = QuorumCert::new(d);
/// for i in 0..3 {
///     qc.add(chain.signer(PartyId::new(i)).sign(d));
/// }
/// assert_eq!(qc.len(), 3);
/// assert!(qc.verify(&chain.pki(), 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuorumCert {
    digest: Digest,
    sigs: BTreeMap<PartyId, Signature>,
}

// Wire format: digest + signer-ordered signature map. A decoded cert is
// structurally well-formed (distinct signers by construction of the map);
// its signatures still carry no authority until `QuorumCert::verify`.
gcl_types::wire_struct!(QuorumCert { digest, sigs });

impl QuorumCert {
    /// An empty certificate over `digest`.
    pub fn new(digest: Digest) -> Self {
        QuorumCert {
            digest,
            sigs: BTreeMap::new(),
        }
    }

    /// The digest this certificate accumulates signatures over.
    pub const fn digest(&self) -> Digest {
        self.digest
    }

    /// Adds a signature; returns `true` if it was new (distinct signer).
    ///
    /// The signature is *not* verified here — call [`QuorumCert::verify`]
    /// before trusting a received certificate, or verify each signature on
    /// arrival.
    pub fn add(&mut self, sig: Signature) -> bool {
        self.sigs.insert(sig.signer(), sig).is_none()
    }

    /// Number of distinct signers.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// True when no signatures have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// Whether `party` has contributed a signature.
    pub fn contains(&self, party: PartyId) -> bool {
        self.sigs.contains_key(&party)
    }

    /// Iterates over the contributing signers in id order.
    pub fn signers(&self) -> impl Iterator<Item = PartyId> + '_ {
        self.sigs.keys().copied()
    }

    /// Iterates over the signatures in signer order.
    pub fn signatures(&self) -> impl Iterator<Item = &Signature> + '_ {
        self.sigs.values()
    }

    /// Verifies every signature and the quorum size.
    ///
    /// With an amortizing [`crate::Verifier`] the all-signatures-valid check
    /// is memoized on the cert's exact wire bytes, so re-delivery of an
    /// already-verified cert is O(1); the quorum-size comparison stays
    /// outside the memo because `quorum` is the one input not covered by
    /// those bytes. With a plain [`crate::Pki`] every signature is
    /// recomputed, as before.
    pub fn verify(&self, v: &impl Verify, quorum: usize) -> bool {
        self.sigs.len() >= quorum && self.sigs_valid(v)
    }

    /// Memoized "every accumulated signature is valid over the digest".
    fn sigs_valid(&self, v: &impl Verify) -> bool {
        let mut key = MemoTag::QuorumCert.key(36 + 36 * self.sigs.len());
        self.encode(&mut key);
        v.memoized(key, || {
            self.sigs
                .iter()
                .all(|(p, sig)| v.verify(*p, self.digest, sig))
        })
    }

    /// The signers of `self` that also appear in `other` — the quorum
    /// intersection, used e.g. by Figure 5's Byzantine-identification rule.
    pub fn intersection(&self, other: &QuorumCert) -> Vec<PartyId> {
        self.signers().filter(|p| other.contains(*p)).collect()
    }
}

impl Digestible for QuorumCert {
    fn absorb(&self, h: &mut Sha256) {
        crate::digest::absorb_tag(h, "qc");
        h.update(self.digest.as_bytes());
        h.update(&(self.sigs.len() as u64).to_le_bytes());
        for (p, sig) in &self.sigs {
            p.absorb(h);
            // Signatures are attributable MACs; absorb signer + a hash of
            // the raw mac via its Debug-stable bytes is not available, so we
            // re-absorb the digest which the sig covers. Signer set + digest
            // identify the cert for hashing purposes.
            self.digest.absorb(h);
            let _ = sig;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keychain;

    fn setup() -> (Keychain, Digest) {
        (Keychain::generate(5, 3), Digest::of(&("x", 1u64)))
    }

    #[test]
    fn accumulates_distinct_signers() {
        let (chain, d) = setup();
        let mut qc = QuorumCert::new(d);
        assert!(qc.is_empty());
        assert!(qc.add(chain.signer(PartyId::new(0)).sign(d)));
        assert!(!qc.add(chain.signer(PartyId::new(0)).sign(d)), "duplicate");
        assert!(qc.add(chain.signer(PartyId::new(1)).sign(d)));
        assert_eq!(qc.len(), 2);
        assert!(qc.contains(PartyId::new(1)));
        assert!(!qc.contains(PartyId::new(2)));
    }

    #[test]
    fn verify_checks_quorum_and_sigs() {
        let (chain, d) = setup();
        let pki = chain.pki();
        let mut qc = QuorumCert::new(d);
        for i in 0..3 {
            qc.add(chain.signer(PartyId::new(i)).sign(d));
        }
        assert!(qc.verify(&pki, 3));
        assert!(!qc.verify(&pki, 4));
    }

    #[test]
    fn verify_rejects_foreign_signature() {
        let (chain, d) = setup();
        let other = Digest::of(&("y", 2u64));
        let mut qc = QuorumCert::new(d);
        // Signature over the wrong digest sneaks in unverified...
        qc.add(chain.signer(PartyId::new(0)).sign(other));
        // ...but verify catches it.
        assert!(!qc.verify(&chain.pki(), 1));
    }

    #[test]
    fn verify_amortizes_on_redelivery() {
        let (chain, d) = setup();
        let mut qc = QuorumCert::new(d);
        for i in 0..4 {
            qc.add(chain.signer(PartyId::new(i)).sign(d));
        }
        let v = chain.verifier();
        assert!(qc.verify(&v, 4));
        let macs = v.macs_computed();
        assert_eq!(macs, 4, "first delivery verifies each signature");
        for _ in 0..5 {
            assert!(qc.verify(&v, 4));
            assert!(!qc.verify(&v, 5), "quorum check stays outside the memo");
        }
        assert_eq!(v.macs_computed(), macs, "re-delivery is memo-only");
        // A tampered cert (extra signature over a foreign digest) misses the
        // memo and fails exactly as recomputation would.
        let mut bad = qc.clone();
        bad.add(chain.signer(PartyId::new(4)).sign(Digest::of(&("y", 9u64))));
        assert!(!bad.verify(&v, 4));
    }

    #[test]
    fn intersection_finds_double_voters() {
        let (chain, d) = setup();
        let d2 = Digest::of(&("x", 2u64));
        let mut a = QuorumCert::new(d);
        let mut b = QuorumCert::new(d2);
        for i in 0..3 {
            a.add(chain.signer(PartyId::new(i)).sign(d));
        }
        for i in 2..5 {
            b.add(chain.signer(PartyId::new(i)).sign(d2));
        }
        assert_eq!(a.intersection(&b), vec![PartyId::new(2)]);
    }

    #[test]
    fn signers_ordered() {
        let (chain, d) = setup();
        let mut qc = QuorumCert::new(d);
        qc.add(chain.signer(PartyId::new(3)).sign(d));
        qc.add(chain.signer(PartyId::new(1)).sign(d));
        let order: Vec<_> = qc.signers().collect();
        assert_eq!(order, vec![PartyId::new(1), PartyId::new(3)]);
        assert_eq!(qc.signatures().count(), 2);
    }

    #[test]
    fn digestible_depends_on_signer_set() {
        let (chain, d) = setup();
        let mut a = QuorumCert::new(d);
        let mut b = QuorumCert::new(d);
        a.add(chain.signer(PartyId::new(0)).sign(d));
        b.add(chain.signer(PartyId::new(1)).sign(d));
        assert_ne!(Digest::of(&a), Digest::of(&b));
    }
}
