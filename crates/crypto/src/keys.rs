//! Deterministic MAC-style signatures with by-construction unforgeability.
//!
//! A [`Keychain`] derives one secret key per party from a seed. The
//! [`Signer`] for party `i` is the only object able to produce signatures
//! attributable to `i`; the shared [`Pki`] verifies any signature but never
//! reveals keys. This realizes the paper's "ideal unforgeability" assumption
//! inside the simulation: Byzantine strategy code holds only its own
//! signer(s), so it can replay observed signatures (allowed by the model)
//! but never forge fresh ones.

use crate::digest::Digest;
use crate::sha256::Sha256;
use crate::verify::BoundedMap;
use gcl_types::PartyId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// A signature by one party over one [`Digest`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    signer: PartyId,
    mac: [u8; 32],
}

impl Signature {
    /// The party this signature claims to be from (verify before trusting).
    pub const fn signer(&self) -> PartyId {
        self.signer
    }

    /// The raw MAC bytes, for comparison against a recomputed true MAC
    /// (crate-internal: only [`crate::Verifier`] needs them).
    pub(crate) const fn mac_bytes(&self) -> &[u8; 32] {
        &self.mac
    }
}

// Wire format: signer id + raw MAC bytes. Decoding reconstructs exactly
// the transmitted claim; unforgeability is unaffected because `Pki::verify`
// recomputes the MAC — forged bytes simply fail verification.
gcl_types::wire_struct!(Signature { signer, mac });

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Sig({} {:02x}{:02x}..)",
            self.signer, self.mac[0], self.mac[1]
        )
    }
}

#[derive(Clone)]
struct SecretKey([u8; 32]);

impl SecretKey {
    fn derive(seed: u64, party: PartyId) -> SecretKey {
        let mut h = Sha256::new();
        h.update(b"gcl-secret-key");
        h.update(&seed.to_le_bytes());
        h.update(&party.index().to_le_bytes());
        SecretKey(h.finalize())
    }

    fn mac(&self, digest: Digest) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"gcl-mac");
        h.update(&self.0);
        h.update(digest.as_bytes());
        h.finalize()
    }
}

/// Signing capability for exactly one party.
///
/// Cloneable (a party may hand it to subcomponents of itself), but only
/// obtainable from [`Keychain::signer`], which the simulation harness calls
/// once per party.
#[derive(Clone)]
pub struct Signer {
    id: PartyId,
    key: SecretKey,
}

impl Signer {
    /// The party this signer signs for.
    pub const fn id(&self) -> PartyId {
        self.id
    }

    /// Signs a digest.
    pub fn sign(&self, digest: Digest) -> Signature {
        Signature {
            signer: self.id,
            mac: self.key.mac(digest),
        }
    }
}

impl fmt::Debug for Signer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signer({})", self.id)
    }
}

/// Verification-only view of the key material, shared by all parties.
///
/// Holds every secret key internally (MAC verification needs them) but the
/// public API exposes only [`Pki::verify`]; no key or fresh signature can be
/// extracted through it.
pub struct Pki {
    keys: Vec<SecretKey>,
    /// Process-wide second-level MAC cache shared by every [`crate::Verifier`]
    /// over this key universe. `compute_mac` is a pure function of `keys`, so
    /// a recomputed MAC answers any party's later lookup byte-identically;
    /// only recomputed values are ever stored (never attacker-asserted ones),
    /// so a Byzantine signature can't poison it. Bounded FIFO keeps memory
    /// flat on long runs.
    shared_sigs: Mutex<BoundedMap<(PartyId, Digest), [u8; 32]>>,
}

impl Pki {
    /// Number of registered parties.
    pub fn n(&self) -> usize {
        self.keys.len()
    }

    /// Verifies that `sig` is `claimed`'s signature over `digest`.
    ///
    /// Returns `false` (never panics) for out-of-range ids or mismatched
    /// signer fields, so protocols can feed untrusted input directly.
    pub fn verify(&self, claimed: PartyId, digest: Digest, sig: &Signature) -> bool {
        if sig.signer != claimed {
            return false;
        }
        match self.keys.get(claimed.as_usize()) {
            Some(key) => key.mac(digest) == sig.mac,
            None => false,
        }
    }

    /// Verifies a signature against its embedded signer id.
    pub fn verify_embedded(&self, digest: Digest, sig: &Signature) -> bool {
        self.verify(sig.signer, digest, sig)
    }

    /// The one valid MAC for `(party, digest)`, or `None` if `party` is out
    /// of range. Crate-internal: [`crate::Verifier`] caches this value to
    /// answer any claimed signature over the pair without recomputation.
    pub(crate) fn compute_mac(&self, party: PartyId, digest: Digest) -> Option<[u8; 32]> {
        self.keys.get(party.as_usize()).map(|key| key.mac(digest))
    }

    /// The shared-cache entry for `(party, digest)`, if some verifier
    /// already recomputed it.
    pub(crate) fn shared_mac_lookup(&self, party: PartyId, digest: Digest) -> Option<[u8; 32]> {
        lock(&self.shared_sigs).get(&(party, digest)).copied()
    }

    /// Recomputes the MAC for `(party, digest)` and publishes it to the
    /// shared cache; `None` only for out-of-range ids. A lost race (two
    /// verifiers compute the same pair concurrently) is harmless: both
    /// compute the identical value, and `BoundedMap::insert` ignores the
    /// duplicate.
    pub(crate) fn shared_mac_store(&self, party: PartyId, digest: Digest) -> Option<[u8; 32]> {
        let mac = self.compute_mac(party, digest)?;
        lock(&self.shared_sigs).insert((party, digest), mac);
        Some(mac)
    }
}

/// Locks the shared cache, recovering from a poisoned mutex: the cache holds
/// only recomputed (always-valid) entries, so state after a panicking holder
/// is still correct.
fn lock(
    m: &Mutex<BoundedMap<(PartyId, Digest), [u8; 32]>>,
) -> MutexGuard<'_, BoundedMap<(PartyId, Digest), [u8; 32]>> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl fmt::Debug for Pki {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pki(n={})", self.keys.len())
    }
}

/// The trusted-setup key generator: derives all `n` keypairs from a seed.
///
/// # Examples
///
/// ```
/// use gcl_crypto::{Digest, Keychain};
/// use gcl_types::PartyId;
/// let chain = Keychain::generate(3, 7);
/// let sig = chain.signer(PartyId::new(0)).sign(Digest::of(&1u64));
/// assert!(chain.pki().verify(PartyId::new(0), Digest::of(&1u64), &sig));
/// ```
#[derive(Debug, Clone)]
pub struct Keychain {
    seed: u64,
    pki: Arc<Pki>,
}

impl Keychain {
    /// Derives keys for `n` parties from `seed`.
    pub fn generate(n: usize, seed: u64) -> Keychain {
        let keys = (0..n as u32)
            .map(|i| SecretKey::derive(seed, PartyId::new(i)))
            .collect();
        Keychain {
            seed,
            pki: Arc::new(Pki {
                keys,
                shared_sigs: Mutex::new(BoundedMap::new(crate::verify::DEFAULT_SIG_CAPACITY)),
            }),
        }
    }

    /// The signer for `party`.
    ///
    /// # Panics
    ///
    /// Panics if `party` is out of range.
    pub fn signer(&self, party: PartyId) -> Signer {
        assert!(
            party.as_usize() < self.pki.n(),
            "party {party} out of range (n = {})",
            self.pki.n()
        );
        Signer {
            id: party,
            key: SecretKey::derive(self.seed, party),
        }
    }

    /// The shared verification handle.
    pub fn pki(&self) -> Arc<Pki> {
        Arc::clone(&self.pki)
    }

    /// A fresh amortizing [`Verifier`](crate::Verifier) over this chain's
    /// [`Pki`]. One per party instance — verifiers hold per-party caches and
    /// are not shared.
    pub fn verifier(&self) -> crate::Verifier {
        crate::Verifier::new(self.pki())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(x: u64) -> Digest {
        Digest::of(&x)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let chain = Keychain::generate(4, 1);
        let pki = chain.pki();
        for i in 0..4 {
            let p = PartyId::new(i);
            let sig = chain.signer(p).sign(digest(10));
            assert!(pki.verify(p, digest(10), &sig));
            assert!(pki.verify_embedded(digest(10), &sig));
        }
    }

    #[test]
    fn wrong_party_rejected() {
        let chain = Keychain::generate(4, 1);
        let sig = chain.signer(PartyId::new(0)).sign(digest(10));
        assert!(!chain.pki().verify(PartyId::new(1), digest(10), &sig));
    }

    #[test]
    fn wrong_digest_rejected() {
        let chain = Keychain::generate(4, 1);
        let sig = chain.signer(PartyId::new(0)).sign(digest(10));
        assert!(!chain.pki().verify(PartyId::new(0), digest(11), &sig));
    }

    #[test]
    fn out_of_range_rejected_not_panicking() {
        let chain = Keychain::generate(2, 1);
        let sig = chain.signer(PartyId::new(0)).sign(digest(1));
        // Tamper with the claimed signer via a forged struct is impossible
        // from outside; out-of-range check via claimed id mismatch:
        assert!(!chain.pki().verify(PartyId::new(9), digest(1), &sig));
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let a = Keychain::generate(2, 1);
        let b = Keychain::generate(2, 2);
        let sig = a.signer(PartyId::new(0)).sign(digest(5));
        assert!(!b.pki().verify(PartyId::new(0), digest(5), &sig));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn signer_out_of_range_panics() {
        let chain = Keychain::generate(2, 1);
        let _ = chain.signer(PartyId::new(5));
    }

    #[test]
    fn signer_id_and_debug() {
        let chain = Keychain::generate(2, 1);
        let s = chain.signer(PartyId::new(1));
        assert_eq!(s.id(), PartyId::new(1));
        assert!(format!("{s:?}").contains("P1"));
        assert!(format!("{:?}", chain.pki()).contains("n=2"));
        let sig = s.sign(digest(0));
        assert_eq!(sig.signer(), PartyId::new(1));
        assert!(format!("{sig:?}").starts_with("Sig(P1"));
    }

    proptest::proptest! {
        #[test]
        fn verify_is_exact(seed: u64, payload: u64, other: u64) {
            let chain = Keychain::generate(3, seed);
            let sig = chain.signer(PartyId::new(1)).sign(digest(payload));
            proptest::prop_assert!(chain.pki().verify(PartyId::new(1), digest(payload), &sig));
            if other != payload {
                proptest::prop_assert!(!chain.pki().verify(PartyId::new(1), digest(other), &sig));
            }
        }
    }
}
