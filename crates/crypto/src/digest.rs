//! Canonical payload hashing without a serialization framework.
//!
//! Protocol messages stay plain Rust values; anything that must be signed
//! implements [`Digestible`], which feeds a canonical byte encoding into
//! SHA-256. Encodings are length-prefixed where variable-sized, so distinct
//! structures can never collide by concatenation ambiguity.

use crate::sha256::Sha256;
use gcl_types::{Duration, LocalTime, PartyId, SlotId, Value, View};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 32-byte SHA-256 digest of a [`Digestible`] payload.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Digest([u8; 32]);

impl Digest {
    /// Hashes a payload.
    ///
    /// # Examples
    ///
    /// ```
    /// use gcl_crypto::Digest;
    /// let a = Digest::of(&("vote", 1u64));
    /// let b = Digest::of(&("vote", 2u64));
    /// assert_ne!(a, b);
    /// ```
    pub fn of<T: Digestible + ?Sized>(payload: &T) -> Digest {
        let mut h = Sha256::new();
        payload.absorb(&mut h);
        Digest(h.finalize())
    }

    /// Raw digest bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Constructs a digest from raw bytes (e.g. a stored hash).
    pub const fn from_bytes(bytes: [u8; 32]) -> Digest {
        Digest(bytes)
    }
}

// Wire format: the raw 32 bytes.
gcl_types::wire_newtype!(Digest);

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Digest({:02x}{:02x}{:02x}{:02x}..)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// Types with a canonical byte encoding for hashing and signing.
///
/// Implementations must be *injective within a protocol's payload domain*:
/// two payloads an honest party distinguishes must absorb different byte
/// streams. The provided combinators (length prefixes, type tags via
/// `absorb_tag`) make that easy.
pub trait Digestible {
    /// Feeds the canonical encoding of `self` into the hasher.
    fn absorb(&self, h: &mut Sha256);
}

/// Helper: absorb a domain-separation / variant tag.
pub(crate) fn absorb_tag(h: &mut Sha256, tag: &str) {
    h.update(&(tag.len() as u32).to_le_bytes());
    h.update(tag.as_bytes());
}

impl Digestible for u8 {
    fn absorb(&self, h: &mut Sha256) {
        h.update(&[*self]);
    }
}

impl Digestible for u32 {
    fn absorb(&self, h: &mut Sha256) {
        h.update(&self.to_le_bytes());
    }
}

impl Digestible for u64 {
    fn absorb(&self, h: &mut Sha256) {
        h.update(&self.to_le_bytes());
    }
}

impl Digestible for bool {
    fn absorb(&self, h: &mut Sha256) {
        h.update(&[u8::from(*self)]);
    }
}

impl Digestible for str {
    fn absorb(&self, h: &mut Sha256) {
        h.update(&(self.len() as u64).to_le_bytes());
        h.update(self.as_bytes());
    }
}

impl Digestible for String {
    fn absorb(&self, h: &mut Sha256) {
        self.as_str().absorb(h);
    }
}

impl Digestible for [u8] {
    fn absorb(&self, h: &mut Sha256) {
        h.update(&(self.len() as u64).to_le_bytes());
        h.update(self);
    }
}

impl<T: Digestible> Digestible for Vec<T> {
    fn absorb(&self, h: &mut Sha256) {
        h.update(&(self.len() as u64).to_le_bytes());
        for item in self {
            item.absorb(h);
        }
    }
}

impl<T: Digestible> Digestible for Option<T> {
    fn absorb(&self, h: &mut Sha256) {
        match self {
            None => h.update(&[0]),
            Some(v) => {
                h.update(&[1]);
                v.absorb(h);
            }
        }
    }
}

impl<T: Digestible + ?Sized> Digestible for &T {
    fn absorb(&self, h: &mut Sha256) {
        (**self).absorb(h);
    }
}

macro_rules! tuple_digestible {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Digestible),+> Digestible for ($($name,)+) {
            fn absorb(&self, h: &mut Sha256) {
                $( self.$idx.absorb(h); )+
            }
        }
    };
}

tuple_digestible!(A: 0);
tuple_digestible!(A: 0, B: 1);
tuple_digestible!(A: 0, B: 1, C: 2);
tuple_digestible!(A: 0, B: 1, C: 2, D: 3);
tuple_digestible!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl Digestible for Value {
    fn absorb(&self, h: &mut Sha256) {
        absorb_tag(h, "value");
        h.update(&self.to_le_bytes());
    }
}

impl Digestible for PartyId {
    fn absorb(&self, h: &mut Sha256) {
        absorb_tag(h, "party");
        h.update(&self.index().to_le_bytes());
    }
}

impl Digestible for View {
    fn absorb(&self, h: &mut Sha256) {
        absorb_tag(h, "view");
        h.update(&self.number().to_le_bytes());
    }
}

impl Digestible for SlotId {
    fn absorb(&self, h: &mut Sha256) {
        absorb_tag(h, "slot");
        h.update(&self.index().to_le_bytes());
    }
}

impl Digestible for Duration {
    fn absorb(&self, h: &mut Sha256) {
        absorb_tag(h, "dur");
        h.update(&self.as_micros().to_le_bytes());
    }
}

impl Digestible for LocalTime {
    fn absorb(&self, h: &mut Sha256) {
        absorb_tag(h, "ltime");
        h.update(&self.as_micros().to_le_bytes());
    }
}

impl Digestible for Digest {
    fn absorb(&self, h: &mut Sha256) {
        absorb_tag(h, "digest");
        h.update(&self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_deterministic() {
        assert_eq!(Digest::of(&42u64), Digest::of(&42u64));
    }

    #[test]
    fn type_tags_separate_domains() {
        // A Value and a View with the same raw number must not collide.
        assert_ne!(Digest::of(&Value::new(5)), Digest::of(&View::new(5)));
        assert_ne!(Digest::of(&PartyId::new(5)), Digest::of(&Value::new(5)));
    }

    #[test]
    fn length_prefix_prevents_concat_ambiguity() {
        assert_ne!(
            Digest::of(&("ab".to_string(), "c".to_string())),
            Digest::of(&("a".to_string(), "bc".to_string()))
        );
        let v1: Vec<u64> = vec![1, 2];
        let v2: Vec<u64> = vec![1, 2, 0];
        assert_ne!(Digest::of(&v1), Digest::of(&v2));
    }

    #[test]
    fn option_encoding() {
        assert_ne!(Digest::of(&Option::<u64>::None), Digest::of(&Some(0u64)));
    }

    #[test]
    fn tuple_ordering_matters() {
        assert_ne!(Digest::of(&(1u64, 2u64)), Digest::of(&(2u64, 1u64)));
    }

    #[test]
    fn display_and_debug() {
        let d = Digest::of(&1u64);
        assert_eq!(d.to_string().len(), 16);
        assert!(format!("{d:?}").starts_with("Digest("));
    }

    #[test]
    fn from_bytes_roundtrip() {
        let d = Digest::of(&9u64);
        assert_eq!(Digest::from_bytes(*d.as_bytes()), d);
    }
}
