//! Transferable equivocation evidence.
//!
//! The paper's key observation for the `(5f−1)` bound (Section 4.1) and for
//! the synchronous commit rules is that, in the authenticated setting,
//! *leader equivocation is detectable and provable*: two messages signed by
//! the same party over conflicting payloads convict the signer. This module
//! packages that proof so it can be forwarded and re-verified.

use crate::digest::Digest;
use crate::keys::{Pki, Signature};
use gcl_types::PartyId;
use serde::{Deserialize, Serialize};

/// Proof that `culprit` signed two different payload digests.
///
/// # Examples
///
/// ```
/// use gcl_crypto::{Digest, EquivocationEvidence, Keychain};
/// use gcl_types::PartyId;
///
/// let chain = Keychain::generate(2, 5);
/// let signer = chain.signer(PartyId::new(0));
/// let (d0, d1) = (Digest::of(&0u64), Digest::of(&1u64));
/// let ev = EquivocationEvidence::new(d0, signer.sign(d0), d1, signer.sign(d1)).unwrap();
/// assert!(ev.verify(&chain.pki()));
/// assert_eq!(ev.culprit(), PartyId::new(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EquivocationEvidence {
    digest_a: Digest,
    sig_a: Signature,
    digest_b: Digest,
    sig_b: Signature,
}

// Wire format: the four fields in order. Decoding skips the `new`
// invariant on purpose — received evidence is untrusted input, and
// `verify` re-checks both the distinct-digest and signature conditions.
gcl_types::wire_struct!(EquivocationEvidence {
    digest_a,
    sig_a,
    digest_b,
    sig_b
});

impl EquivocationEvidence {
    /// Assembles evidence from two signed digests.
    ///
    /// Returns `None` when the pair is not actually equivocation: different
    /// signers, or identical digests.
    pub fn new(
        digest_a: Digest,
        sig_a: Signature,
        digest_b: Digest,
        sig_b: Signature,
    ) -> Option<Self> {
        if sig_a.signer() != sig_b.signer() || digest_a == digest_b {
            return None;
        }
        Some(EquivocationEvidence {
            digest_a,
            sig_a,
            digest_b,
            sig_b,
        })
    }

    /// The convicted signer.
    pub fn culprit(&self) -> PartyId {
        self.sig_a.signer()
    }

    /// Re-verifies both signatures (for received, untrusted evidence).
    pub fn verify(&self, pki: &Pki) -> bool {
        self.digest_a != self.digest_b
            && pki.verify_embedded(self.digest_a, &self.sig_a)
            && pki.verify_embedded(self.digest_b, &self.sig_b)
    }

    /// The two conflicting digests.
    pub fn digests(&self) -> (Digest, Digest) {
        (self.digest_a, self.digest_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keychain;

    #[test]
    fn valid_evidence_verifies() {
        let chain = Keychain::generate(3, 1);
        let s = chain.signer(PartyId::new(2));
        let (d0, d1) = (Digest::of(&0u64), Digest::of(&1u64));
        let ev = EquivocationEvidence::new(d0, s.sign(d0), d1, s.sign(d1)).unwrap();
        assert!(ev.verify(&chain.pki()));
        assert_eq!(ev.culprit(), PartyId::new(2));
        assert_eq!(ev.digests(), (d0, d1));
    }

    #[test]
    fn same_digest_is_not_equivocation() {
        let chain = Keychain::generate(2, 1);
        let s = chain.signer(PartyId::new(0));
        let d = Digest::of(&7u64);
        assert!(EquivocationEvidence::new(d, s.sign(d), d, s.sign(d)).is_none());
    }

    #[test]
    fn different_signers_rejected() {
        let chain = Keychain::generate(2, 1);
        let (d0, d1) = (Digest::of(&0u64), Digest::of(&1u64));
        let a = chain.signer(PartyId::new(0)).sign(d0);
        let b = chain.signer(PartyId::new(1)).sign(d1);
        assert!(EquivocationEvidence::new(d0, a, d1, b).is_none());
    }

    #[test]
    fn forged_signature_fails_verify() {
        let chain = Keychain::generate(2, 1);
        let other_chain = Keychain::generate(2, 99);
        let (d0, d1) = (Digest::of(&0u64), Digest::of(&1u64));
        let s = other_chain.signer(PartyId::new(0));
        let ev = EquivocationEvidence::new(d0, s.sign(d0), d1, s.sign(d1)).unwrap();
        assert!(!ev.verify(&chain.pki()), "wrong key universe");
    }
}
