//! Amortized signature verification: verify-once caches for MACs and
//! composite artifacts (chains, certs).
//!
//! The protocols in this workspace re-deliver the same signed artifacts many
//! times — Dolev–Strong relays carry ever-growing chains past every party,
//! brb2 `Forward` bundles repeat votes the receiver already holds, and a
//! quorum cert arrives once per sender. Recomputing a SHA-256 MAC per
//! signature per delivery makes crypto the dominant hot-path cost (~30x
//! below the structural ceiling in `BENCH_sim.json`).
//!
//! [`Verifier`] removes that cost without changing a single verdict:
//!
//! * **Signature cache** — keyed by `(signer, digest)`, storing the
//!   *recomputed true MAC* for that pair. A hit answers any claimed
//!   signature by byte-comparing the stored MAC against the claimed one, so
//!   the verdict covers the exact `(signer, digest, mac)` tuple and is
//!   byte-identical to recomputation for positives **and** negatives alike:
//!   caching cannot weaken unforgeability. (MACs here are deterministic —
//!   one valid MAC exists per `(signer, digest)` — which is what makes a
//!   single stored value a complete oracle for that pair.)
//! * **Memo cache** — maps an artifact fingerprint (a [`MemoTag`]-prefixed
//!   byte key built from the artifact's wire encoding) to the boolean
//!   verdict a full verification produced. Protocols use it to make cert
//!   and chain re-verification O(1) on re-delivery; because the key covers
//!   every input the verdict depends on (config, validity rule, exact
//!   signature bytes), a hit is again byte-identical to recomputation.
//!
//! Both caches are bounded with deterministic FIFO eviction, so memory is
//! O(capacity) regardless of run length and behavior is identical at any
//! thread count. The caches are per-[`Verifier`] (per party instance);
//! nothing is shared across parties, keeping [`Verifier`] `Send` for
//! thread-per-party backends.
//!
//! The [`Verify`] trait abstracts over [`Pki`] (always recompute) and
//! [`Verifier`] (amortize), so protocol helpers accept either.

use crate::digest::Digest;
use crate::keys::{Pki, Signature};
use gcl_types::PartyId;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Deterministic multiply-rotate hasher for the verify-cache maps.
///
/// Every cache key embeds a SHA-256 output (a [`Digest`], or a memo key
/// containing exact signature bytes), so the key material is already
/// uniformly distributed and attacker-shaped input cannot engineer bucket
/// collisions any more easily than it can engineer digest collisions.
/// That makes SipHash's keyed collision resistance pure overhead on the
/// per-delivery hot path; this hasher is a handful of arithmetic ops per
/// word instead. It has no per-process random state, so bucket layout —
/// like every cache *verdict* — is identical across runs.
#[derive(Default)]
pub(crate) struct CacheHasher {
    hash: u64,
}

impl CacheHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for CacheHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

pub(crate) type CacheHash = BuildHasherDefault<CacheHasher>;

/// Default bound on cached `(signer, digest) → mac` entries per verifier.
pub const DEFAULT_SIG_CAPACITY: usize = 1 << 16;

/// Default bound on memoized artifact verdicts per verifier.
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 12;

/// Verification oracle: can a claimed signature be attributed to a party?
///
/// Implemented by [`Pki`] / `Arc<Pki>` (recompute every time) and
/// [`Verifier`] (amortize). Protocol verify-helpers take `&impl Verify` so
/// both plug in; the contract is that every implementation returns exactly
/// what [`Pki::verify`] returns.
pub trait Verify {
    /// Verifies that `sig` is `claimed`'s signature over `digest`.
    fn verify(&self, claimed: PartyId, digest: Digest, sig: &Signature) -> bool;

    /// Verifies a signature against its embedded signer id.
    fn verify_embedded(&self, digest: Digest, sig: &Signature) -> bool {
        self.verify(sig.signer(), digest, sig)
    }

    /// Looks up a memoized artifact verdict. `None` for uncached
    /// implementations (the default), which makes [`Verify::memoized`]
    /// recompute every time — semantically identical, just slower.
    fn memo_check(&self, key: &[u8]) -> Option<bool> {
        let _ = key;
        None
    }

    /// Records an artifact verdict for later [`Verify::memo_check`] hits.
    fn memo_store(&self, key: Vec<u8>, verdict: bool) {
        let _ = (key, verdict);
    }

    /// Returns the memoized verdict for `key`, computing and recording it
    /// on a miss. `compute` must be a pure function of the bytes in `key` —
    /// the caller's side of the soundness contract.
    fn memoized(&self, key: Vec<u8>, compute: impl FnOnce() -> bool) -> bool
    where
        Self: Sized,
    {
        if let Some(verdict) = self.memo_check(&key) {
            return verdict;
        }
        let verdict = compute();
        self.memo_store(key, verdict);
        verdict
    }
}

impl Verify for Pki {
    fn verify(&self, claimed: PartyId, digest: Digest, sig: &Signature) -> bool {
        Pki::verify(self, claimed, digest, sig)
    }
}

impl Verify for Arc<Pki> {
    fn verify(&self, claimed: PartyId, digest: Digest, sig: &Signature) -> bool {
        Pki::verify(self, claimed, digest, sig)
    }
}

/// Namespace byte prefixed to every memo key so verdicts for different
/// artifact kinds can never collide, even on identical payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MemoTag {
    /// Dolev–Strong relay chain over a digest.
    Chain = 1,
    /// `psync::cert` assembled certificate.
    Cert = 2,
    /// `psync` status message (certificate + carrier signature).
    Status = 3,
    /// [`crate::QuorumCert`] signature-set validity.
    QuorumCert = 4,
    /// `pbft3` prepared certificate.
    Prepared = 5,
    /// `pbft3` view-change message.
    ViewChange = 6,
}

impl MemoTag {
    /// Starts a memo key: the tag byte followed by `reserve` spare bytes of
    /// capacity for the artifact fingerprint.
    pub fn key(self, reserve: usize) -> Vec<u8> {
        let mut key = Vec::with_capacity(1 + reserve);
        key.push(self as u8);
        key
    }
}

/// Shared counters a [`Verifier`] flushes into when dropped: MACs actually
/// computed vs. verifications answered from a cache.
///
/// Every verifier also flushes into a process-global probe (see
/// [`VerifyProbe::global`]), which the bench binaries — single verifier
/// population at a time, runs strictly sequential — read as per-run deltas.
/// Tests that need isolation attach their own probe via
/// [`Verifier::with_probe`].
#[derive(Debug, Default)]
pub struct VerifyProbe {
    macs: AtomicU64,
    hits: AtomicU64,
}

impl VerifyProbe {
    /// A fresh zeroed probe.
    pub const fn new() -> Self {
        VerifyProbe {
            macs: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The process-global probe. Meaningful only when reads bracket a
    /// sequential workload (as in the bench bins); parallel test runs share
    /// it, so assertions belong on per-test probes instead.
    pub fn global() -> &'static VerifyProbe {
        static GLOBAL: VerifyProbe = VerifyProbe::new();
        &GLOBAL
    }

    /// MAC computations flushed so far.
    pub fn macs(&self) -> u64 {
        self.macs.load(Ordering::Relaxed)
    }

    /// Cache hits (signature + memo) flushed so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn add(&self, macs: u64, hits: u64) {
        self.macs.fetch_add(macs, Ordering::Relaxed);
        self.hits.fetch_add(hits, Ordering::Relaxed);
    }
}

/// A bounded map with deterministic first-in-first-out eviction.
///
/// Insertion order (not hash order) decides evictions, so cache contents —
/// and therefore hit/miss counters — are identical across runs and thread
/// counts. Verdicts never depend on cache state at all; only speed does.
#[derive(Debug)]
pub(crate) struct BoundedMap<K, V> {
    map: HashMap<K, V, CacheHash>,
    order: VecDeque<K>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> BoundedMap<K, V> {
    pub(crate) fn new(capacity: usize) -> Self {
        BoundedMap {
            map: HashMap::default(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    pub(crate) fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    pub(crate) fn insert(&mut self, key: K, value: V) {
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
            if self.order.len() > self.capacity {
                if let Some(oldest) = self.order.pop_front() {
                    self.map.remove(&oldest);
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// An amortizing verification handle wrapping a shared [`Pki`].
///
/// One per party instance (protocols own it the way they used to own an
/// `Arc<Pki>`); see the [module docs](self) for the cache design and the
/// soundness argument. Constructible from an `Arc<Pki>` via `From`, so
/// existing `Protocol::new(..., keychain.pki(), ...)` call sites compile
/// unchanged against constructors taking `impl Into<Verifier>`.
pub struct Verifier {
    pki: Arc<Pki>,
    sigs: RefCell<BoundedMap<(PartyId, Digest), [u8; 32]>>,
    memo: RefCell<BoundedMap<Box<[u8]>, bool>>,
    macs: Cell<u64>,
    hits: Cell<u64>,
    probe: Option<Arc<VerifyProbe>>,
}

impl Verifier {
    /// A verifier with default cache bounds.
    pub fn new(pki: Arc<Pki>) -> Self {
        Self::with_capacity(pki, DEFAULT_SIG_CAPACITY, DEFAULT_MEMO_CAPACITY)
    }

    /// A verifier with explicit cache bounds (min 1 each); used by tests to
    /// exercise eviction boundaries.
    pub fn with_capacity(pki: Arc<Pki>, sig_capacity: usize, memo_capacity: usize) -> Self {
        Verifier {
            pki,
            sigs: RefCell::new(BoundedMap::new(sig_capacity)),
            memo: RefCell::new(BoundedMap::new(memo_capacity)),
            macs: Cell::new(0),
            hits: Cell::new(0),
            probe: None,
        }
    }

    /// Attaches a probe that receives this verifier's counters on drop (in
    /// addition to the process-global probe).
    pub fn with_probe(mut self, probe: Arc<VerifyProbe>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// The underlying verification-only key material.
    pub fn pki(&self) -> &Arc<Pki> {
        &self.pki
    }

    /// MAC computations this verifier has performed so far.
    pub fn macs_computed(&self) -> u64 {
        self.macs.get()
    }

    /// Verifications this verifier has answered from a cache so far.
    pub fn cache_hits(&self) -> u64 {
        self.hits.get()
    }

    /// Number of live entries in the signature cache (tests).
    pub fn sig_cache_len(&self) -> usize {
        self.sigs.borrow().len()
    }

    /// The true MAC for `(claimed, digest)`, from cache or recomputed.
    /// `None` exactly when `claimed` is out of range.
    fn true_mac(&self, claimed: PartyId, digest: Digest) -> Option<[u8; 32]> {
        // First level: the `Pki`-wide cache shared by every verifier over
        // the same key universe. `true_mac` is a pure function of the keys,
        // so a MAC one party recomputed answers every other party's lookup
        // byte-identically — in an n-party run the first verifier pays the
        // hash, the other n-1 take a shared hit (43k computes collapse to
        // ~n on the brb2 quorum path). Checked before the local map: the
        // dominant workloads verify each pair once per party, so the local
        // lookup would be a guaranteed miss paying a second key hash.
        let key = (claimed, digest);
        if let Some(mac) = self.pki.shared_mac_lookup(claimed, digest) {
            self.hits.set(self.hits.get() + 1);
            return Some(mac);
        }
        // Second level: this verifier's own map — only consulted on a
        // shared miss, i.e. after FIFO eviction at the shared level. Still
        // sized to hold a protocol instance's working set, so eviction of a
        // hot pair from the shared map costs a lock-free lookup, not a
        // recompute.
        if let Some(mac) = self.sigs.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            return Some(*mac);
        }
        let mac = self.pki.shared_mac_store(claimed, digest)?;
        self.macs.set(self.macs.get() + 1);
        self.sigs.borrow_mut().insert(key, mac);
        Some(mac)
    }
}

impl Verify for Verifier {
    /// Byte-identical to [`Pki::verify`]: signer-field mismatch and
    /// out-of-range ids are `false` without touching the cache; otherwise
    /// the claimed MAC is compared against the true MAC for
    /// `(claimed, digest)` — cached or freshly computed, the comparison is
    /// the same.
    fn verify(&self, claimed: PartyId, digest: Digest, sig: &Signature) -> bool {
        if sig.signer() != claimed {
            return false;
        }
        match self.true_mac(claimed, digest) {
            Some(mac) => mac == *sig.mac_bytes(),
            None => false,
        }
    }

    fn memo_check(&self, key: &[u8]) -> Option<bool> {
        // Box<[u8]> and [u8] hash/compare identically; the allocation-free
        // lookup needs only a borrow of the key bytes.
        let verdict = self.memo.borrow().map.get(key).copied();
        if verdict.is_some() {
            self.hits.set(self.hits.get() + 1);
        }
        verdict
    }

    fn memo_store(&self, key: Vec<u8>, verdict: bool) {
        self.memo
            .borrow_mut()
            .insert(key.into_boxed_slice(), verdict);
    }
}

impl From<Arc<Pki>> for Verifier {
    fn from(pki: Arc<Pki>) -> Self {
        Verifier::new(pki)
    }
}

impl fmt::Debug for Verifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Verifier(n={}, sigs={}, macs={}, hits={})",
            self.pki.n(),
            self.sigs.borrow().len(),
            self.macs.get(),
            self.hits.get()
        )
    }
}

impl Drop for Verifier {
    fn drop(&mut self) {
        let (macs, hits) = (self.macs.get(), self.hits.get());
        if macs == 0 && hits == 0 {
            return;
        }
        VerifyProbe::global().add(macs, hits);
        if let Some(probe) = &self.probe {
            probe.add(macs, hits);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keychain;

    fn digest(x: u64) -> Digest {
        Digest::of(&x)
    }

    #[test]
    fn cached_verify_matches_pki() {
        let chain = Keychain::generate(4, 11);
        let v = Verifier::new(chain.pki());
        let pki = chain.pki();
        let sig = chain.signer(PartyId::new(2)).sign(digest(7));
        for _ in 0..3 {
            // Valid, wrong claimed party, wrong digest, out of range.
            assert!(v.verify(PartyId::new(2), digest(7), &sig));
            assert!(!v.verify(PartyId::new(1), digest(7), &sig));
            assert!(!v.verify(PartyId::new(2), digest(8), &sig));
            assert!(!v.verify(PartyId::new(9), digest(7), &sig));
            assert_eq!(
                v.verify(PartyId::new(2), digest(7), &sig),
                pki.verify(PartyId::new(2), digest(7), &sig)
            );
        }
        // Repeats after the first round were answered from cache.
        assert!(v.cache_hits() > 0);
        assert!(
            v.macs_computed() <= 2,
            "one MAC per distinct (party, digest)"
        );
    }

    #[test]
    fn negative_hit_is_cached_too() {
        let chain = Keychain::generate(3, 12);
        let other = Keychain::generate(3, 13);
        let v = Verifier::new(chain.pki());
        // Cross-universe signature: same signer id, different key material.
        let forged = other.signer(PartyId::new(0)).sign(digest(1));
        assert!(!v.verify(PartyId::new(0), digest(1), &forged));
        let macs = v.macs_computed();
        assert!(!v.verify(PartyId::new(0), digest(1), &forged));
        assert_eq!(v.macs_computed(), macs, "negative answered from cache");
        // The genuine signature over the same pair hits the same entry.
        let real = chain.signer(PartyId::new(0)).sign(digest(1));
        assert!(v.verify(PartyId::new(0), digest(1), &real));
        assert_eq!(v.macs_computed(), macs);
    }

    #[test]
    fn fifo_eviction_keeps_verdicts_exact() {
        let chain = Keychain::generate(2, 14);
        let v = Verifier::with_capacity(chain.pki(), 2, 2);
        let sigs: Vec<_> = (0..5)
            .map(|i| chain.signer(PartyId::new(0)).sign(digest(i)))
            .collect();
        for round in 0..3 {
            for (i, sig) in sigs.iter().enumerate() {
                assert!(
                    v.verify(PartyId::new(0), digest(i as u64), sig),
                    "round {round}"
                );
                assert!(!v.verify(PartyId::new(0), digest(99), sig));
            }
            assert!(v.sig_cache_len() <= 2);
        }
    }

    #[test]
    fn memoized_artifact_verdicts() {
        let chain = Keychain::generate(2, 15);
        let v = Verifier::new(chain.pki());
        let mut computes = 0;
        let key = MemoTag::Chain.key(4);
        for _ in 0..3 {
            let verdict = v.memoized(key.clone(), || {
                computes += 1;
                true
            });
            assert!(verdict);
        }
        assert_eq!(computes, 1, "computed once, then memoized");
        // A different tag over the same payload bytes is a different key.
        let other = MemoTag::Cert.key(4);
        assert_eq!(v.memo_check(&other), None);
    }

    #[test]
    fn memo_eviction_recomputes() {
        let chain = Keychain::generate(2, 16);
        let v = Verifier::with_capacity(chain.pki(), 4, 1);
        let mut key_a = MemoTag::Chain.key(1);
        key_a.push(0xa);
        let mut key_b = MemoTag::Chain.key(1);
        key_b.push(0xb);
        assert!(v.memoized(key_a.clone(), || true));
        assert!(!v.memoized(key_b, || false)); // evicts key_a
        let mut recomputed = false;
        assert!(v.memoized(key_a, || {
            recomputed = true;
            true
        }));
        assert!(recomputed, "evicted entry is recomputed, same verdict");
    }

    #[test]
    fn pki_and_arc_pki_implement_verify_uncached() {
        let chain = Keychain::generate(2, 17);
        let sig = chain.signer(PartyId::new(1)).sign(digest(3));
        fn check(v: &impl Verify, sig: &Signature) -> bool {
            v.memo_check(b"anything").is_none() && v.verify_embedded(digest(3), sig)
        }
        assert!(check(&chain.pki(), &sig)); // &Arc<Pki>
        assert!(check(chain.pki().as_ref(), &sig)); // &Pki
    }

    #[test]
    fn probe_collects_on_drop() {
        let chain = Keychain::generate(2, 18);
        let probe = Arc::new(VerifyProbe::new());
        let v = Verifier::new(chain.pki()).with_probe(Arc::clone(&probe));
        let sig = chain.signer(PartyId::new(0)).sign(digest(1));
        assert!(v.verify(PartyId::new(0), digest(1), &sig));
        assert!(v.verify(PartyId::new(0), digest(1), &sig));
        assert_eq!(probe.macs(), 0, "not flushed until drop");
        drop(v);
        assert_eq!(probe.macs(), 1);
        assert_eq!(probe.hits(), 1);
    }

    #[test]
    fn keychain_verifier_accessor() {
        let chain = Keychain::generate(3, 19);
        let v = chain.verifier();
        let sig = chain.signer(PartyId::new(2)).sign(digest(4));
        assert!(v.verify_embedded(digest(4), &sig));
        assert!(format!("{v:?}").starts_with("Verifier(n=3"));
    }

    /// The issue's core equivalence body: over random valid / forged /
    /// cross-universe signatures — and across cache-eviction churn on a
    /// tiny cache — `Verifier` answers exactly as raw `Pki::verify`.
    fn check_verifier_equals_pki(seed: u64, payloads: Vec<u64>) -> bool {
        let chain = Keychain::generate(3, seed);
        let foreign = Keychain::generate(3, seed.wrapping_add(1));
        let pki = chain.pki();
        let tiny = Verifier::with_capacity(chain.pki(), 2, 2);
        let roomy = Verifier::new(chain.pki());
        for packed in payloads {
            // One packed case: signer, claimed (sometimes out of range),
            // payload (small space forces cache reuse), cross-universe flag.
            let signer = PartyId::new((packed % 3) as u32);
            let claimed = PartyId::new(((packed >> 2) % 4) as u32);
            let d = digest((packed >> 4) % 8);
            let source = if packed & (1 << 63) != 0 {
                &foreign
            } else {
                &chain
            };
            let sig = source.signer(signer).sign(d);
            let expected = pki.verify(claimed, d, &sig);
            let expected_embedded = pki.verify_embedded(d, &sig);
            if tiny.verify(claimed, d, &sig) != expected
                || roomy.verify(claimed, d, &sig) != expected
                || tiny.verify_embedded(d, &sig) != expected_embedded
                || roomy.verify_embedded(d, &sig) != expected_embedded
            {
                return false;
            }
        }
        true
    }

    proptest::proptest! {
        #[test]
        fn verifier_equals_pki(seed: u64, payloads: Vec<u64>) {
            proptest::prop_assert!(check_verifier_equals_pki(seed, payloads));
        }
    }
}
