//! Authentication substrate for the `gcl` workspace.
//!
//! The paper assumes "(perfect) digital signatures and public-key
//! infrastructure (PKI)" with *ideal unforgeability* (Section 2). Inside a
//! closed simulation we realize that ideal directly:
//!
//! * [`Sha256`] — a from-scratch FIPS 180-4 SHA-256, tested against the
//!   standard vectors (no external crypto dependency).
//! * [`Keychain`] / [`Signer`] / [`Pki`] — deterministic MAC-style
//!   signatures. The [`Pki`] holds every key but only ever exposes
//!   *verification*; producing a signature for party `i` requires the
//!   [`Signer`] for `i`. Since the simulator hands each party (honest or
//!   Byzantine) only its own signer, unforgeability holds **by
//!   construction**: adversarial code can replay signatures it has observed
//!   (allowed in the paper's model) but cannot mint new ones.
//! * [`Digestible`] — canonical hashing of protocol payloads without a
//!   serialization framework (protocol messages stay plain Rust values).
//! * [`QuorumCert`] — multi-signature accumulation with distinct-signer
//!   counting, used by every voting protocol.
//! * [`Verifier`] / [`Verify`] — amortized verification: bounded
//!   verify-once caches for MACs and composite artifacts whose hits are
//!   byte-identical to recomputation (see the [`verify`](crate::Verifier)
//!   module docs for the soundness argument), plus a [`VerifyProbe`]
//!   counting MACs vs. cache hits for the bench rows.
//! * [`EquivocationEvidence`] — a transferable proof that one signer signed
//!   two conflicting payloads; the `(5f−1)`-psync-VBB and the synchronous
//!   protocols key their commit rules on detecting exactly this.
//!
//! # Examples
//!
//! ```
//! use gcl_crypto::{Digest, Keychain};
//! use gcl_types::PartyId;
//!
//! let chain = Keychain::generate(4, 42);
//! let signer = chain.signer(PartyId::new(1));
//! let digest = Digest::of(&("vote", 7u64));
//! let sig = signer.sign(digest);
//! assert!(chain.pki().verify(PartyId::new(1), digest, &sig));
//! assert!(!chain.pki().verify(PartyId::new(2), digest, &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cert;
mod digest;
mod evidence;
mod keys;
mod sha256;
mod verify;

pub use cert::QuorumCert;
pub use digest::{Digest, Digestible};
pub use evidence::EquivocationEvidence;
pub use keys::{Keychain, Pki, Signature, Signer};
pub use sha256::Sha256;
pub use verify::{MemoTag, Verifier, Verify, VerifyProbe};
