//! Simulated-clock newtypes.
//!
//! The paper (Section 2) distinguishes the *actual* per-execution delay bound
//! `δ` from the *conservative* model bound `Δ`, and distinguishes each
//! party's *local* clock (which starts at 0 when the party starts the
//! protocol, possibly skewed) from the *global* clock of the execution.
//! Mixing those up is the classic source of off-by-σ bugs, so local and
//! global instants are separate types here and only convert through an
//! explicit start offset.
//!
//! All quantities are integer **microseconds**.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use gcl_types::Duration;
/// let delta = Duration::from_micros(1_000);
/// assert_eq!((delta * 3) / 2, Duration::from_micros(1_500));
/// assert_eq!(delta.halved(), Duration::from_micros(500));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Duration(u64);

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000)
    }

    /// Returns the duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Half of this duration, rounding down.
    ///
    /// The `(Δ+1.5δ)`-BB protocol (Figure 9) manipulates `0.5 d` terms;
    /// scenarios should pick even parameters so halving is exact.
    #[must_use]
    pub const fn halved(self) -> Duration {
        Duration(self.0 / 2)
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Checked division by an integer, used to build discretization grids.
    #[must_use]
    pub const fn div_ceil(self, rhs: u64) -> Duration {
        Duration(self.0.div_ceil(rhs))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

/// An instant on the *global* (execution) clock.
///
/// Global time 0 is the instant the earliest party starts the protocol.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct GlobalTime(u64);

impl GlobalTime {
    /// The execution origin.
    pub const ZERO: GlobalTime = GlobalTime(0);

    /// Creates a global instant from microseconds since origin.
    pub const fn from_micros(micros: u64) -> Self {
        GlobalTime(micros)
    }

    /// Microseconds since the execution origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Elapsed global time since `earlier`; saturates at zero.
    #[must_use]
    pub const fn since(self, earlier: GlobalTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Converts to the local clock of a party that started at `start`.
    ///
    /// Returns `None` if this instant is before the party started.
    pub fn to_local(self, start: GlobalTime) -> Option<LocalTime> {
        self.0.checked_sub(start.0).map(LocalTime)
    }
}

impl fmt::Display for GlobalTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g+{}us", self.0)
    }
}

impl Add<Duration> for GlobalTime {
    type Output = GlobalTime;
    fn add(self, rhs: Duration) -> GlobalTime {
        GlobalTime(self.0 + rhs.0)
    }
}

/// An instant on one party's *local* clock (0 = that party's protocol start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LocalTime(u64);

impl LocalTime {
    /// The party's protocol start.
    pub const ZERO: LocalTime = LocalTime(0);

    /// Creates a local instant from microseconds since the party's start.
    pub const fn from_micros(micros: u64) -> Self {
        LocalTime(micros)
    }

    /// Microseconds since the party's start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Elapsed local time since `earlier`; saturates at zero.
    #[must_use]
    pub const fn since(self, earlier: LocalTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Converts to global time for a party that started at `start`.
    pub fn to_global(self, start: GlobalTime) -> GlobalTime {
        GlobalTime(start.0 + self.0)
    }
}

impl fmt::Display for LocalTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l+{}us", self.0)
    }
}

impl Add<Duration> for LocalTime {
    type Output = LocalTime;
    fn add(self, rhs: Duration) -> LocalTime {
        LocalTime(self.0 + rhs.0)
    }
}

/// Per-party protocol start offsets — the clock-skew model of Section 2.
///
/// In the *synchronized start* model every offset is zero; in the
/// *unsynchronized start* model offsets are bounded by the skew `σ`.
///
/// # Examples
///
/// ```
/// use gcl_types::{Duration, GlobalTime, PartyId, SkewSchedule};
/// let sched = SkewSchedule::synchronized(4);
/// assert_eq!(sched.start_of(PartyId::new(2)), GlobalTime::ZERO);
/// assert_eq!(sched.max_skew(), Duration::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkewSchedule {
    starts: Vec<GlobalTime>,
}

impl SkewSchedule {
    /// All `n` parties start at global time 0 (σ = 0).
    pub fn synchronized(n: usize) -> Self {
        SkewSchedule {
            starts: vec![GlobalTime::ZERO; n],
        }
    }

    /// Explicit start instants, one per party.
    ///
    /// # Panics
    ///
    /// Panics if `starts` is empty.
    pub fn from_starts(starts: Vec<GlobalTime>) -> Self {
        assert!(!starts.is_empty(), "at least one party required");
        SkewSchedule { starts }
    }

    /// Every party starts at 0 except those listed, which start late.
    pub fn with_late_parties(n: usize, late: &[(PartyId, Duration)]) -> Self {
        let mut starts = vec![GlobalTime::ZERO; n];
        for (p, d) in late {
            starts[p.as_usize()] = GlobalTime::ZERO + *d;
        }
        SkewSchedule { starts }
    }

    /// Number of parties covered.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True when no party is covered (never constructible via public API).
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// The global instant at which `party` starts its protocol and clock.
    pub fn start_of(&self, party: PartyId) -> GlobalTime {
        self.starts[party.as_usize()]
    }

    /// The realized skew σ = max start − min start.
    pub fn max_skew(&self) -> Duration {
        let max = self
            .starts
            .iter()
            .max()
            .copied()
            .unwrap_or(GlobalTime::ZERO);
        let min = self
            .starts
            .iter()
            .min()
            .copied()
            .unwrap_or(GlobalTime::ZERO);
        max.since(min)
    }
}

use crate::PartyId;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_arithmetic() {
        let d = Duration::from_millis(1);
        assert_eq!(d.as_micros(), 1_000);
        assert_eq!(d + d, Duration::from_micros(2_000));
        assert_eq!(d - Duration::from_micros(400), Duration::from_micros(600));
        assert_eq!(d * 2, Duration::from_micros(2_000));
        assert_eq!(d / 4, Duration::from_micros(250));
        assert_eq!(d.halved(), Duration::from_micros(500));
    }

    #[test]
    fn duration_saturating() {
        assert_eq!(
            Duration::from_micros(3).saturating_sub(Duration::from_micros(5)),
            Duration::ZERO
        );
    }

    #[test]
    fn local_global_conversion() {
        let start = GlobalTime::from_micros(100);
        let l = LocalTime::from_micros(50);
        let g = l.to_global(start);
        assert_eq!(g, GlobalTime::from_micros(150));
        assert_eq!(g.to_local(start), Some(l));
        assert_eq!(GlobalTime::from_micros(50).to_local(start), None);
    }

    #[test]
    fn since_saturates() {
        let a = GlobalTime::from_micros(10);
        let b = GlobalTime::from_micros(30);
        assert_eq!(b.since(a), Duration::from_micros(20));
        assert_eq!(a.since(b), Duration::ZERO);
    }

    #[test]
    fn skew_schedule_synchronized() {
        let s = SkewSchedule::synchronized(3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.max_skew(), Duration::ZERO);
    }

    #[test]
    fn skew_schedule_late_parties() {
        let s =
            SkewSchedule::with_late_parties(3, &[(PartyId::new(2), Duration::from_micros(500))]);
        assert_eq!(s.start_of(PartyId::new(0)), GlobalTime::ZERO);
        assert_eq!(s.start_of(PartyId::new(2)), GlobalTime::from_micros(500));
        assert_eq!(s.max_skew(), Duration::from_micros(500));
    }

    #[test]
    fn display_impls() {
        assert_eq!(Duration::from_micros(5).to_string(), "5us");
        assert_eq!(GlobalTime::from_micros(5).to_string(), "g+5us");
        assert_eq!(LocalTime::from_micros(5).to_string(), "l+5us");
    }
}
