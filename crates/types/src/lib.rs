//! Common vocabulary types shared by every crate in the `gcl` workspace.
//!
//! This crate defines the identities, values, clocks and resilience
//! configuration used by the broadcast protocols of
//! *"Good-case Latency of Byzantine Broadcast: A Complete Categorization"*
//! (Abraham, Nayak, Ren, Xiang — PODC 2021).
//!
//! Everything here is deliberately small, `Copy` where possible, and free of
//! protocol logic: protocols live in `gcl-core`, the execution substrate in
//! `gcl-sim`.
//!
//! # Examples
//!
//! ```
//! use gcl_types::{Config, PartyId, ResilienceRegime, Value};
//!
//! let cfg = Config::new(4, 1).unwrap();
//! assert_eq!(cfg.quorum(), 3); // n - f
//! assert_eq!(cfg.regime(), ResilienceRegime::UnderThird);
//! let v = Value::new(42);
//! assert_eq!(v.as_u64(), 42);
//! let p: PartyId = PartyId::new(0);
//! assert!(cfg.parties().any(|q| q == p));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod config;
mod error;
mod id;
mod time;
mod validity;
mod value;
pub mod wire;

pub use batch::Batch;
pub use config::{Config, ResilienceRegime};
pub use error::{ConfigError, ProtocolError};
pub use id::{PartyId, View};
pub use time::{Duration, GlobalTime, LocalTime, SkewSchedule};
pub use validity::{accept_all, ExternalValidity};
pub use value::{SlotId, Value};
pub use wire::{Decode, Encode, WireError, WireMsg};
