//! Batched SMR proposals.
//!
//! One slot of the SMR log decides one [`Batch`], not one command: the
//! 2-round good case of the `(5f-1)` engine is amortized across every
//! command the leader pulled from its mempool. The batch also carries the
//! log's termination marker — a [`Batch::Seal`] closes the log, replacing
//! the old "replicas know `workload.len()` in advance" rule.

use crate::value::Value;
use crate::wire::{Decode, Encode, WireError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What one SMR slot decides.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Batch {
    /// An ordered run of client commands (possibly empty — a no-op filler).
    Commands(Vec<Value>),
    /// The explicit end-of-log marker: replicas that apply a seal snapshot
    /// their state digest and terminate.
    Seal,
}

impl Batch {
    /// An empty command batch — the filler a slot decides when its leader
    /// had nothing to propose.
    pub const fn no_op() -> Self {
        Batch::Commands(Vec::new())
    }

    /// Whether this batch carries zero commands (and is not a seal).
    pub fn is_no_op(&self) -> bool {
        matches!(self, Batch::Commands(cmds) if cmds.is_empty())
    }

    /// Whether this is the end-of-log seal.
    pub const fn is_seal(&self) -> bool {
        matches!(self, Batch::Seal)
    }

    /// The commands carried (empty for no-ops and seals).
    pub fn commands(&self) -> &[Value] {
        match self {
            Batch::Commands(cmds) => cmds,
            Batch::Seal => &[],
        }
    }

    /// Number of commands carried.
    pub fn len(&self) -> usize {
        self.commands().len()
    }

    /// Whether the batch carries no commands.
    pub fn is_empty(&self) -> bool {
        self.commands().is_empty()
    }
}

const TAG_COMMANDS: u8 = 0;
const TAG_SEAL: u8 = 1;

impl Encode for Batch {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Batch::Commands(cmds) => {
                buf.push(TAG_COMMANDS);
                cmds.encode(buf);
            }
            Batch::Seal => buf.push(TAG_SEAL),
        }
    }
}

impl Decode for Batch {
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            TAG_COMMANDS => Ok(Batch::Commands(Vec::decode(input)?)),
            TAG_SEAL => Ok(Batch::Seal),
            tag => Err(WireError::BadTag { ty: "Batch", tag }),
        }
    }
}

impl fmt::Display for Batch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Batch::Seal => write!(f, "seal"),
            Batch::Commands(cmds) if cmds.is_empty() => write!(f, "no-op"),
            Batch::Commands(cmds) => write!(f, "batch[{}]", cmds.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_round_trips() {
        let cases = [
            Batch::no_op(),
            Batch::Commands(vec![Value::new(1)]),
            Batch::Commands((0..300).map(Value::new).collect()),
            Batch::Commands(vec![Value::new(u64::MAX - 1), Value::ZERO]),
            Batch::Seal,
        ];
        for b in cases {
            let bytes = b.to_wire();
            assert_eq!(Batch::from_wire(&bytes).unwrap(), b);
        }
    }

    #[test]
    fn seal_and_noop_encodings_differ() {
        assert_ne!(Batch::Seal.to_wire(), Batch::no_op().to_wire());
        assert!(Batch::Seal.is_seal() && !Batch::Seal.is_no_op());
        assert!(Batch::no_op().is_no_op() && !Batch::no_op().is_seal());
        assert!(Batch::Seal.commands().is_empty());
    }

    #[test]
    fn bad_tag_and_truncation_rejected() {
        assert!(matches!(
            Batch::from_wire(&[9]),
            Err(WireError::BadTag { ty: "Batch", .. })
        ));
        assert!(Batch::from_wire(&[]).is_err());
        let mut bytes = Batch::Commands(vec![Value::ONE]).to_wire();
        bytes.truncate(bytes.len() - 1);
        assert!(Batch::from_wire(&bytes).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Batch::Seal.to_string(), "seal");
        assert_eq!(Batch::no_op().to_string(), "no-op");
        assert_eq!(Batch::Commands(vec![Value::ONE]).to_string(), "batch[1]");
    }
}
