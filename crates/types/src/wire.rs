//! The wire codec: [`Encode`] / [`Decode`] for every protocol message.
//!
//! Until this module existed, every "message" in the workspace was an
//! in-memory clone — even the wall-clock net runtime handed `Arc`s between
//! threads, so nothing ever proved the message types survive
//! serialization. The socket execution backend (`gcl_net::SocketBackend`)
//! moves real bytes through real sockets, which forces a codec onto every
//! message type; this module is that codec.
//!
//! The format is deliberately minimal and deterministic — no schema
//! evolution, no varints, no self-description — because both endpoints of
//! every link are the same binary running the same protocol family:
//!
//! * fixed-width little-endian integers (`u8`/`u16`/`u32`/`u64`);
//! * `bool` and `Option` as one tag byte (any value other than 0/1 is a
//!   decode error, so a flipped bit never aliases);
//! * sequences (`Vec`, `String`, `BTreeMap`) as a `u32` length followed by
//!   the elements;
//! * structs as their fields in declaration order (the [`wire_struct!`]
//!   macro writes those impls);
//! * enums as a one-byte variant tag followed by the variant's fields
//!   (hand-written per enum: protocols are small and explicit beats
//!   clever).
//!
//! Decoding is strict: unknown tags, truncated input and trailing bytes
//! are all [`WireError`]s, never panics — wall backends feed sockets
//! straight into [`Decode::from_wire`].
//!
//! The derive-style `serde` markers some types carry are unrelated: the
//! in-tree serde shim is a no-op derive, while this codec is actually
//! invoked on the socket path. When the workspace swaps the shim for real
//! serde, these traits can become blanket adapters over it.
//!
//! # Examples
//!
//! ```
//! use gcl_types::{Decode, Encode, PartyId, Value};
//!
//! let v = (Value::new(7), Some(PartyId::new(2)));
//! let bytes = v.to_wire();
//! assert_eq!(<(Value, Option<PartyId>)>::from_wire(&bytes).unwrap(), v);
//! ```

use crate::id::{PartyId, View};
use crate::time::{Duration, GlobalTime, LocalTime};
use crate::value::{SlotId, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Why a byte string failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value did.
    Truncated,
    /// The value ended before the input did (strict framing: a message
    /// occupies its frame exactly).
    Trailing(usize),
    /// An enum tag byte no variant claims.
    BadTag {
        /// The type being decoded.
        ty: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A payload that violates its type's invariant (non-0/1 bool,
    /// invalid UTF-8, …).
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire input truncated"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after value"),
            WireError::BadTag { ty, tag } => write!(f, "unknown {ty} variant tag {tag}"),
            WireError::Invalid(what) => write!(f, "invalid wire payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serializes a value into the workspace wire format.
pub trait Encode {
    /// Appends this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// This value's encoding as a fresh byte vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Deserializes a value from the workspace wire format.
pub trait Decode: Sized {
    /// Reads one value from the front of `input`, advancing it past the
    /// bytes consumed.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] the input provokes; on error the cursor position
    /// is unspecified.
    fn decode(input: &mut &[u8]) -> Result<Self, WireError>;

    /// Decodes a value that must occupy `bytes` exactly.
    ///
    /// # Errors
    ///
    /// [`WireError::Trailing`] when bytes remain after the value, plus
    /// everything [`Decode::decode`] reports.
    fn from_wire(mut bytes: &[u8]) -> Result<Self, WireError> {
        let v = Self::decode(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(WireError::Trailing(bytes.len()));
        }
        Ok(v)
    }
}

/// The full bound a wall-clock execution backend needs from a protocol
/// message: plain data (`Clone + Debug`), shareable across party threads
/// (`Send + Sync`), and codec-capable (`Encode + Decode`). This is the
/// bound `gcl_sim::Protocol::Msg` carries; the blanket impl makes any
/// qualifying type a `WireMsg` automatically.
pub trait WireMsg: Clone + fmt::Debug + Send + Sync + Encode + Decode + 'static {}

impl<T: Clone + fmt::Debug + Send + Sync + Encode + Decode + 'static> WireMsg for T {}

/// Takes `n` bytes off the front of `input`.
fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if input.len() < n {
        return Err(WireError::Truncated);
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

macro_rules! wire_uint {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $t {
            fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("exact take")))
            }
        }
    )*};
}

wire_uint!(u8, u16, u32, u64);

impl Encode for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
}

impl Decode for usize {
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        usize::try_from(u64::decode(input)?).map_err(|_| WireError::Invalid("usize overflow"))
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool byte not 0/1")),
        }
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let bytes = take(input, N)?;
        Ok(bytes.try_into().expect("exact take"))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            _ => Err(WireError::Invalid("Option tag not 0/1")),
        }
    }
}

/// Writes a sequence length (`u32`, the format's only length width).
fn encode_len(len: usize, buf: &mut Vec<u8>) {
    u32::try_from(len)
        .expect("wire sequences are bounded far below u32::MAX")
        .encode(buf);
}

/// Reads a sequence length. The cap on pre-allocation lives at the use
/// sites: decoders push element by element, so a lying length fails with
/// [`WireError::Truncated`] instead of a huge allocation.
fn decode_len(input: &mut &[u8]) -> Result<usize, WireError> {
    Ok(u32::decode(input)? as usize)
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_len(self.len(), buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = decode_len(input)?;
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_len(self.len(), buf);
        buf.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = decode_len(input)?;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("string not UTF-8"))
    }
}

impl<K: Encode, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_len(self.len(), buf);
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = decode_len(input)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(input)?;
            let v = V::decode(input)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

/// Implements [`Encode`]/[`Decode`] for a struct with named fields: the
/// fields in declaration order, no tags. Works through public accessors —
/// the listed fields must be visible at the macro call site.
///
/// # Examples
///
/// ```
/// use gcl_types::{wire_struct, Decode, Encode, PartyId, Value};
///
/// #[derive(Debug, Clone, PartialEq)]
/// pub struct Ballot {
///     pub voter: PartyId,
///     pub value: Value,
/// }
/// wire_struct!(Ballot { voter, value });
///
/// let b = Ballot { voter: PartyId::new(3), value: Value::new(9) };
/// assert_eq!(Ballot::from_wire(&b.to_wire()).unwrap(), b);
/// ```
#[macro_export]
macro_rules! wire_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Encode for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                $( $crate::Encode::encode(&self.$field, buf); )+
            }
        }
        impl $crate::Decode for $ty {
            fn decode(input: &mut &[u8]) -> Result<Self, $crate::WireError> {
                Ok($ty { $( $field: $crate::Decode::decode(input)? ),+ })
            }
        }
    };
}

/// Implements [`Encode`]/[`Decode`] for a single-field tuple struct
/// (`struct Wrapper(pub Inner);`) as the transparent encoding of its
/// payload.
#[macro_export]
macro_rules! wire_newtype {
    ($ty:ident) => {
        impl $crate::Encode for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                $crate::Encode::encode(&self.0, buf);
            }
        }
        impl $crate::Decode for $ty {
            fn decode(input: &mut &[u8]) -> Result<Self, $crate::WireError> {
                Ok($ty($crate::Decode::decode(input)?))
            }
        }
    };
}

macro_rules! wire_via_u64 {
    ($($ty:ident: $get:ident / $make:ident),* $(,)?) => {$(
        impl Encode for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                self.$get().encode(buf);
            }
        }
        impl Decode for $ty {
            fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
                Ok($ty::$make(u64::decode(input)?))
            }
        }
    )*};
}

wire_via_u64!(
    Value: as_u64 / new,
    SlotId: index / new,
    View: number / new,
    Duration: as_micros / from_micros,
    GlobalTime: as_micros / from_micros,
    LocalTime: as_micros / from_micros,
);

impl Encode for PartyId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.index().encode(buf);
    }
}

impl Decode for PartyId {
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(PartyId::new(u32::decode(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + fmt::Debug>(v: T) {
        let bytes = v.to_wire();
        assert_eq!(T::from_wire(&bytes).unwrap(), v, "round trip");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(0xbeefu16);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip([7u8; 32]);
        round_trip(String::from("δ ≤ Δ"));
        round_trip(Option::<u64>::None);
        round_trip(Some(9u32));
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u8>::new());
        round_trip((3u8, vec![String::from("x")]));
        let mut m = BTreeMap::new();
        m.insert(2u32, String::from("b"));
        m.insert(1u32, String::from("a"));
        round_trip(m);
    }

    #[test]
    fn vocabulary_types_round_trip() {
        round_trip(Value::new(42));
        round_trip(SlotId::new(7));
        round_trip(View::new(3));
        round_trip(PartyId::new(11));
        round_trip(Duration::from_micros(100));
        round_trip(GlobalTime::from_micros(5));
        round_trip(LocalTime::from_micros(6));
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let bytes = 0xdead_beef_u64.to_wire();
        assert_eq!(u64::from_wire(&bytes[..7]), Err(WireError::Truncated));
        assert_eq!(
            Vec::<u64>::from_wire(&5u32.to_wire()),
            Err(WireError::Truncated),
            "length prefix promises more elements than the input holds"
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 1u8.to_wire();
        bytes.push(0);
        assert_eq!(u8::from_wire(&bytes), Err(WireError::Trailing(1)));
    }

    #[test]
    fn bad_tags_rejected() {
        assert_eq!(
            bool::from_wire(&[2]),
            Err(WireError::Invalid("bool byte not 0/1"))
        );
        assert_eq!(
            Option::<u8>::from_wire(&[9, 0]),
            Err(WireError::Invalid("Option tag not 0/1"))
        );
        let mut s = 1u32.to_wire();
        s.push(0xff);
        assert!(String::from_wire(&s).is_err(), "invalid UTF-8 rejected");
    }

    #[test]
    fn errors_render() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(WireError::Trailing(3).to_string().contains("3 trailing"));
        let tag = WireError::BadTag { ty: "Msg", tag: 9 };
        assert!(tag.to_string().contains("Msg"), "{tag}");
    }

    #[test]
    fn macro_struct_and_newtype_round_trip() {
        #[derive(Debug, Clone, PartialEq)]
        struct Pair {
            a: u32,
            b: Option<Value>,
        }
        wire_struct!(Pair { a, b });
        round_trip(Pair {
            a: 5,
            b: Some(Value::new(6)),
        });

        #[derive(Debug, Clone, PartialEq)]
        struct Wrapped(Vec<u16>);
        wire_newtype!(Wrapped);
        round_trip(Wrapped(vec![1, 2, 3]));
    }
}
