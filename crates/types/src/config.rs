//! Resilience configuration `(n, f)` and the paper's regime taxonomy.

use crate::error::ConfigError;
use crate::PartyId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The resilience regimes of Table 1 of the paper, each with a different
/// tight good-case-latency bound under synchrony.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResilienceRegime {
    /// `0 < f < n/3` — tight bound `2δ`.
    UnderThird,
    /// `f = n/3` — tight bound `Δ + δ`.
    ExactThird,
    /// `n/3 < f < n/2` — `Δ + δ` (synchronized start) or `Δ + 1.5δ`
    /// (unsynchronized start).
    ThirdToHalf,
    /// `n/2 ≤ f < n` — between `(⌊n/(n−f)⌋ − 1)Δ` and `O(n/(n−f))Δ`.
    Majority,
}

impl fmt::Display for ResilienceRegime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResilienceRegime::UnderThird => "0 < f < n/3",
            ResilienceRegime::ExactThird => "f = n/3",
            ResilienceRegime::ThirdToHalf => "n/3 < f < n/2",
            ResilienceRegime::Majority => "n/2 <= f < n",
        };
        f.write_str(s)
    }
}

/// System size `n` and fault budget `f`.
///
/// # Examples
///
/// ```
/// use gcl_types::{Config, ResilienceRegime};
/// let cfg = Config::new(9, 2)?;
/// assert_eq!(cfg.quorum(), 7);
/// assert_eq!(cfg.regime(), ResilienceRegime::UnderThird);
/// assert!(cfg.supports_two_round_psync()); // 9 >= 5*2 - 1
/// # Ok::<(), gcl_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Config {
    n: usize,
    f: usize,
}

impl Config {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when `n < 2`, or `f >= n`.
    pub fn new(n: usize, f: usize) -> Result<Self, ConfigError> {
        if n < 2 {
            return Err(ConfigError::TooFewParties { n });
        }
        if f >= n {
            return Err(ConfigError::TooManyFaults { n, f });
        }
        Ok(Config { n, f })
    }

    /// Number of parties.
    pub const fn n(&self) -> usize {
        self.n
    }

    /// Maximum number of Byzantine parties tolerated.
    pub const fn f(&self) -> usize {
        self.f
    }

    /// The standard quorum size `n − f`.
    pub const fn quorum(&self) -> usize {
        self.n - self.f
    }

    /// `f + 1`, the smallest set guaranteed to contain an honest party.
    pub const fn honest_witness(&self) -> usize {
        self.f + 1
    }

    /// Iterator over all party ids.
    pub fn parties(&self) -> impl Iterator<Item = PartyId> + '_ {
        (0..self.n as u32).map(PartyId::new)
    }

    /// Which row of Table 1 this configuration falls in.
    ///
    /// # Panics
    ///
    /// Panics if `f == 0` (no regime in the paper covers the failure-free
    /// case; every bound assumes `f > 0`).
    pub fn regime(&self) -> ResilienceRegime {
        assert!(self.f > 0, "paper's bounds assume f > 0");
        if 3 * self.f < self.n {
            ResilienceRegime::UnderThird
        } else if 3 * self.f == self.n {
            ResilienceRegime::ExactThird
        } else if 2 * self.f < self.n {
            ResilienceRegime::ThirdToHalf
        } else {
            ResilienceRegime::Majority
        }
    }

    /// True iff `n ≥ 3f + 1` (BRB / psync-BB solvable).
    pub const fn supports_brb(&self) -> bool {
        self.n > 3 * self.f
    }

    /// True iff `n ≥ 5f − 1` — the paper's surprising tight threshold for
    /// 2-round good-case partially synchronous Byzantine broadcast
    /// (Theorem 2).
    pub const fn supports_two_round_psync(&self) -> bool {
        self.n + 1 >= 5 * self.f
    }

    /// The `4f − 1` quorum used by the `(5f−1)`-psync-VBB protocol.
    ///
    /// Equals `n − f` when `n = 5f − 1` exactly; for larger `n` the protocol
    /// generalizes by using `n − f`.
    pub const fn psync_quorum(&self) -> usize {
        self.n - self.f
    }

    /// `⌊n/(n−f)⌋ − 1`, the dishonest-majority lower-bound factor
    /// (Theorem 19), in units of Δ.
    pub const fn majority_lower_bound_factor(&self) -> usize {
        self.n / (self.n - self.f) - 1
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(n={}, f={})", self.n, self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_configs() {
        assert!(matches!(
            Config::new(1, 0),
            Err(ConfigError::TooFewParties { .. })
        ));
        assert!(matches!(
            Config::new(3, 3),
            Err(ConfigError::TooManyFaults { .. })
        ));
    }

    #[test]
    fn regimes_match_table1() {
        assert_eq!(
            Config::new(4, 1).unwrap().regime(),
            ResilienceRegime::UnderThird
        );
        assert_eq!(
            Config::new(3, 1).unwrap().regime(),
            ResilienceRegime::ExactThird
        );
        assert_eq!(
            Config::new(9, 3).unwrap().regime(),
            ResilienceRegime::ExactThird
        );
        assert_eq!(
            Config::new(5, 2).unwrap().regime(),
            ResilienceRegime::ThirdToHalf
        );
        assert_eq!(
            Config::new(4, 2).unwrap().regime(),
            ResilienceRegime::Majority
        );
        assert_eq!(
            Config::new(4, 3).unwrap().regime(),
            ResilienceRegime::Majority
        );
    }

    #[test]
    fn two_round_psync_threshold_is_5f_minus_1() {
        // f = 1: n = 4 = 5f-1 supports 2 rounds (the paper's highlighted case).
        assert!(Config::new(4, 1).unwrap().supports_two_round_psync());
        // f = 2: n = 9 = 5f-1 yes, n = 8 = 5f-2 no.
        assert!(Config::new(9, 2).unwrap().supports_two_round_psync());
        assert!(!Config::new(8, 2).unwrap().supports_two_round_psync());
        // f = 3: threshold at 14.
        assert!(Config::new(14, 3).unwrap().supports_two_round_psync());
        assert!(!Config::new(13, 3).unwrap().supports_two_round_psync());
    }

    #[test]
    fn quorums() {
        let c = Config::new(9, 2).unwrap();
        assert_eq!(c.quorum(), 7);
        assert_eq!(c.honest_witness(), 3);
        assert_eq!(c.psync_quorum(), 7); // 4f-1 = 7 when n = 5f-1 = 9
        assert_eq!(c.parties().count(), 9);
    }

    #[test]
    fn majority_factor() {
        // n=10, f=8: floor(10/2)-1 = 4.
        assert_eq!(Config::new(10, 8).unwrap().majority_lower_bound_factor(), 4);
        // n=4, f=2: floor(4/2)-1 = 1.
        assert_eq!(Config::new(4, 2).unwrap().majority_lower_bound_factor(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(Config::new(4, 1).unwrap().to_string(), "(n=4, f=1)");
        assert_eq!(ResilienceRegime::Majority.to_string(), "n/2 <= f < n");
    }

    #[test]
    #[should_panic(expected = "f > 0")]
    fn regime_requires_faults() {
        let _ = Config::new(4, 0).unwrap().regime();
    }
}
