//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Invalid `(n, f)` configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Fewer than two parties.
    TooFewParties {
        /// The offending party count.
        n: usize,
    },
    /// `f >= n`.
    TooManyFaults {
        /// Party count.
        n: usize,
        /// Offending fault budget.
        f: usize,
    },
    /// The protocol being instantiated needs a stronger resilience bound
    /// than `(n, f)` provides.
    InsufficientResilience {
        /// Human-readable requirement, e.g. `"n >= 5f - 1"`.
        requirement: &'static str,
        /// Party count.
        n: usize,
        /// Fault budget.
        f: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewParties { n } => {
                write!(f, "at least 2 parties required, got {n}")
            }
            ConfigError::TooManyFaults { n, f: faults } => {
                write!(f, "fault budget {faults} must be below n = {n}")
            }
            ConfigError::InsufficientResilience {
                requirement,
                n,
                f: faults,
            } => {
                write!(
                    f,
                    "protocol requires {requirement}, got n = {n}, f = {faults}"
                )
            }
        }
    }
}

impl Error for ConfigError {}

/// A protocol-level fault observed while processing a message.
///
/// Honest parties never act on malformed input; these errors are surfaced to
/// the harness for tracing and to tests asserting that invalid messages are
/// rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A signature failed verification.
    BadSignature,
    /// A certificate or proof did not satisfy its validity rule.
    InvalidCertificate(String),
    /// A message arrived that the protocol state machine cannot accept.
    UnexpectedMessage(String),
    /// The external-validity predicate rejected a proposed value.
    ExternallyInvalid,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadSignature => f.write_str("signature verification failed"),
            ProtocolError::InvalidCertificate(why) => {
                write!(f, "invalid certificate: {why}")
            }
            ProtocolError::UnexpectedMessage(why) => {
                write!(f, "unexpected message: {why}")
            }
            ProtocolError::ExternallyInvalid => {
                f.write_str("value rejected by external validity predicate")
            }
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_messages() {
        assert_eq!(
            ConfigError::TooFewParties { n: 1 }.to_string(),
            "at least 2 parties required, got 1"
        );
        assert!(ConfigError::TooManyFaults { n: 3, f: 3 }
            .to_string()
            .contains("below n = 3"));
        assert!(ConfigError::InsufficientResilience {
            requirement: "n >= 5f - 1",
            n: 8,
            f: 2
        }
        .to_string()
        .contains("n >= 5f - 1"));
    }

    #[test]
    fn protocol_error_messages() {
        assert!(ProtocolError::BadSignature
            .to_string()
            .contains("signature"));
        assert!(ProtocolError::InvalidCertificate("too few votes".into())
            .to_string()
            .contains("too few votes"));
        assert!(ProtocolError::UnexpectedMessage("x".into())
            .to_string()
            .contains("unexpected"));
        assert!(ProtocolError::ExternallyInvalid
            .to_string()
            .contains("external"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
        assert_err::<ProtocolError>();
    }
}
