//! Broadcast values and SMR slot identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A value being broadcast.
///
/// The paper treats values abstractly; a 64-bit payload is enough to express
/// every scenario (including the canonical `0` vs `1` equivocation pairs of
/// the lower-bound constructions) while keeping messages `Copy`.
///
/// # Examples
///
/// ```
/// use gcl_types::Value;
/// let v = Value::new(7);
/// assert_ne!(v, Value::ZERO);
/// assert_eq!(format!("{v}"), "v7");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Value(u64);

impl Value {
    /// The canonical value "0" used by the lower-bound executions.
    pub const ZERO: Value = Value(0);
    /// The canonical value "1" used by the lower-bound executions.
    pub const ONE: Value = Value(1);
    /// The reserved "no operation" value.
    ///
    /// SMR slots that time out with nothing locked decide `NO_OP` and apply
    /// nothing. The encoding is explicit and reserved: client commands equal
    /// to `NO_OP` are rejected at mempool admission, so no legitimate input
    /// can alias the protocol's filler decision. (Every other `u64` payload —
    /// including the former magic filler `u64::MAX - 1` — is a legal
    /// command.)
    pub const NO_OP: Value = Value(u64::MAX);

    /// Whether this is the reserved [`Value::NO_OP`] encoding.
    pub const fn is_no_op(self) -> bool {
        self.0 == u64::MAX
    }

    /// Creates a value from its payload.
    pub const fn new(payload: u64) -> Self {
        Value(payload)
    }

    /// Returns the payload.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the payload as little-endian bytes (for signing).
    pub const fn to_le_bytes(self) -> [u8; 8] {
        self.0.to_le_bytes()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for Value {
    fn from(payload: u64) -> Self {
        Value(payload)
    }
}

/// Index of a slot (consensus instance) in the SMR log.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SlotId(u64);

impl SlotId {
    /// The first slot.
    pub const FIRST: SlotId = SlotId(0);

    /// Creates a slot id.
    pub const fn new(index: u64) -> Self {
        SlotId(index)
    }

    /// Returns the raw index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The next slot.
    #[must_use]
    pub const fn next(self) -> SlotId {
        SlotId(self.0 + 1)
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_basics() {
        assert_eq!(Value::new(0), Value::ZERO);
        assert_eq!(Value::from(1u64), Value::ONE);
        assert_eq!(Value::new(9).as_u64(), 9);
        assert_eq!(Value::new(1).to_le_bytes()[0], 1);
    }

    #[test]
    fn slot_sequence() {
        let s = SlotId::FIRST;
        assert_eq!(s.next().index(), 1);
        assert_eq!(s.next().to_string(), "slot 1");
    }
}
