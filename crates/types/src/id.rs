//! Party and view identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one of the `n` parties, in `0..n`.
///
/// The designated broadcaster is, by convention throughout this workspace,
/// party `0` unless a scenario says otherwise.
///
/// # Examples
///
/// ```
/// use gcl_types::PartyId;
/// let p = PartyId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(format!("{p}"), "P3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PartyId(u32);

impl PartyId {
    /// The reserved out-of-band client address: never one of the `n`
    /// parties. Serving protocols (the SMR engine) address acknowledgements
    /// here; backends either route such sends to their external client
    /// channel (the socket backend) or drop them (the simulator and the
    /// in-memory thread runtime, which have no client endpoint).
    pub const CLIENT: PartyId = PartyId(u32::MAX);

    /// Creates a party id from its index.
    pub const fn new(index: u32) -> Self {
        PartyId(index)
    }

    /// Whether this is the reserved [`PartyId::CLIENT`] address.
    pub const fn is_client(self) -> bool {
        self.0 == u32::MAX
    }

    /// Returns the index in `0..n`.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, convenient for vector indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u32> for PartyId {
    fn from(index: u32) -> Self {
        PartyId(index)
    }
}

/// A view number of a view-based (partially synchronous) protocol.
///
/// Views start at 1; view 0 is the "initial" pseudo-view used only by the
/// empty bootstrap certificate of the `(5f-1)`-psync-VBB protocol (Figure 2
/// of the paper).
///
/// # Examples
///
/// ```
/// use gcl_types::View;
/// let w = View::FIRST;
/// assert_eq!(w.number(), 1);
/// assert_eq!(w.prev().number(), 0);
/// assert_eq!(w.next().number(), 2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct View(u64);

impl View {
    /// The initial pseudo-view (only valid for bootstrap certificates).
    pub const ZERO: View = View(0);
    /// The first real view; its leader is the designated broadcaster.
    pub const FIRST: View = View(1);

    /// Creates a view from a raw number.
    pub const fn new(number: u64) -> Self {
        View(number)
    }

    /// Returns the raw view number.
    pub const fn number(self) -> u64 {
        self.0
    }

    /// Returns the next view.
    #[must_use]
    pub const fn next(self) -> View {
        View(self.0 + 1)
    }

    /// Returns the previous view.
    ///
    /// # Panics
    ///
    /// Panics if called on [`View::ZERO`].
    #[must_use]
    pub const fn prev(self) -> View {
        assert!(self.0 > 0, "view 0 has no predecessor");
        View(self.0 - 1)
    }

    /// Round-robin leader for this view among `n` parties, with the
    /// designated broadcaster (party 0) leading view 1.
    pub fn leader(self, n: usize) -> PartyId {
        debug_assert!(self.0 >= 1, "leader is defined for views >= 1");
        PartyId::new(((self.0 - 1) % n as u64) as u32)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn party_id_roundtrip() {
        let p = PartyId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.as_usize(), 7);
        assert_eq!(PartyId::from(7u32), p);
    }

    #[test]
    fn party_id_display() {
        assert_eq!(PartyId::new(0).to_string(), "P0");
    }

    #[test]
    fn client_address_is_reserved() {
        assert!(PartyId::CLIENT.is_client());
        assert!(!PartyId::new(0).is_client());
        // No realistic party count collides with the client address.
        assert_eq!(PartyId::CLIENT.index(), u32::MAX);
    }

    #[test]
    fn party_id_ordering() {
        assert!(PartyId::new(1) < PartyId::new(2));
    }

    #[test]
    fn view_arithmetic() {
        let w = View::FIRST;
        assert_eq!(w.next(), View::new(2));
        assert_eq!(w.next().prev(), w);
    }

    #[test]
    #[should_panic(expected = "no predecessor")]
    fn view_zero_prev_panics() {
        let _ = View::ZERO.prev();
    }

    #[test]
    fn view_leader_round_robin() {
        let n = 4;
        assert_eq!(View::new(1).leader(n), PartyId::new(0));
        assert_eq!(View::new(2).leader(n), PartyId::new(1));
        assert_eq!(View::new(5).leader(n), PartyId::new(0));
    }

    #[test]
    fn view_display() {
        assert_eq!(View::new(3).to_string(), "view 3");
    }
}
