//! External validity predicates (Definition 5 of the paper).
//!
//! The partially synchronous *validated* Byzantine broadcast (psync-VBB)
//! strengthens psync-BB with an external predicate `F: value → bool`; honest
//! parties ignore proposals whose value fails the predicate, and any value
//! committed when the broadcaster is Byzantine must satisfy it.

use crate::Value;
use std::fmt;
use std::sync::Arc;

/// A shared, thread-safe external validity predicate.
///
/// # Examples
///
/// ```
/// use gcl_types::{ExternalValidity, Value};
/// let even_only = ExternalValidity::new("even", |v| v.as_u64() % 2 == 0);
/// assert!(even_only.check(Value::new(4)));
/// assert!(!even_only.check(Value::new(3)));
/// ```
#[derive(Clone)]
pub struct ExternalValidity {
    name: &'static str,
    pred: Arc<dyn Fn(Value) -> bool + Send + Sync>,
}

impl ExternalValidity {
    /// Wraps a predicate function with a diagnostic name.
    pub fn new(name: &'static str, pred: impl Fn(Value) -> bool + Send + Sync + 'static) -> Self {
        ExternalValidity {
            name,
            pred: Arc::new(pred),
        }
    }

    /// Evaluates the predicate.
    pub fn check(&self, value: Value) -> bool {
        (self.pred)(value)
    }

    /// The diagnostic name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl fmt::Debug for ExternalValidity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExternalValidity")
            .field("name", &self.name)
            .finish()
    }
}

impl Default for ExternalValidity {
    fn default() -> Self {
        accept_all()
    }
}

/// The trivial predicate accepting every value — psync-VBB degenerates to
/// psync-BB under it.
pub fn accept_all() -> ExternalValidity {
    ExternalValidity::new("accept-all", |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_all_accepts() {
        let p = accept_all();
        assert!(p.check(Value::ZERO));
        assert!(p.check(Value::new(u64::MAX)));
        assert_eq!(p.name(), "accept-all");
    }

    #[test]
    fn custom_predicate() {
        let p = ExternalValidity::new("small", |v| v.as_u64() < 10);
        assert!(p.check(Value::new(9)));
        assert!(!p.check(Value::new(10)));
        assert!(format!("{p:?}").contains("small"));
    }

    #[test]
    fn default_is_accept_all() {
        assert!(ExternalValidity::default().check(Value::new(123)));
    }

    #[test]
    fn is_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<ExternalValidity>();
    }
}
