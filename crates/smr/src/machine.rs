//! Replicated state machines.

use gcl_types::{SlotId, Value};
use std::collections::BTreeMap;

/// A deterministic state machine fed the committed log in slot order.
pub trait StateMachine: Send + 'static {
    /// Applies the value committed in `slot` (called in strictly
    /// increasing slot order, exactly once per slot).
    fn apply(&mut self, slot: SlotId, value: Value);

    /// A digest of the current state, for cross-replica comparison.
    fn state_digest(&self) -> u64;
}

/// Adds every committed value into an accumulator.
///
/// # Examples
///
/// ```
/// use gcl_smr::{Counter, StateMachine};
/// use gcl_types::{SlotId, Value};
/// let mut c = Counter::default();
/// c.apply(SlotId::new(0), Value::new(4));
/// c.apply(SlotId::new(1), Value::new(2));
/// assert_eq!(c.total(), 6);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Counter {
    total: u64,
    applied: u64,
}

impl Counter {
    /// Sum of all applied values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of applied slots.
    pub fn applied(&self) -> u64 {
        self.applied
    }
}

impl StateMachine for Counter {
    fn apply(&mut self, _slot: SlotId, value: Value) {
        self.total = self.total.wrapping_add(value.as_u64());
        self.applied += 1;
    }

    fn state_digest(&self) -> u64 {
        self.total ^ (self.applied << 48)
    }
}

/// A tiny replicated key-value store. Commands pack a 32-bit key and a
/// 32-bit value into one [`Value`]: `cmd = key << 32 | val`.
///
/// # Examples
///
/// ```
/// use gcl_smr::{KvStore, StateMachine};
/// use gcl_types::{SlotId, Value};
/// let mut kv = KvStore::default();
/// kv.apply(SlotId::new(0), KvStore::set(7, 99));
/// assert_eq!(kv.get(7), Some(99));
/// assert_eq!(kv.get(8), None);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<u32, u32>,
}

impl KvStore {
    /// Encodes a `set key := val` command.
    pub fn set(key: u32, val: u32) -> Value {
        Value::new((u64::from(key) << 32) | u64::from(val))
    }

    /// Reads a key.
    pub fn get(&self, key: u32) -> Option<u32> {
        self.map.get(&key).copied()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl StateMachine for KvStore {
    fn apply(&mut self, _slot: SlotId, value: Value) {
        let key = (value.as_u64() >> 32) as u32;
        let val = (value.as_u64() & 0xffff_ffff) as u32;
        self.map.insert(key, val);
    }

    fn state_digest(&self) -> u64 {
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        for (k, v) in &self.map {
            acc = acc
                .wrapping_mul(0x1000_0000_01b3)
                .wrapping_add(u64::from(*k) << 32 | u64::from(*v));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.apply(SlotId::new(0), Value::new(10));
        c.apply(SlotId::new(1), Value::new(5));
        assert_eq!(c.total(), 15);
        assert_eq!(c.applied(), 2);
        assert_ne!(c.state_digest(), Counter::default().state_digest());
    }

    #[test]
    fn kv_roundtrip() {
        let mut kv = KvStore::default();
        assert!(kv.is_empty());
        kv.apply(SlotId::new(0), KvStore::set(1, 2));
        kv.apply(SlotId::new(1), KvStore::set(1, 3)); // overwrite
        kv.apply(SlotId::new(2), KvStore::set(9, 9));
        assert_eq!(kv.get(1), Some(3));
        assert_eq!(kv.len(), 2);
    }

    #[test]
    fn kv_digest_order_independent_of_apply_order_for_same_final_map() {
        let mut a = KvStore::default();
        a.apply(SlotId::new(0), KvStore::set(1, 1));
        a.apply(SlotId::new(1), KvStore::set(2, 2));
        let mut b = KvStore::default();
        b.apply(SlotId::new(0), KvStore::set(2, 2));
        b.apply(SlotId::new(1), KvStore::set(1, 1));
        assert_eq!(a.state_digest(), b.state_digest());
    }
}
