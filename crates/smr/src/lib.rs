//! BFT state machine replication on the 2-round psync-VBB engine.
//!
//! The paper motivates good-case latency through Primary-Backup SMR: "each
//! view in BFT SMR is similar to an instance of broadcast with the leader
//! taking the role of the broadcaster" (Section 1), and its companion
//! paper [5] turns the `(5f−1)`-psync-VBB into a practical BFT SMR. This
//! crate is that extension in miniature: a [`SlotEngine`] multiplexes one
//! [`gcl_core::psync::VbbFiveFMinusOne`] instance per log slot, applies
//! committed batches in order to a replicated [`StateMachine`], and keeps a
//! configurable number of slots in flight (pipelining).
//!
//! Each slot decides one [`gcl_types::Batch`] of client commands drawn
//! from the leader's [`Mempool`], so the broadcast's 2-round good case is
//! amortized across the whole batch: SMR *decision latency* in the steady
//! state is exactly the paper's good-case latency, and throughput scales
//! with the batch size.
//!
//! # Termination: seal or quiesce
//!
//! Replicas do not know the workload length in advance. A log closes
//! either by **seal** — the leader of a closed queue proposes
//! [`gcl_types::Batch::Seal`] after the last command — or by **quiesce** —
//! `quiesce_after` consecutive no-op slots at the applied frontier, the
//! trace left by a crashed or silent leader once followers time its slots
//! out. Both rules are functions of the applied prefix, so replicas agree
//! on the stopping point and on the final state digest they report.
//!
//! # Examples
//!
//! ```
//! use gcl_smr::{Counter, SlotEngine, SmrParams, StateMachine};
//! use gcl_crypto::Keychain;
//! use gcl_sim::{FixedDelay, Simulation, TimingModel};
//! use gcl_types::{Config, Duration, GlobalTime, PartyId, Value};
//! use std::sync::Arc;
//! use parking_lot::Mutex;
//!
//! let cfg = Config::new(4, 1)?;
//! let chain = Keychain::generate(4, 11);
//! let delta = Duration::from_micros(100);
//! let workload: Vec<Value> = (1..=5).map(Value::new).collect();
//! let params = SmrParams { batch: 2, pipeline: 2, ..SmrParams::default() };
//! let machines: Vec<Arc<Mutex<Counter>>> =
//!     (0..4).map(|_| Arc::new(Mutex::new(Counter::default()))).collect();
//! let ms = machines.clone();
//! let outcome = Simulation::build(cfg)
//!     .timing(TimingModel::PartialSynchrony { gst: GlobalTime::ZERO, big_delta: delta })
//!     .oracle(FixedDelay::new(delta))
//!     .spawn_honest(move |p| {
//!         SlotEngine::new(cfg, chain.signer(p), chain.pki(), delta,
//!                         params, ms[p.as_usize()].clone())
//!             .with_workload(workload.clone())
//!     })
//!     .run();
//! assert!(outcome.agreement_holds());
//! for m in &machines {
//!     assert_eq!(m.lock().total(), 1 + 2 + 3 + 4 + 5);
//! }
//! # Ok::<(), gcl_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod machine;
mod mempool;

pub use engine::{SlotEngine, SmrMsg, SmrParams};
pub use machine::{Counter, KvStore, StateMachine};
pub use mempool::{AdmissionError, Mempool, MempoolStats};
