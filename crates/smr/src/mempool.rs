//! Client command admission and batching.
//!
//! The mempool is the boundary between clients and consensus: commands are
//! admitted (or rejected) here, queued in arrival order, and drained in
//! leader-chosen batches. Admission enforces the reserved-value rule —
//! [`Value::NO_OP`] is the protocol's filler decision and can never enter
//! the log as a client command — and a capacity bound so an open-loop
//! client cannot grow the queue without limit.

use gcl_types::{Batch, Value};
use std::collections::VecDeque;
use std::fmt;

/// Why [`Mempool::submit`] refused a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The command is the reserved [`Value::NO_OP`] encoding.
    Reserved,
    /// The pool is at capacity; the client must back off and retry.
    Full,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Reserved => write!(f, "reserved no-op encoding"),
            AdmissionError::Full => write!(f, "mempool at capacity"),
        }
    }
}

/// A bounded FIFO of admitted-but-uncommitted client commands.
#[derive(Debug, Clone)]
pub struct Mempool {
    queue: VecDeque<Value>,
    capacity: usize,
    admitted: u64,
    rejected: u64,
}

impl Mempool {
    /// An empty pool holding at most `capacity` pending commands.
    pub fn new(capacity: usize) -> Self {
        Mempool {
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            admitted: 0,
            rejected: 0,
        }
    }

    /// Admits one client command at the back of the queue.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Reserved`] for the [`Value::NO_OP`] encoding,
    /// [`AdmissionError::Full`] when the pool is at capacity. Rejected
    /// commands are counted but never queued.
    pub fn submit(&mut self, cmd: Value) -> Result<(), AdmissionError> {
        let verdict = if cmd.is_no_op() {
            Err(AdmissionError::Reserved)
        } else if self.queue.len() >= self.capacity {
            Err(AdmissionError::Full)
        } else {
            self.queue.push_back(cmd);
            self.admitted += 1;
            Ok(())
        };
        if verdict.is_err() {
            self.rejected += 1;
        }
        verdict
    }

    /// Drains up to `max` commands (arrival order) into a proposal batch,
    /// or `None` when the pool is empty. `max == 0` is treated as 1 so a
    /// misconfigured batch size cannot stall the log.
    pub fn take_batch(&mut self, max: usize) -> Option<Batch> {
        if self.queue.is_empty() {
            return None;
        }
        let take = self.queue.len().min(max.max(1));
        Some(Batch::Commands(self.queue.drain(..take).collect()))
    }

    /// Commands currently queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Commands admitted over the pool's lifetime.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Commands rejected (reserved or over capacity) over the lifetime.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic LCG so the property-style tests need no
    /// external randomness source.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    #[test]
    fn reserved_no_op_rejected_at_admission() {
        let mut pool = Mempool::new(16);
        assert_eq!(
            pool.submit(Value::NO_OP),
            Err(AdmissionError::Reserved),
            "the protocol filler value must never enter the pool"
        );
        assert_eq!(pool.pending(), 0);
        assert_eq!(pool.rejected(), 1);
    }

    #[test]
    fn old_magic_filler_is_now_a_legal_command() {
        // Pre-batch engines used `u64::MAX - 1` as an in-band no-op filler;
        // it is an ordinary command under the reserved-encoding rule.
        let mut pool = Mempool::new(16);
        let old_magic = Value::new(u64::MAX - 1);
        assert_eq!(pool.submit(old_magic), Ok(()));
        assert_eq!(pool.take_batch(8), Some(Batch::Commands(vec![old_magic])));
    }

    #[test]
    fn capacity_bound_holds() {
        let mut pool = Mempool::new(3);
        for i in 0..3 {
            assert_eq!(pool.submit(Value::new(i)), Ok(()));
        }
        assert_eq!(pool.submit(Value::new(9)), Err(AdmissionError::Full));
        assert_eq!(pool.pending(), 3);
        pool.take_batch(1);
        assert_eq!(pool.submit(Value::new(9)), Ok(()), "drain frees a slot");
    }

    #[test]
    fn batches_partition_the_admitted_sequence_in_order() {
        // Property: for random submissions and random batch sizes, the
        // concatenation of drained batches equals the admitted sequence —
        // no loss, no duplication, no reordering.
        let mut rng = Lcg(0x5eed);
        for _ in 0..50 {
            let mut pool = Mempool::new(1 << 12);
            let count = (rng.next() % 200) as usize;
            let mut submitted = Vec::new();
            for _ in 0..count {
                let cmd = Value::new(rng.next() % 1_000_000);
                pool.submit(cmd).unwrap();
                submitted.push(cmd);
            }
            let mut drained = Vec::new();
            while let Some(batch) = pool.take_batch((rng.next() % 17) as usize) {
                assert!(!batch.is_empty(), "take_batch never yields empty batches");
                drained.extend_from_slice(batch.commands());
            }
            assert_eq!(drained, submitted);
            assert!(pool.is_empty());
            assert_eq!(pool.admitted(), count as u64);
        }
    }

    #[test]
    fn zero_batch_size_still_drains() {
        let mut pool = Mempool::new(8);
        pool.submit(Value::ONE).unwrap();
        assert_eq!(pool.take_batch(0), Some(Batch::Commands(vec![Value::ONE])));
    }
}
