//! Client command admission, batching, and exactly-once bookkeeping.
//!
//! The mempool is the boundary between clients and consensus: commands are
//! admitted (or rejected) here, queued in arrival order, and drained in
//! leader-chosen batches. Admission enforces the reserved-value rule —
//! [`Value::NO_OP`] is the protocol's filler decision and can never enter
//! the log as a client command — and a capacity bound so an open-loop
//! client cannot grow the queue without limit.
//!
//! Since leader rotation, the pool is also the engine's **exactly-once
//! filter**: every replica admits every client command (so a failover
//! leader has something to propose), commands are deduplicated against
//! both the pending queue and a bounded record of recently *committed*
//! commands, and a view-changed in-flight batch can be idempotently
//! re-admitted ([`Mempool::readmit`]) without ever risking a double
//! commit. The committed record is bounded FIFO-by-commit-order, which is
//! a deterministic function of the applied log prefix — replicas that
//! agree on the log hold identical filters.

use gcl_types::{Batch, SlotId, Value};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Why [`Mempool::submit`] refused a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The command is the reserved [`Value::NO_OP`] encoding.
    Reserved,
    /// The pool is at capacity; the client must back off and retry.
    Full,
    /// The command is already queued awaiting proposal — a duplicate
    /// submission (e.g. a client retry racing the original).
    Pending,
    /// The command already committed at this slot — the submission is a
    /// retry of something the log holds; re-acknowledge, never re-queue.
    Committed(SlotId),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Reserved => write!(f, "reserved no-op encoding"),
            AdmissionError::Full => write!(f, "mempool at capacity"),
            AdmissionError::Pending => write!(f, "already pending"),
            AdmissionError::Committed(slot) => {
                write!(f, "already committed at slot {}", slot.index())
            }
        }
    }
}

/// Counters and gauges of one pool, snapshotted for observability (the
/// load harness reports them per `BENCH_smr.json` row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MempoolStats {
    /// Commands currently queued awaiting proposal.
    pub occupancy: usize,
    /// Commands admitted over the pool's lifetime.
    pub admitted: u64,
    /// Submissions rejected (reserved, at capacity, or duplicate).
    pub rejected: u64,
    /// Commands re-admitted from view-changed in-flight batches.
    pub requeued: u64,
    /// Commands recorded as committed.
    pub committed: u64,
}

/// Multiple of capacity the committed-command filter retains before
/// evicting its oldest entries (in commit order, so eviction is
/// deterministic across replicas that agree on the log).
const COMMITTED_RETENTION_FACTOR: usize = 4;

/// A bounded FIFO of admitted-but-uncommitted client commands, with an
/// exactly-once filter over recently committed ones.
#[derive(Debug, Clone)]
pub struct Mempool {
    /// Arrival order. Entries whose command has left `pending` (committed
    /// while queued here) are stale and skipped lazily on drain.
    queue: VecDeque<Value>,
    /// The authoritative pending set (deduplicates admission).
    pending: BTreeSet<Value>,
    /// Recently committed commands and the slot each landed in, bounded by
    /// `committed_order` FIFO eviction.
    committed: BTreeMap<Value, SlotId>,
    /// Commit-order eviction queue for `committed`.
    committed_order: VecDeque<Value>,
    capacity: usize,
    admitted: u64,
    rejected: u64,
    requeued: u64,
    committed_total: u64,
}

impl Mempool {
    /// An empty pool holding at most `capacity` pending commands.
    pub fn new(capacity: usize) -> Self {
        Mempool {
            queue: VecDeque::new(),
            pending: BTreeSet::new(),
            committed: BTreeMap::new(),
            committed_order: VecDeque::new(),
            capacity: capacity.max(1),
            admitted: 0,
            rejected: 0,
            requeued: 0,
            committed_total: 0,
        }
    }

    /// Admits one client command at the back of the queue.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Reserved`] for the [`Value::NO_OP`] encoding,
    /// [`AdmissionError::Full`] when the pool is at capacity,
    /// [`AdmissionError::Pending`] for a command already queued, and
    /// [`AdmissionError::Committed`] for a command the log already holds
    /// (so the caller can re-acknowledge it with its slot). Rejected
    /// commands are counted but never queued.
    pub fn submit(&mut self, cmd: Value) -> Result<(), AdmissionError> {
        let verdict = if cmd.is_no_op() {
            Err(AdmissionError::Reserved)
        } else if let Some(&slot) = self.committed.get(&cmd) {
            Err(AdmissionError::Committed(slot))
        } else if self.pending.contains(&cmd) {
            Err(AdmissionError::Pending)
        } else if self.pending.len() >= self.capacity {
            Err(AdmissionError::Full)
        } else {
            self.queue.push_back(cmd);
            self.pending.insert(cmd);
            self.admitted += 1;
            Ok(())
        };
        if verdict.is_err() {
            self.rejected += 1;
        }
        verdict
    }

    /// Idempotently re-admits a command drained into a batch whose slot
    /// decided some other value (a view-changed in-flight proposal).
    /// Returns whether the command re-entered the queue: already-pending
    /// and already-committed commands are refused — that refusal is what
    /// makes arbitrary proposal/retry interleavings exactly-once — and
    /// the capacity bound is deliberately waived (the command was already
    /// admitted once; dropping it here would lose an acknowledged-side
    /// submission).
    pub fn readmit(&mut self, cmd: Value) -> bool {
        if cmd.is_no_op() || self.committed.contains_key(&cmd) || self.pending.contains(&cmd) {
            return false;
        }
        self.queue.push_back(cmd);
        self.pending.insert(cmd);
        self.requeued += 1;
        true
    }

    /// Records `cmd` as committed at `slot`, removing it from the pending
    /// set. Returns `true` iff the command was *not* already recorded —
    /// i.e. whether this commit is fresh and the caller should apply it.
    /// The committed record is bounded: the oldest entries (commit order)
    /// are evicted past `COMMITTED_RETENTION_FACTOR × capacity`.
    pub fn mark_committed(&mut self, cmd: Value, slot: SlotId) -> bool {
        if cmd.is_no_op() || self.committed.contains_key(&cmd) {
            return false;
        }
        self.pending.remove(&cmd);
        self.committed.insert(cmd, slot);
        self.committed_order.push_back(cmd);
        self.committed_total += 1;
        let cap = self.capacity.saturating_mul(COMMITTED_RETENTION_FACTOR);
        while self.committed_order.len() > cap {
            if let Some(old) = self.committed_order.pop_front() {
                self.committed.remove(&old);
            }
        }
        true
    }

    /// The slot a recently committed command landed in, if still retained.
    pub fn committed_slot(&self, cmd: Value) -> Option<SlotId> {
        self.committed.get(&cmd).copied()
    }

    /// Drains up to `max` commands (arrival order) into a proposal batch,
    /// or `None` when the pool is empty. Queue entries whose command
    /// committed while waiting (another replica proposed it first) are
    /// skipped. `max == 0` is treated as 1 so a misconfigured batch size
    /// cannot stall the log.
    pub fn take_batch(&mut self, max: usize) -> Option<Batch> {
        let max = max.max(1);
        let mut cmds = Vec::new();
        while cmds.len() < max {
            let Some(cmd) = self.queue.pop_front() else {
                break;
            };
            // Stale entry: committed (and removed from pending) while
            // queued — drop it rather than proposing a duplicate.
            if self.pending.remove(&cmd) {
                cmds.push(cmd);
            }
        }
        if cmds.is_empty() {
            None
        } else {
            Some(Batch::Commands(cmds))
        }
    }

    /// Commands currently queued (pending proposal).
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Commands admitted over the pool's lifetime.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Commands rejected (reserved, over capacity, or duplicate) over the
    /// lifetime.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Commands re-admitted from view-changed in-flight batches.
    pub fn requeued(&self) -> u64 {
        self.requeued
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the pool's counters and gauges.
    pub fn stats(&self) -> MempoolStats {
        MempoolStats {
            occupancy: self.pending(),
            admitted: self.admitted,
            rejected: self.rejected,
            requeued: self.requeued,
            committed: self.committed_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic LCG so the property-style tests need no
    /// external randomness source.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    #[test]
    fn reserved_no_op_rejected_at_admission() {
        let mut pool = Mempool::new(16);
        assert_eq!(
            pool.submit(Value::NO_OP),
            Err(AdmissionError::Reserved),
            "the protocol filler value must never enter the pool"
        );
        assert_eq!(pool.pending(), 0);
        assert_eq!(pool.rejected(), 1);
    }

    #[test]
    fn old_magic_filler_is_now_a_legal_command() {
        // Pre-batch engines used `u64::MAX - 1` as an in-band no-op filler;
        // it is an ordinary command under the reserved-encoding rule.
        let mut pool = Mempool::new(16);
        let old_magic = Value::new(u64::MAX - 1);
        assert_eq!(pool.submit(old_magic), Ok(()));
        assert_eq!(pool.take_batch(8), Some(Batch::Commands(vec![old_magic])));
    }

    #[test]
    fn capacity_bound_holds() {
        let mut pool = Mempool::new(3);
        for i in 0..3 {
            assert_eq!(pool.submit(Value::new(i)), Ok(()));
        }
        assert_eq!(pool.submit(Value::new(9)), Err(AdmissionError::Full));
        assert_eq!(pool.pending(), 3);
        pool.take_batch(1);
        assert_eq!(pool.submit(Value::new(9)), Ok(()), "drain frees a slot");
    }

    #[test]
    fn duplicate_submissions_deduplicated() {
        let mut pool = Mempool::new(8);
        assert_eq!(pool.submit(Value::new(7)), Ok(()));
        assert_eq!(pool.submit(Value::new(7)), Err(AdmissionError::Pending));
        assert_eq!(pool.pending(), 1, "a retry never queues twice");
        assert!(pool.mark_committed(Value::new(7), SlotId::new(3)));
        assert_eq!(
            pool.submit(Value::new(7)),
            Err(AdmissionError::Committed(SlotId::new(3))),
            "a post-commit retry reports the slot for re-acknowledgement"
        );
        assert_eq!(pool.stats().rejected, 2);
    }

    #[test]
    fn mark_committed_is_fresh_exactly_once() {
        let mut pool = Mempool::new(8);
        pool.submit(Value::new(5)).unwrap();
        assert!(pool.mark_committed(Value::new(5), SlotId::new(0)));
        assert!(
            !pool.mark_committed(Value::new(5), SlotId::new(1)),
            "a second slot deciding the same command is not fresh"
        );
        assert_eq!(pool.committed_slot(Value::new(5)), Some(SlotId::new(0)));
        assert_eq!(pool.pending(), 0, "committing removes the pending entry");
        assert!(!pool.mark_committed(Value::NO_OP, SlotId::new(2)));
    }

    #[test]
    fn readmit_refuses_pending_and_committed() {
        let mut pool = Mempool::new(2);
        pool.submit(Value::new(1)).unwrap();
        pool.submit(Value::new(2)).unwrap();
        // Drain both into an in-flight batch, then pretend cmd 1 committed
        // elsewhere while cmd 2's batch view-changed.
        let batch = pool.take_batch(4).unwrap();
        assert_eq!(batch.len(), 2);
        assert!(pool.mark_committed(Value::new(1), SlotId::new(0)));
        assert!(!pool.readmit(Value::new(1)), "committed: refuse");
        assert!(pool.readmit(Value::new(2)), "lost in view change: re-queue");
        assert!(!pool.readmit(Value::new(2)), "idempotent");
        assert!(!pool.readmit(Value::NO_OP));
        assert_eq!(pool.requeued(), 1);
        // Capacity is waived for re-admission even at a full pool.
        pool.submit(Value::new(3)).unwrap();
        assert_eq!(pool.submit(Value::new(4)), Err(AdmissionError::Full));
        let drained = pool.take_batch(1).unwrap();
        assert_eq!(drained, Batch::Commands(vec![Value::new(2)]));
    }

    #[test]
    fn stale_queue_entries_skipped_on_drain() {
        // A command that commits while queued (another replica proposed it
        // first) must not ride a later batch out of this pool.
        let mut pool = Mempool::new(8);
        pool.submit(Value::new(1)).unwrap();
        pool.submit(Value::new(2)).unwrap();
        pool.submit(Value::new(3)).unwrap();
        assert!(pool.mark_committed(Value::new(2), SlotId::new(0)));
        assert_eq!(
            pool.take_batch(8),
            Some(Batch::Commands(vec![Value::new(1), Value::new(3)]))
        );
        assert!(pool.is_empty());
    }

    #[test]
    fn committed_filter_is_bounded_fifo() {
        let mut pool = Mempool::new(2); // retention = 8
        for i in 0..20u64 {
            let cmd = Value::new(100 + i);
            pool.submit(cmd).unwrap();
            pool.take_batch(1);
            assert!(pool.mark_committed(cmd, SlotId::new(i)));
        }
        assert_eq!(pool.stats().committed, 20);
        assert!(
            pool.committed_slot(Value::new(100)).is_none(),
            "oldest entries evicted in commit order"
        );
        assert_eq!(
            pool.committed_slot(Value::new(119)),
            Some(SlotId::new(19)),
            "recent entries retained"
        );
    }

    #[test]
    fn batches_partition_the_admitted_sequence_in_order() {
        // Property: for distinct random submissions and random batch
        // sizes, the concatenation of drained batches equals the admitted
        // sequence — no loss, no duplication, no reordering. (Colliding
        // submissions are rejected at admission since the dedup filter, so
        // the draw is made collision-free.)
        let mut rng = Lcg(0x5eed);
        for _ in 0..50 {
            let mut pool = Mempool::new(1 << 12);
            let count = (rng.next() % 200) as usize;
            let mut submitted = Vec::new();
            for k in 0..count {
                let cmd = Value::new((rng.next() % 1_000_000) * 1_000 + k as u64);
                pool.submit(cmd).unwrap();
                submitted.push(cmd);
            }
            let mut drained = Vec::new();
            while let Some(batch) = pool.take_batch((rng.next() % 17) as usize) {
                assert!(!batch.is_empty(), "take_batch never yields empty batches");
                drained.extend_from_slice(batch.commands());
            }
            assert_eq!(drained, submitted);
            assert!(pool.is_empty());
            assert_eq!(pool.admitted(), count as u64);
        }
    }

    #[test]
    fn zero_batch_size_still_drains() {
        let mut pool = Mempool::new(8);
        pool.submit(Value::ONE).unwrap();
        assert_eq!(pool.take_batch(0), Some(Batch::Commands(vec![Value::ONE])));
    }
}
