//! The slot multiplexer.

use crate::machine::StateMachine;
use gcl_core::psync::{VbbFiveFMinusOne, VbbMsg};
use gcl_crypto::{Pki, Signer};
use gcl_sim::{Context, Protocol};
use gcl_types::{accept_all, Config, Duration, LocalTime, PartyId, SlotId, Value};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Wire message: a psync-VBB message tagged with its slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrMsg {
    /// The slot this message belongs to.
    pub slot: SlotId,
    /// The inner broadcast message.
    pub inner: VbbMsg,
}

gcl_types::wire_struct!(SmrMsg { slot, inner });

/// Timer-tag multiplexing: slot index is packed above the inner tag.
const SLOT_TAG_STRIDE: u64 = 1 << 40;

/// A replica: one `(5f−1)`-psync-VBB instance per slot, committed values
/// applied in slot order to the shared [`StateMachine`].
///
/// The leader (party 0, the stable primary) drains its client `workload`
/// queue, keeping up to `pipeline` slots in flight. The state machine is
/// behind an `Arc<Mutex<…>>` so tests and applications can observe it
/// after (or during) the run.
pub struct SlotEngine<S> {
    config: Config,
    signer: Signer,
    pki: Arc<Pki>,
    big_delta: Duration,
    workload: Vec<Value>,
    pipeline: usize,
    machine: Arc<Mutex<S>>,
    slots: BTreeMap<SlotId, VbbFiveFMinusOne>,
    committed: BTreeMap<SlotId, Value>,
    applied_up_to: u64,
    started: u64,
    terminated: bool,
}

impl<S: StateMachine> SlotEngine<S> {
    /// Creates a replica.
    ///
    /// `workload` is the client command queue — only the leader (party 0)
    /// proposes from it, but every replica knows its length so it can
    /// terminate when the log is fully committed. `pipeline` ≥ 1 slots run
    /// concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `pipeline == 0`, or `n < 5f − 1` (engine requirement).
    pub fn new(
        config: Config,
        signer: Signer,
        pki: Arc<Pki>,
        big_delta: Duration,
        workload: Vec<Value>,
        pipeline: usize,
        machine: Arc<Mutex<S>>,
    ) -> Self {
        assert!(pipeline >= 1, "pipeline depth must be at least 1");
        assert!(
            config.supports_two_round_psync(),
            "SMR engine requires n >= 5f - 1"
        );
        SlotEngine {
            config,
            signer,
            pki,
            big_delta,
            workload,
            pipeline,
            machine,
            slots: BTreeMap::new(),
            committed: BTreeMap::new(),
            applied_up_to: 0,
            started: 0,
            terminated: false,
        }
    }

    fn is_leader(&self) -> bool {
        self.signer.id() == PartyId::new(0)
    }

    fn instance(&mut self, slot: SlotId) -> &mut VbbFiveFMinusOne {
        let config = self.config;
        let signer = self.signer.clone();
        let pki = Arc::clone(&self.pki);
        let big_delta = self.big_delta;
        let input = if self.signer.id() == PartyId::new(0) {
            Some(
                self.workload
                    .get(slot.index() as usize)
                    .copied()
                    .unwrap_or(Value::new(u64::MAX - 1)), // no-op filler
            )
        } else {
            None
        };
        self.slots.entry(slot).or_insert_with(|| {
            VbbFiveFMinusOne::new(config, signer, pki, accept_all(), big_delta, input)
        })
    }

    /// Leader: open the next slots up to the pipeline limit.
    fn open_slots(&mut self, ctx: &mut dyn Context<SmrMsg>) {
        let total = self.workload.len() as u64;
        while self.started < total && self.started < self.applied_up_to + self.pipeline as u64 {
            let slot = SlotId::new(self.started);
            self.started += 1;
            let mut sub = SubCtx {
                outer: ctx,
                slot,
                commits: Vec::new(),
            };
            self.instance(slot);
            // Start the instance (leader proposes; followers arm timers).
            let inst = self.slots.get_mut(&slot).expect("just inserted");
            Protocol::start(inst, &mut sub);
            let commits = sub.commits;
            self.absorb_commits(slot, commits, ctx);
        }
    }

    fn absorb_commits(&mut self, slot: SlotId, commits: Vec<Value>, ctx: &mut dyn Context<SmrMsg>) {
        if let Some(v) = commits.first() {
            self.committed.entry(slot).or_insert(*v);
        }
        // Apply in order.
        while let Some(v) = self
            .committed
            .get(&SlotId::new(self.applied_up_to))
            .copied()
        {
            self.machine
                .lock()
                .apply(SlotId::new(self.applied_up_to), v);
            self.applied_up_to += 1;
        }
        if self.is_leader() {
            self.open_slots(ctx);
        }
        // All slots of the workload applied: report the log digest as this
        // replica's "commit" for Outcome-level agreement checking, then
        // stop.
        if !self.terminated && self.applied_up_to >= self.workload.len() as u64 {
            self.terminated = true;
            ctx.commit(Value::new(self.machine.lock().state_digest()));
            ctx.terminate();
        }
    }
}

impl<S: StateMachine> Protocol for SlotEngine<S> {
    type Msg = SmrMsg;

    fn start(&mut self, ctx: &mut dyn Context<SmrMsg>) {
        if self.workload.is_empty() {
            ctx.commit(Value::new(self.machine.lock().state_digest()));
            ctx.terminate();
            return;
        }
        if self.is_leader() {
            self.open_slots(ctx);
        } else {
            // Followers start the first pipeline of slots to arm their
            // view timers.
            for i in 0..self.pipeline.min(self.workload.len()) {
                let slot = SlotId::new(i as u64);
                self.instance(slot);
                let inst = self.slots.get_mut(&slot).expect("just inserted");
                let mut sub = SubCtx {
                    outer: ctx,
                    slot,
                    commits: Vec::new(),
                };
                Protocol::start(inst, &mut sub);
                let commits = sub.commits;
                self.absorb_commits(slot, commits, ctx);
            }
        }
    }

    fn on_message(&mut self, from: PartyId, msg: SmrMsg, ctx: &mut dyn Context<SmrMsg>) {
        if self.terminated || msg.slot.index() >= self.workload.len() as u64 {
            return;
        }
        let slot = msg.slot;
        self.instance(slot);
        let inst = self.slots.get_mut(&slot).expect("just inserted");
        let mut sub = SubCtx {
            outer: ctx,
            slot,
            commits: Vec::new(),
        };
        Protocol::on_message(inst, from, msg.inner, &mut sub);
        let commits = sub.commits;
        self.absorb_commits(slot, commits, ctx);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<SmrMsg>) {
        if self.terminated {
            return;
        }
        let slot = SlotId::new(tag / SLOT_TAG_STRIDE);
        let inner_tag = tag % SLOT_TAG_STRIDE;
        if slot.index() >= self.workload.len() as u64 {
            return;
        }
        self.instance(slot);
        let inst = self.slots.get_mut(&slot).expect("just inserted");
        let mut sub = SubCtx {
            outer: ctx,
            slot,
            commits: Vec::new(),
        };
        Protocol::on_timer(inst, inner_tag, &mut sub);
        let commits = sub.commits;
        self.absorb_commits(slot, commits, ctx);
    }
}

impl<S> std::fmt::Debug for SlotEngine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotEngine")
            .field("me", &self.signer.id())
            .field("slots", &self.slots.len())
            .field("applied_up_to", &self.applied_up_to)
            .finish()
    }
}

/// Context adapter: wraps/unwraps slot tags around the inner protocol's
/// view of the world.
struct SubCtx<'a> {
    outer: &'a mut dyn Context<SmrMsg>,
    slot: SlotId,
    commits: Vec<Value>,
}

impl Context<VbbMsg> for SubCtx<'_> {
    fn me(&self) -> PartyId {
        self.outer.me()
    }
    fn config(&self) -> Config {
        self.outer.config()
    }
    fn now(&self) -> LocalTime {
        self.outer.now()
    }
    fn send(&mut self, to: PartyId, msg: VbbMsg) {
        self.outer.send(
            to,
            SmrMsg {
                slot: self.slot,
                inner: msg,
            },
        );
    }
    // Forward multicasts as multicasts (not n sends) so slot-tagged
    // signature messages ride the runtime's shared-payload fast path.
    fn multicast(&mut self, msg: VbbMsg) {
        self.outer.multicast(SmrMsg {
            slot: self.slot,
            inner: msg,
        });
    }
    fn multicast_except(&mut self, msg: VbbMsg, skip: PartyId) {
        self.outer.multicast_except(
            SmrMsg {
                slot: self.slot,
                inner: msg,
            },
            skip,
        );
    }
    fn set_timer(&mut self, delay: Duration, tag: u64) {
        self.outer
            .set_timer(delay, self.slot.index() * SLOT_TAG_STRIDE + tag);
    }
    fn commit(&mut self, value: Value) {
        self.commits.push(value);
    }
    fn terminate(&mut self) {
        // A slot instance terminating does not terminate the replica.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Counter, KvStore};
    use gcl_crypto::Keychain;
    use gcl_sim::{FixedDelay, Outcome, Simulation, TimingModel};
    use gcl_types::GlobalTime;

    const DELTA: Duration = Duration::from_micros(100);

    fn run_counter(
        n: usize,
        f: usize,
        commands: u64,
        pipeline: usize,
    ) -> (Outcome, Vec<Arc<Mutex<Counter>>>) {
        let cfg = Config::new(n, f).unwrap();
        let chain = Keychain::generate(n, 130);
        let workload: Vec<Value> = (1..=commands).map(Value::new).collect();
        let machines: Vec<Arc<Mutex<Counter>>> = (0..n)
            .map(|_| Arc::new(Mutex::new(Counter::default())))
            .collect();
        let ms = machines.clone();
        let o = Simulation::build(cfg)
            .timing(TimingModel::PartialSynchrony {
                gst: GlobalTime::ZERO,
                big_delta: DELTA,
            })
            .oracle(FixedDelay::new(DELTA))
            .spawn_honest(move |p| {
                SlotEngine::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    DELTA,
                    workload.clone(),
                    pipeline,
                    ms[p.as_usize()].clone(),
                )
            })
            .run();
        (o, machines)
    }

    #[test]
    fn replicates_a_counter_log() {
        let (o, machines) = run_counter(4, 1, 10, 3);
        assert!(o.agreement_holds(), "log digests agree");
        assert!(o.all_honest_committed());
        for m in &machines {
            assert_eq!(m.lock().total(), (1..=10).sum::<u64>());
            assert_eq!(m.lock().applied(), 10);
        }
    }

    #[test]
    fn pipelining_reduces_wall_time() {
        let (serial, _) = run_counter(4, 1, 8, 1);
        let (piped, _) = run_counter(4, 1, 8, 4);
        assert!(
            piped.end_time() < serial.end_time(),
            "pipeline 4 ({}) should beat pipeline 1 ({})",
            piped.end_time(),
            serial.end_time()
        );
    }

    #[test]
    fn per_slot_latency_is_two_rounds() {
        // One command: the whole run is one slot = one good-case broadcast.
        let (o, _) = run_counter(4, 1, 1, 1);
        assert!(o.all_honest_committed());
        // Commit of the log (= slot 0) at 2Δ + ε.
        assert!(o.good_case_latency().unwrap() <= DELTA * 2);
    }

    #[test]
    fn kv_replicas_converge() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 131);
        let workload: Vec<Value> = (0..6).map(|i| KvStore::set(i % 3, 100 + i)).collect();
        let machines: Vec<Arc<Mutex<KvStore>>> = (0..4)
            .map(|_| Arc::new(Mutex::new(KvStore::default())))
            .collect();
        let ms = machines.clone();
        let o = Simulation::build(cfg)
            .timing(TimingModel::PartialSynchrony {
                gst: GlobalTime::ZERO,
                big_delta: DELTA,
            })
            .oracle(FixedDelay::new(DELTA))
            .spawn_honest(move |p| {
                SlotEngine::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    DELTA,
                    workload.clone(),
                    2,
                    ms[p.as_usize()].clone(),
                )
            })
            .run();
        assert!(o.agreement_holds());
        let d0 = machines[0].lock().state_digest();
        for m in &machines[1..] {
            assert_eq!(m.lock().state_digest(), d0);
        }
        assert_eq!(machines[0].lock().get(0), Some(103));
        assert_eq!(machines[0].lock().get(1), Some(104));
        assert_eq!(machines[0].lock().get(2), Some(105));
    }

    #[test]
    fn empty_workload_trivially_done() {
        let (o, _) = run_counter(4, 1, 0, 2);
        assert!(o.all_honest_committed());
        assert!(o.all_honest_terminated());
    }

    #[test]
    #[should_panic(expected = "pipeline depth")]
    fn zero_pipeline_rejected() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 1);
        let _ = SlotEngine::new(
            cfg,
            chain.signer(PartyId::new(0)),
            chain.pki(),
            DELTA,
            vec![],
            0,
            Arc::new(Mutex::new(Counter::default())),
        );
    }
}
