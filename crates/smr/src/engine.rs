//! The slot multiplexer: batched proposals over per-slot `(5f−1)`-VBB.
//!
//! Each slot of the log decides one [`Batch`] of client commands. The
//! consensus value of a slot is the batch's 63-bit digest (or the reserved
//! [`Value::NO_OP`] for the empty batch), and the batch bytes travel
//! alongside consensus as [`SmrMsg::Payload`] messages — a replica that
//! learns a digest before its bytes recovers them with
//! [`SmrMsg::PayloadPull`].
//!
//! # Termination
//!
//! Replicas no longer know the workload length in advance. The log closes
//! in one of two ways:
//!
//! * **Seal** — a leader whose (closed) command queue has drained proposes
//!   [`Batch::Seal`]; applying it snapshots the state digest and
//!   terminates. Under leader rotation any replica can seal: a rotation
//!   leader whose closed pool has drained stages the seal for its view.
//! * **Quiesce** — `quiesce_after` consecutive no-op slots at the applied
//!   frontier terminate the replica with the same digest snapshot. This
//!   is the trace of a genuinely idle service: a timed-out slot first
//!   hands proposal rights to the next view's rotation leader, and only
//!   decides [`Value::NO_OP`] when that leader (and its successors) have
//!   nothing queued either.
//!
//! Both rules are functions of the applied log prefix, so replicas that
//! agree on the log agree on the stopping point and the digest.
//!
//! # Windowing and pruning
//!
//! All per-slot state is bounded relative to the applied frontier: slot
//! instances are only *created* for indices in
//! `[applied, applied + PAYLOAD_WINDOW]` (messages naming slots outside the
//! window are dropped — a Byzantine peer cannot allocate unbounded
//! instances by naming far-future slots), and instances, commit records,
//! and payloads more than [`PAYLOAD_RETENTION`] slots *behind* the frontier
//! are pruned. A replica that misses a payload re-requests it with
//! [`SmrMsg::PayloadPull`], re-armed on a timer until the bytes arrive.

use crate::machine::StateMachine;
use crate::mempool::{AdmissionError, Mempool, MempoolStats};
use gcl_core::psync::{VbbFiveFMinusOne, VbbMsg};
use gcl_crypto::{Digest, Pki, Signer, Verifier};
use gcl_sim::{Context, Protocol};
use gcl_types::{
    accept_all, Batch, Config, Decode, Duration, Encode, LocalTime, PartyId, SlotId, Value, View,
    WireError,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Wire messages of the SMR layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmrMsg {
    /// A psync-VBB message tagged with its slot.
    Slot {
        /// The slot this message belongs to.
        slot: SlotId,
        /// The inner broadcast message.
        inner: VbbMsg,
    },
    /// The bytes behind a proposed batch digest (leader disseminates these
    /// just before proposing; peers re-serve them on request).
    Payload {
        /// The slot the batch was proposed at.
        slot: SlotId,
        /// The proposed batch.
        batch: Batch,
    },
    /// "I committed a digest for `slot` but never saw its batch" — any
    /// peer holding the payload answers with [`SmrMsg::Payload`].
    PayloadPull {
        /// The slot whose payload is missing.
        slot: SlotId,
    },
    /// A client command submitted for replication (the open-loop serving
    /// path). Every serving replica admits it to its own pool, so a
    /// failover leader has the command available to re-propose.
    Submit {
        /// The command.
        cmd: Value,
    },
    /// Serving acknowledgement, addressed to [`PartyId::CLIENT`]: the
    /// command committed at `slot` and has been applied. A retried
    /// submission of an already-committed command is re-acknowledged with
    /// its recorded slot.
    Ack {
        /// The acknowledged command.
        cmd: Value,
        /// The slot the command committed at.
        slot: SlotId,
    },
    /// Serving back-pressure, addressed to [`PartyId::CLIENT`]: the
    /// command was refused admission (pool at capacity, or an
    /// inadmissible encoding) and the client should back off and retry.
    Reject {
        /// The refused command.
        cmd: Value,
    },
}

const TAG_SLOT: u8 = 1;
const TAG_PAYLOAD: u8 = 2;
const TAG_PULL: u8 = 3;
const TAG_SUBMIT: u8 = 4;
const TAG_ACK: u8 = 5;
const TAG_REJECT: u8 = 6;

impl Encode for SmrMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            SmrMsg::Slot { slot, inner } => {
                buf.push(TAG_SLOT);
                slot.encode(buf);
                inner.encode(buf);
            }
            SmrMsg::Payload { slot, batch } => {
                buf.push(TAG_PAYLOAD);
                slot.encode(buf);
                batch.encode(buf);
            }
            SmrMsg::PayloadPull { slot } => {
                buf.push(TAG_PULL);
                slot.encode(buf);
            }
            SmrMsg::Submit { cmd } => {
                buf.push(TAG_SUBMIT);
                cmd.encode(buf);
            }
            SmrMsg::Ack { cmd, slot } => {
                buf.push(TAG_ACK);
                cmd.encode(buf);
                slot.encode(buf);
            }
            SmrMsg::Reject { cmd } => {
                buf.push(TAG_REJECT);
                cmd.encode(buf);
            }
        }
    }
}

impl Decode for SmrMsg {
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            TAG_SLOT => Ok(SmrMsg::Slot {
                slot: Decode::decode(input)?,
                inner: Decode::decode(input)?,
            }),
            TAG_PAYLOAD => Ok(SmrMsg::Payload {
                slot: Decode::decode(input)?,
                batch: Decode::decode(input)?,
            }),
            TAG_PULL => Ok(SmrMsg::PayloadPull {
                slot: Decode::decode(input)?,
            }),
            TAG_SUBMIT => Ok(SmrMsg::Submit {
                cmd: Decode::decode(input)?,
            }),
            TAG_ACK => Ok(SmrMsg::Ack {
                cmd: Decode::decode(input)?,
                slot: Decode::decode(input)?,
            }),
            TAG_REJECT => Ok(SmrMsg::Reject {
                cmd: Decode::decode(input)?,
            }),
            tag => Err(WireError::BadTag { ty: "SmrMsg", tag }),
        }
    }
}

/// Timer-tag multiplexing: the slot index is packed above the inner tag.
/// The inner protocol owns the low `SLOT_TAG_BITS`; slots own the rest.
const SLOT_TAG_BITS: u32 = 40;
/// First inner tag that no longer fits below the slot bits.
const MAX_INNER_TAG: u64 = 1 << SLOT_TAG_BITS;
/// First slot index that no longer fits above the inner bits.
const MAX_SLOT_INDEX: u64 = 1 << (64 - SLOT_TAG_BITS);

/// Packs a slot index and an inner timer tag into one timer tag, or `None`
/// when either coordinate is out of range (the pair would alias another
/// slot's timers if packed unchecked).
fn pack_slot_tag(slot: SlotId, inner: u64) -> Option<u64> {
    if inner >= MAX_INNER_TAG || slot.index() >= MAX_SLOT_INDEX {
        return None;
    }
    Some((slot.index() << SLOT_TAG_BITS) | inner)
}

/// Inverse of [`pack_slot_tag`].
fn unpack_slot_tag(tag: u64) -> (SlotId, u64) {
    (SlotId::new(tag >> SLOT_TAG_BITS), tag & (MAX_INNER_TAG - 1))
}

/// Inner tag reserved for the engine's own per-slot payload-pull retry
/// timer. [`SubCtx::set_timer`] refuses to pack it for the inner protocol,
/// so a slot instance can never collide with it (VBB tags are view
/// numbers, nowhere near 2^40 − 1 in any real execution).
const PULL_RETRY_TAG: u64 = MAX_INNER_TAG - 1;

/// Slots this far behind the applied frontier have their payloads pruned
/// (retained so lagging peers can still pull recently applied batches).
const PAYLOAD_RETENTION: u64 = 128;
/// Slots this far ahead of the applied frontier refuse payload storage.
const PAYLOAD_WINDOW: u64 = 1024;
/// Distinct digests stored per slot (an equivocating leader can author at
/// most a handful before the view changes; the bound caps its memory).
const MAX_PAYLOADS_PER_SLOT: usize = 4;

/// The consensus value standing in for a batch: the reserved
/// [`Value::NO_OP`] for the empty batch, otherwise the first 63 bits of
/// the batch encoding's digest (the top bit is cleared so a digest can
/// never alias `NO_OP`, whose encoding has it set).
fn batch_value(batch: &Batch) -> Value {
    if batch.is_no_op() {
        return Value::NO_OP;
    }
    let bytes = batch.to_wire();
    let digest = Digest::of(bytes.as_slice());
    let mut le = [0u8; 8];
    le.copy_from_slice(&digest.as_bytes()[..8]);
    Value::new(u64::from_le_bytes(le) & (u64::MAX >> 1))
}

/// Tuning knobs of a [`SlotEngine`] replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmrParams {
    /// Max commands per proposed batch.
    pub batch: usize,
    /// Slots kept in flight past the applied frontier.
    pub pipeline: usize,
    /// Consecutive trailing no-op slots after which the replica concludes
    /// the log has gone quiet and terminates.
    pub quiesce_after: u64,
    /// Mempool capacity (pending client commands).
    pub mempool_capacity: usize,
}

impl Default for SmrParams {
    fn default() -> Self {
        SmrParams {
            batch: 4,
            pipeline: 4,
            quiesce_after: 4,
            mempool_capacity: 1 << 16,
        }
    }
}

/// The shared command pool of one replica: the mempool plus the
/// proposal-staging state the per-slot rotation closures write into.
///
/// Sits behind an `Arc<Mutex<…>>` because the slot instances' fallback
/// sources (see [`SlotEngine::rotation_source`]) need access while the
/// engine itself is mutably borrowed driving a slot. The lock is never
/// held across a call into a slot instance.
struct PoolState {
    mempool: Mempool,
    /// Batches drained by rotation fallback sources, awaiting payload
    /// dissemination and proposal bookkeeping (flushed by
    /// [`SlotEngine::flush_staged`] right after the slot interaction).
    staged: Vec<(SlotId, Batch)>,
    /// Whether the command queue is complete (workload mode): a leader
    /// whose pool drains proposes [`Batch::Seal`].
    closed: bool,
    /// The seal has been proposed and not (yet) lost a view change; stop
    /// proposing further seals.
    sealed: bool,
}

/// A replica: one `(5f−1)`-psync-VBB instance per slot, committed batches
/// applied in slot order to the shared [`StateMachine`].
///
/// The stable primary (party 0) leads view 1 of every slot, draining its
/// [`Mempool`] into batched proposals and keeping up to `pipeline` slots
/// in flight. Followers arm a view timer for every slot within `pipeline`
/// of their applied frontier, so a leader that goes quiet on *any* slot is
/// timed out — and **leader rotation** hands proposal rights to the next
/// view's round-robin leader, which re-proposes from its own pool instead
/// of letting the slot fall back to a no-op. Commands from a view-changed
/// in-flight batch are re-admitted idempotently, and applies are
/// deduplicated against the pool's committed filter, so every admitted
/// command applies exactly once whatever the crash schedule. The state
/// machine sits behind an `Arc<Mutex<…>>` so tests and applications can
/// observe it after (or during) the run.
pub struct SlotEngine<S> {
    config: Config,
    signer: Signer,
    pki: Arc<Pki>,
    big_delta: Duration,
    params: SmrParams,
    machine: Arc<Mutex<S>>,
    pool: Arc<Mutex<PoolState>>,
    /// Batches this replica proposed (view 1) or staged for a later view,
    /// per slot: when the slot decides something else, their commands are
    /// re-queued (and a lost seal un-seals the pool).
    my_proposals: BTreeMap<SlotId, Vec<Batch>>,
    /// Observability probe: when installed, the pool's counters are
    /// snapshotted here on every pump.
    stats_probe: Option<Arc<Mutex<MempoolStats>>>,
    slots: BTreeMap<SlotId, VbbFiveFMinusOne>,
    committed: BTreeMap<SlotId, Value>,
    payloads: BTreeMap<SlotId, BTreeMap<Value, Batch>>,
    pulled: BTreeSet<SlotId>,
    /// Leader-side proposal cursor: the next slot index this leader will
    /// try to propose at. Advanced only by the leader itself (proposing,
    /// or skipping a slot that other parties' view change already opened)
    /// — never by incoming messages, so a peer naming a far-future slot
    /// cannot push the cursor past the frontier window.
    next_propose: u64,
    /// Applied frontier: all slots below are applied.
    applied: u64,
    /// Consecutive no-op slots at the applied frontier.
    trailing_noops: u64,
    terminated: bool,
}

impl<S: StateMachine> SlotEngine<S> {
    /// Creates a replica in **serving mode**: the log is open-ended, the
    /// leader proposes whatever clients [`SmrMsg::Submit`], and the run
    /// ends by quiesce. Use [`SlotEngine::with_workload`] for the closed
    /// pre-baked-queue mode that seals the log.
    ///
    /// # Panics
    ///
    /// Panics if `params.pipeline == 0`, or `n < 5f − 1` (engine
    /// requirement).
    pub fn new(
        config: Config,
        signer: Signer,
        pki: Arc<Pki>,
        big_delta: Duration,
        params: SmrParams,
        machine: Arc<Mutex<S>>,
    ) -> Self {
        assert!(params.pipeline >= 1, "pipeline depth must be at least 1");
        assert!(
            config.supports_two_round_psync(),
            "SMR engine requires n >= 5f - 1"
        );
        let pool = PoolState {
            mempool: Mempool::new(params.mempool_capacity),
            staged: Vec::new(),
            closed: false,
            sealed: false,
        };
        SlotEngine {
            config,
            signer,
            pki,
            big_delta,
            params,
            machine,
            pool: Arc::new(Mutex::new(pool)),
            my_proposals: BTreeMap::new(),
            stats_probe: None,
            slots: BTreeMap::new(),
            committed: BTreeMap::new(),
            payloads: BTreeMap::new(),
            pulled: BTreeSet::new(),
            next_propose: 0,
            applied: 0,
            trailing_noops: 0,
            terminated: false,
        }
    }

    /// Pre-loads a complete client workload and closes the queue: the
    /// leader drains it into batches and seals the log behind the last
    /// command.
    ///
    /// # Panics
    ///
    /// Panics if a workload command is not admissible (the reserved
    /// [`Value::NO_OP`] encoding).
    #[must_use]
    pub fn with_workload(self, workload: Vec<Value>) -> Self {
        {
            let mut st = self.pool.lock();
            if workload.len() > st.mempool.capacity() {
                st.mempool = Mempool::new(workload.len());
            }
            for cmd in workload {
                st.mempool
                    .submit(cmd)
                    .expect("workload commands must be admissible");
            }
            st.closed = true;
        }
        self
    }

    /// Installs an observability probe: the pool's counters are
    /// snapshotted into `probe` on every pump, so an external harness can
    /// report occupancy / admitted / rejected / re-queued without sharing
    /// the engine itself.
    #[must_use]
    pub fn with_stats_probe(mut self, probe: Arc<Mutex<MempoolStats>>) -> Self {
        self.stats_probe = Some(probe);
        self
    }

    fn me(&self) -> PartyId {
        self.signer.id()
    }

    fn is_leader(&self) -> bool {
        self.me() == PartyId::new(0)
    }

    /// The per-slot rotation hook: when a view times out and *this*
    /// replica leads the next view, the slot's VBB instance consults this
    /// source for a proposal instead of falling back to the no-op. The
    /// closure drains a batch from the shared pool (or stages the seal for
    /// a drained closed pool) and records it in `staged`; the engine
    /// flushes the staging area — payload dissemination plus re-queue
    /// bookkeeping — right after the slot interaction returns, because the
    /// engine itself is mutably borrowed while the closure runs.
    fn rotation_source(&self, slot: SlotId) -> impl FnMut(View) -> Value + Send + 'static {
        let pool = Arc::clone(&self.pool);
        let batch_cap = self.params.batch;
        move |_view| {
            let mut st = pool.lock();
            if let Some(batch) = st.mempool.take_batch(batch_cap) {
                let value = batch_value(&batch);
                st.staged.push((slot, batch));
                value
            } else if st.closed && !st.sealed {
                st.sealed = true;
                st.staged.push((slot, Batch::Seal));
                batch_value(&Batch::Seal)
            } else {
                Value::NO_OP
            }
        }
    }

    /// Disseminates and records every batch the rotation sources staged
    /// since the last flush: store + multicast the payload bytes and track
    /// the batch in `my_proposals` so a lost view change re-queues it.
    fn flush_staged(&mut self, ctx: &mut dyn Context<SmrMsg>) {
        loop {
            let staged: Vec<(SlotId, Batch)> = {
                let mut st = self.pool.lock();
                std::mem::take(&mut st.staged)
            };
            if staged.is_empty() {
                break;
            }
            for (slot, batch) in staged {
                if !batch.is_no_op() {
                    self.store_payload(slot, batch.clone());
                    ctx.multicast(SmrMsg::Payload {
                        slot,
                        batch: batch.clone(),
                    });
                }
                self.my_proposals.entry(slot).or_default().push(batch);
            }
        }
    }

    /// Creates (and starts) the slot instance if absent, then routes `f`
    /// into it, recording any commit it produces. New leader-side
    /// instances created *here* (i.e. not through the propose path) carry
    /// the explicit empty proposal — the slot is being driven by other
    /// parties' view change, and the leader has nothing queued for it.
    fn with_slot(
        &mut self,
        slot: SlotId,
        ctx: &mut dyn Context<SmrMsg>,
        f: impl FnOnce(&mut VbbFiveFMinusOne, &mut SubCtx<'_>),
    ) {
        if slot.index() >= MAX_SLOT_INDEX {
            return; // timers for this slot could not be packed
        }
        let created = !self.slots.contains_key(&slot);
        if created {
            // Creation window (mirrors store_payload): slots below the
            // applied frontier are already decided (their instances, if
            // any, have been pruned), and a far-future index would let a
            // single Byzantine message allocate instances without bound.
            // Messages to existing in-retention instances still route.
            if slot.index() < self.applied || slot.index() > self.applied + PAYLOAD_WINDOW {
                return;
            }
            let input = self.is_leader().then_some(Value::NO_OP);
            // Each slot instance gets its own `Verifier`: vote bundles,
            // timeout bundles, and re-proposed certificates inside one slot
            // amortize to cache hits without any cross-slot sharing.
            let inst = VbbFiveFMinusOne::new(
                self.config,
                self.signer.clone(),
                Verifier::new(Arc::clone(&self.pki)),
                accept_all(),
                self.big_delta,
                input,
            )
            .with_fallback(Value::NO_OP)
            .with_fallback_source(self.rotation_source(slot));
            self.slots.insert(slot, inst);
        }
        let inst = self.slots.get_mut(&slot).expect("present");
        let mut sub = SubCtx {
            outer: ctx,
            slot,
            commits: Vec::new(),
        };
        if created {
            Protocol::start(inst, &mut sub);
        }
        f(inst, &mut sub);
        let commits = sub.commits;
        if let Some(v) = commits.first() {
            self.committed.entry(slot).or_insert(*v);
        }
        self.flush_staged(ctx);
    }

    /// Applies every batch decided at the frontier, in slot order. Stalls
    /// (and pulls) when a decided digest's payload is missing. Handles
    /// both termination rules. Returns whether the frontier advanced.
    fn apply_ready(&mut self, ctx: &mut dyn Context<SmrMsg>) -> bool {
        let mut progressed = false;
        while !self.terminated {
            let slot = SlotId::new(self.applied);
            let Some(&decided) = self.committed.get(&slot) else {
                break;
            };
            let batch = if decided.is_no_op() {
                Batch::no_op()
            } else if let Some(b) = self.payloads.get(&slot).and_then(|m| m.get(&decided)) {
                b.clone()
            } else {
                // Decided but the bytes never arrived: ask the peers, and
                // keep asking on a timer until they answer (a single pull
                // can race every holder's pruning horizon and be lost).
                if self.pulled.insert(slot) {
                    self.send_pull(slot, ctx);
                }
                break;
            };
            progressed = true;
            self.applied += 1;
            self.pulled.remove(&slot);
            let mine = self.my_proposals.remove(&slot).unwrap_or_default();
            // Prune everything behind the retention horizon — payloads,
            // the (committed, now inert) slot instances, and the decided
            // values — so long-running serving replicas stay bounded.
            let keep = SlotId::new(self.applied.saturating_sub(PAYLOAD_RETENTION));
            self.payloads = self.payloads.split_off(&keep);
            self.slots = self.slots.split_off(&keep);
            self.committed = self.committed.split_off(&keep);
            self.my_proposals = self.my_proposals.split_off(&keep);
            if batch.is_seal() {
                self.finish(ctx);
                break;
            }
            // Apply the decided batch through the exactly-once filter
            // (a command that already committed at an earlier slot — a
            // duplicate proposal from a crashed leader's era — must not
            // apply twice), then re-queue the commands of any proposal of
            // ours this slot's decision beat (a lost seal re-opens the
            // pool so a later slot can seal again). Both steps are
            // deterministic functions of the applied log prefix.
            let mut acks: Vec<Value> = Vec::new();
            let serving = {
                let mut st = self.pool.lock();
                let mut machine = self.machine.lock();
                for &cmd in batch.commands() {
                    if st.mempool.mark_committed(cmd, slot) {
                        machine.apply(slot, cmd);
                        acks.push(cmd);
                    }
                }
                for beaten in mine {
                    if batch_value(&beaten) == decided {
                        continue;
                    }
                    if beaten.is_seal() {
                        st.sealed = false;
                    } else {
                        for &cmd in beaten.commands() {
                            st.mempool.readmit(cmd);
                        }
                    }
                }
                !st.closed
            };
            if serving {
                for cmd in acks {
                    ctx.send(PartyId::CLIENT, SmrMsg::Ack { cmd, slot });
                }
            }
            if batch.is_no_op() {
                self.trailing_noops += 1;
                if self.trailing_noops >= self.params.quiesce_after {
                    self.finish(ctx);
                }
            } else {
                self.trailing_noops = 0;
            }
        }
        progressed
    }

    /// Multicasts a [`SmrMsg::PayloadPull`] for `slot` and arms the retry
    /// timer that keeps re-asking until the payload shows up.
    fn send_pull(&mut self, slot: SlotId, ctx: &mut dyn Context<SmrMsg>) {
        ctx.multicast_except(SmrMsg::PayloadPull { slot }, self.me());
        if let Some(tag) = pack_slot_tag(slot, PULL_RETRY_TAG) {
            ctx.set_timer(self.big_delta * 4, tag);
        }
    }

    /// Pull-retry timer fired: if the slot is still stuck at (or past) the
    /// frontier with its payload missing, ask again; otherwise let the
    /// retry chain die.
    fn retry_pull(&mut self, slot: SlotId, ctx: &mut dyn Context<SmrMsg>) {
        if slot.index() < self.applied || !self.pulled.contains(&slot) {
            return; // applied in the meantime
        }
        let resolved = match self.committed.get(&slot) {
            Some(v) if v.is_no_op() => true,
            Some(v) => self.payloads.get(&slot).is_some_and(|m| m.contains_key(v)),
            None => true, // cannot happen: pulls are only sent for decided slots
        };
        if resolved {
            // The bytes arrived but an earlier slot is holding the
            // frontier back — nothing left to pull here.
            self.pulled.remove(&slot);
            return;
        }
        self.send_pull(slot, ctx);
    }

    /// Reports the log digest as this replica's commit (for Outcome-level
    /// agreement checking) and halts.
    fn finish(&mut self, ctx: &mut dyn Context<SmrMsg>) {
        if self.terminated {
            return;
        }
        self.terminated = true;
        ctx.commit(Value::new(self.machine.lock().state_digest()));
        ctx.terminate();
    }

    /// Keeps `pipeline` slots in flight past the applied frontier: the
    /// leader proposes drained batches (and finally the seal); followers
    /// open watcher instances, arming their view timers — this is what
    /// closes the old "timers only for the first `pipeline` slots"
    /// liveness hole. Returns whether anything was proposed or armed.
    ///
    /// Followers arm per-slot, straight off the applied frontier: every
    /// slot in `[applied, applied + pipeline)` without an instance gets a
    /// watcher. There is deliberately no shared high-water mark — an
    /// out-of-window instance creation (or any remote message) cannot
    /// inflate a counter past the window and silence the arming loop.
    fn extend_frontier(&mut self, ctx: &mut dyn Context<SmrMsg>) -> bool {
        let mut progressed = false;
        let limit = (self.applied + self.params.pipeline as u64).min(MAX_SLOT_INDEX);
        if self.is_leader() {
            self.next_propose = self.next_propose.max(self.applied);
            while self.next_propose < limit && !self.terminated {
                let slot = SlotId::new(self.next_propose);
                if self.slots.contains_key(&slot) {
                    // Other parties' view change already opened this slot
                    // (our input there was the no-op): skip past it.
                    self.next_propose += 1;
                    continue;
                }
                let proposal = {
                    let mut st = self.pool.lock();
                    if let Some(b) = st.mempool.take_batch(self.params.batch) {
                        Some(b)
                    } else if st.closed && !st.sealed {
                        st.sealed = true;
                        Some(Batch::Seal)
                    } else {
                        None
                    }
                };
                let Some(batch) = proposal else { break };
                self.propose(slot, batch, ctx);
                progressed = true;
            }
        } else {
            for index in self.applied..limit {
                let slot = SlotId::new(index);
                if !self.slots.contains_key(&slot) {
                    // Watcher instance: no input, view timer armed at start.
                    self.with_slot(slot, ctx, |_, _| {});
                    progressed = true;
                }
            }
        }
        progressed
    }

    /// Leader: disseminate the batch bytes, then start the slot's VBB
    /// instance with the batch digest as its input. The payload multicast
    /// goes out first so (under FIFO links) every replica holds the bytes
    /// before the digest can commit.
    fn propose(&mut self, slot: SlotId, batch: Batch, ctx: &mut dyn Context<SmrMsg>) {
        debug_assert!(
            !self.slots.contains_key(&slot),
            "proposing into an already-open slot would clobber its instance"
        );
        let value = batch_value(&batch);
        if !batch.is_no_op() {
            self.payloads
                .entry(slot)
                .or_default()
                .insert(value, batch.clone());
            ctx.multicast(SmrMsg::Payload {
                slot,
                batch: batch.clone(),
            });
        }
        self.my_proposals.entry(slot).or_default().push(batch);
        let inst = VbbFiveFMinusOne::new(
            self.config,
            self.signer.clone(),
            Verifier::new(Arc::clone(&self.pki)),
            accept_all(),
            self.big_delta,
            Some(value),
        )
        .with_fallback(Value::NO_OP)
        .with_fallback_source(self.rotation_source(slot));
        self.slots.insert(slot, inst);
        self.next_propose = self.next_propose.max(slot.index() + 1);
        let inst = self.slots.get_mut(&slot).expect("just inserted");
        let mut sub = SubCtx {
            outer: ctx,
            slot,
            commits: Vec::new(),
        };
        Protocol::start(inst, &mut sub);
        let commits = sub.commits;
        if let Some(v) = commits.first() {
            self.committed.entry(slot).or_insert(*v);
        }
        self.flush_staged(ctx);
    }

    /// The drive loop: apply decided batches, extend the in-flight window,
    /// repeat until neither makes progress (or the replica terminates).
    fn pump(&mut self, ctx: &mut dyn Context<SmrMsg>) {
        while !self.terminated {
            let applied_some = self.apply_ready(ctx);
            if self.terminated {
                break;
            }
            let extended = self.extend_frontier(ctx);
            if !applied_some && !extended {
                break;
            }
        }
        if let Some(probe) = &self.stats_probe {
            let snapshot = self.pool.lock().mempool.stats();
            *probe.lock() = snapshot;
        }
    }

    fn store_payload(&mut self, slot: SlotId, batch: Batch) {
        if batch.is_no_op() || batch_is_outside_window(slot, self.applied) {
            return;
        }
        let entry = self.payloads.entry(slot).or_default();
        if entry.len() < MAX_PAYLOADS_PER_SLOT {
            entry.insert(batch_value(&batch), batch);
        }
    }
}

/// Whether a payload for `slot` is too far outside the applied-frontier
/// window to be worth storing.
fn batch_is_outside_window(slot: SlotId, applied: u64) -> bool {
    slot.index() + PAYLOAD_RETENTION < applied || slot.index() > applied + PAYLOAD_WINDOW
}

impl<S: StateMachine> Protocol for SlotEngine<S> {
    type Msg = SmrMsg;

    fn start(&mut self, ctx: &mut dyn Context<SmrMsg>) {
        self.pump(ctx);
    }

    fn on_message(&mut self, from: PartyId, msg: SmrMsg, ctx: &mut dyn Context<SmrMsg>) {
        if self.terminated {
            return;
        }
        match msg {
            SmrMsg::Slot { slot, inner } => {
                self.with_slot(slot, ctx, |inst, sub| {
                    Protocol::on_message(inst, from, inner, sub);
                });
                self.pump(ctx);
            }
            SmrMsg::Payload { slot, batch } => {
                self.store_payload(slot, batch);
                self.pump(ctx);
            }
            SmrMsg::PayloadPull { slot } => {
                let held: Vec<Batch> = self
                    .payloads
                    .get(&slot)
                    .map(|m| m.values().cloned().collect())
                    .unwrap_or_default();
                for batch in held {
                    ctx.send(from, SmrMsg::Payload { slot, batch });
                }
            }
            SmrMsg::Submit { cmd } => {
                // Every serving replica admits client traffic (not just
                // the view-1 leader): a failover leader must hold the
                // command in its own pool to re-propose it. The workload
                // modes (closed pools) ignore submissions entirely.
                let verdict = {
                    let mut st = self.pool.lock();
                    if st.closed {
                        return;
                    }
                    st.mempool.submit(cmd)
                };
                match verdict {
                    // Committed by the original submission: re-acknowledge
                    // with the recorded slot so a client whose ack was
                    // lost can still retire the command.
                    Err(AdmissionError::Committed(slot)) => {
                        ctx.send(PartyId::CLIENT, SmrMsg::Ack { cmd, slot });
                    }
                    // Back-pressure: tell the client to retry later.
                    Err(AdmissionError::Full | AdmissionError::Reserved) => {
                        ctx.send(PartyId::CLIENT, SmrMsg::Reject { cmd });
                    }
                    // Pending duplicate: the in-flight copy will ack.
                    Err(AdmissionError::Pending) | Ok(()) => {}
                }
                self.pump(ctx);
            }
            // Acks and rejects are client-addressed; a replica receiving
            // one (only a Byzantine peer would send it here) ignores it.
            SmrMsg::Ack { .. } | SmrMsg::Reject { .. } => {}
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<SmrMsg>) {
        if self.terminated {
            return;
        }
        let (slot, inner_tag) = unpack_slot_tag(tag);
        if inner_tag == PULL_RETRY_TAG {
            self.retry_pull(slot, ctx);
            return;
        }
        self.with_slot(slot, ctx, |inst, sub| {
            Protocol::on_timer(inst, inner_tag, sub);
        });
        self.pump(ctx);
    }
}

impl<S> std::fmt::Debug for SlotEngine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotEngine")
            .field("me", &self.signer.id())
            .field("slots", &self.slots.len())
            .field("applied", &self.applied)
            .field("pending", &self.pool.lock().mempool.pending())
            .finish()
    }
}

/// Context adapter: wraps/unwraps slot tags around the inner protocol's
/// view of the world.
struct SubCtx<'a> {
    outer: &'a mut dyn Context<SmrMsg>,
    slot: SlotId,
    commits: Vec<Value>,
}

impl Context<VbbMsg> for SubCtx<'_> {
    fn me(&self) -> PartyId {
        self.outer.me()
    }
    fn config(&self) -> Config {
        self.outer.config()
    }
    fn now(&self) -> LocalTime {
        self.outer.now()
    }
    fn send(&mut self, to: PartyId, msg: VbbMsg) {
        self.outer.send(
            to,
            SmrMsg::Slot {
                slot: self.slot,
                inner: msg,
            },
        );
    }
    // Forward multicasts as multicasts (not n sends) so slot-tagged
    // signature messages ride the runtime's shared-payload fast path.
    fn multicast(&mut self, msg: VbbMsg) {
        self.outer.multicast(SmrMsg::Slot {
            slot: self.slot,
            inner: msg,
        });
    }
    fn multicast_except(&mut self, msg: VbbMsg, skip: PartyId) {
        self.outer.multicast_except(
            SmrMsg::Slot {
                slot: self.slot,
                inner: msg,
            },
            skip,
        );
    }
    fn set_timer(&mut self, delay: Duration, tag: u64) {
        // Checked packing: an out-of-range pair would alias another slot's
        // timers — and the top inner tag is reserved for the engine's own
        // pull-retry timer — so both are rejected (debug builds flag it
        // loudly; release builds drop the timer, which at worst delays a
        // view change).
        match pack_slot_tag(self.slot, tag) {
            Some(packed) if tag != PULL_RETRY_TAG => self.outer.set_timer(delay, packed),
            _ => debug_assert!(
                false,
                "unpackable timer tag: slot {} inner {tag}",
                self.slot.index()
            ),
        }
    }
    fn commit(&mut self, value: Value) {
        self.commits.push(value);
    }
    fn terminate(&mut self) {
        // A slot instance terminating does not terminate the replica.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Counter, KvStore};
    use gcl_core::psync::TimeoutMsg;
    use gcl_crypto::Keychain;
    use gcl_sim::{Crashing, FixedDelay, Outcome, Scripted, Simulation, TimingModel};
    use gcl_types::{GlobalTime, View};

    const DELTA: Duration = Duration::from_micros(100);

    fn params(batch: usize, pipeline: usize) -> SmrParams {
        SmrParams {
            batch,
            pipeline,
            ..SmrParams::default()
        }
    }

    fn run_counter(
        n: usize,
        f: usize,
        commands: u64,
        p: SmrParams,
    ) -> (Outcome, Vec<Arc<Mutex<Counter>>>) {
        let cfg = Config::new(n, f).unwrap();
        let chain = Keychain::generate(n, 130);
        let workload: Vec<Value> = (1..=commands).map(Value::new).collect();
        let machines: Vec<Arc<Mutex<Counter>>> = (0..n)
            .map(|_| Arc::new(Mutex::new(Counter::default())))
            .collect();
        let ms = machines.clone();
        let o = Simulation::build(cfg)
            .timing(TimingModel::PartialSynchrony {
                gst: GlobalTime::ZERO,
                big_delta: DELTA,
            })
            .oracle(FixedDelay::new(DELTA))
            .spawn_honest(move |q| {
                SlotEngine::new(
                    cfg,
                    chain.signer(q),
                    chain.pki(),
                    DELTA,
                    p,
                    ms[q.as_usize()].clone(),
                )
                .with_workload(workload.clone())
            })
            .run();
        (o, machines)
    }

    #[test]
    fn replicates_a_counter_log() {
        let (o, machines) = run_counter(4, 1, 10, params(2, 3));
        assert!(o.agreement_holds(), "log digests agree");
        assert!(o.all_honest_committed());
        for m in &machines {
            assert_eq!(m.lock().total(), (1..=10).sum::<u64>());
            assert_eq!(m.lock().applied(), 10);
        }
    }

    #[test]
    fn batching_amortizes_slots() {
        let (unbatched, _) = run_counter(4, 1, 32, params(1, 4));
        let (batched, m) = run_counter(4, 1, 32, params(8, 4));
        assert!(
            batched.end_time() < unbatched.end_time(),
            "batch 8 ({}) should beat batch 1 ({})",
            batched.end_time(),
            unbatched.end_time()
        );
        assert_eq!(m[0].lock().applied(), 32, "batching loses no commands");
    }

    #[test]
    fn pipelining_reduces_wall_time() {
        let (serial, _) = run_counter(4, 1, 8, params(1, 1));
        let (piped, _) = run_counter(4, 1, 8, params(1, 4));
        assert!(
            piped.end_time() < serial.end_time(),
            "pipeline 4 ({}) should beat pipeline 1 ({})",
            piped.end_time(),
            serial.end_time()
        );
    }

    #[test]
    fn per_slot_latency_is_two_rounds() {
        // Serial slots, one command each: every decision is one good-case
        // broadcast (2Δ), plus the sealing slot at the end.
        let slots = 8u64;
        let (o, _) = run_counter(4, 1, slots, params(1, 1));
        assert!(o.all_honest_committed());
        let bound = DELTA * 2 * (slots + 2);
        assert!(
            o.end_time().since(GlobalTime::ZERO) <= bound,
            "{} exceeds ~2 rounds per slot ({bound})",
            o.end_time()
        );
    }

    #[test]
    fn old_magic_filler_replicates_as_a_command() {
        // `u64::MAX - 1` was the old in-band no-op filler; it must now be
        // an ordinary command that survives replication.
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 134);
        let workload = vec![Value::new(u64::MAX - 1)];
        let machines: Vec<Arc<Mutex<Counter>>> = (0..4)
            .map(|_| Arc::new(Mutex::new(Counter::default())))
            .collect();
        let ms = machines.clone();
        let o = Simulation::build(cfg)
            .timing(TimingModel::PartialSynchrony {
                gst: GlobalTime::ZERO,
                big_delta: DELTA,
            })
            .oracle(FixedDelay::new(DELTA))
            .spawn_honest(move |p| {
                SlotEngine::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    DELTA,
                    params(4, 2),
                    ms[p.as_usize()].clone(),
                )
                .with_workload(workload.clone())
            })
            .run();
        assert!(o.agreement_holds());
        assert!(o.all_honest_committed());
        for m in &machines {
            assert_eq!(m.lock().applied(), 1);
            assert_eq!(m.lock().total(), u64::MAX - 1);
        }
    }

    #[test]
    #[should_panic(expected = "admissible")]
    fn reserved_no_op_workload_rejected() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 1);
        let _ = SlotEngine::new(
            cfg,
            chain.signer(PartyId::new(0)),
            chain.pki(),
            DELTA,
            SmrParams::default(),
            Arc::new(Mutex::new(Counter::default())),
        )
        .with_workload(vec![Value::NO_OP]);
    }

    #[test]
    fn leader_crash_mid_log_followers_quiesce_and_agree() {
        // The follower timer-arming regression: the leader proposes the
        // head of the log honestly, then crashes. Followers must keep
        // arming view timers past the first `pipeline` slots, fill the
        // leader's silence with no-ops, and terminate by quiesce — on the
        // pre-fix engine they wait forever and never commit.
        let n = 4;
        let cfg = Config::new(n, 1).unwrap();
        let chain = Keychain::generate(n, 132);
        let workload: Vec<Value> = (1..=20).map(Value::new).collect();
        let machines: Vec<Arc<Mutex<Counter>>> = (0..n)
            .map(|_| Arc::new(Mutex::new(Counter::default())))
            .collect();
        let p = params(1, 2);
        let leader = SlotEngine::new(
            cfg,
            chain.signer(PartyId::new(0)),
            chain.pki(),
            DELTA,
            p,
            machines[0].clone(),
        )
        .with_workload(workload.clone());
        let ms = machines.clone();
        let o = Simulation::build(cfg)
            .timing(TimingModel::PartialSynchrony {
                gst: GlobalTime::ZERO,
                big_delta: DELTA,
            })
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(0), Crashing::new(leader, 12))
            .spawn_honest(move |q| {
                SlotEngine::new(
                    cfg,
                    chain.signer(q),
                    chain.pki(),
                    DELTA,
                    p,
                    ms[q.as_usize()].clone(),
                )
            })
            .run();
        assert!(o.agreement_holds(), "followers agree on the log digest");
        assert!(
            o.all_honest_committed(),
            "every follower must terminate via quiesce despite the dead leader"
        );
        assert!(o.all_honest_terminated());
        let applied = machines[1].lock().applied();
        assert!(applied >= 1, "the pre-crash head of the log must survive");
        for m in &machines[2..] {
            assert_eq!(m.lock().applied(), applied);
            assert_eq!(
                m.lock().state_digest(),
                machines[1].lock().state_digest(),
                "followers applied identical prefixes"
            );
        }
    }

    #[test]
    fn idle_open_log_quiesces() {
        // Serving mode with zero traffic: followers time the leader out
        // slot after slot until the quiesce rule stops everyone, with
        // identical (empty) logs.
        let n = 4;
        let cfg = Config::new(n, 1).unwrap();
        let chain = Keychain::generate(n, 135);
        let o = Simulation::build(cfg)
            .timing(TimingModel::PartialSynchrony {
                gst: GlobalTime::ZERO,
                big_delta: DELTA,
            })
            .oracle(FixedDelay::new(DELTA))
            .spawn_honest(move |p| {
                SlotEngine::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    DELTA,
                    SmrParams::default(),
                    Arc::new(Mutex::new(Counter::default())),
                )
            })
            .run();
        assert!(o.agreement_holds());
        assert!(o.all_honest_committed());
        assert!(o.all_honest_terminated());
    }

    #[test]
    fn kv_replicas_converge() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 131);
        let workload: Vec<Value> = (0..6).map(|i| KvStore::set(i % 3, 100 + i)).collect();
        let machines: Vec<Arc<Mutex<KvStore>>> = (0..4)
            .map(|_| Arc::new(Mutex::new(KvStore::default())))
            .collect();
        let ms = machines.clone();
        let o = Simulation::build(cfg)
            .timing(TimingModel::PartialSynchrony {
                gst: GlobalTime::ZERO,
                big_delta: DELTA,
            })
            .oracle(FixedDelay::new(DELTA))
            .spawn_honest(move |p| {
                SlotEngine::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    DELTA,
                    params(2, 2),
                    ms[p.as_usize()].clone(),
                )
                .with_workload(workload.clone())
            })
            .run();
        assert!(o.agreement_holds());
        let d0 = machines[0].lock().state_digest();
        for m in &machines[1..] {
            assert_eq!(m.lock().state_digest(), d0);
        }
        assert_eq!(machines[0].lock().get(0), Some(103));
        assert_eq!(machines[0].lock().get(1), Some(104));
        assert_eq!(machines[0].lock().get(2), Some(105));
    }

    #[test]
    fn empty_workload_seals_immediately() {
        let (o, machines) = run_counter(4, 1, 0, params(4, 2));
        assert!(o.all_honest_committed());
        assert!(o.all_honest_terminated());
        assert_eq!(machines[0].lock().applied(), 0);
    }

    #[test]
    #[should_panic(expected = "pipeline depth")]
    fn zero_pipeline_rejected() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 1);
        let _ = SlotEngine::new(
            cfg,
            chain.signer(PartyId::new(0)),
            chain.pki(),
            DELTA,
            params(4, 0),
            Arc::new(Mutex::new(Counter::default())),
        );
    }

    #[test]
    fn slot_tag_packing_boundaries() {
        // In-range pairs round-trip; the documented aliasing boundaries
        // (inner tag ≥ 2^40, slot index ≥ 2^24) are rejected instead of
        // silently colliding with another slot's timers.
        let slot = SlotId::new(77);
        let tag = pack_slot_tag(slot, MAX_INNER_TAG - 1).unwrap();
        assert_eq!(unpack_slot_tag(tag), (slot, MAX_INNER_TAG - 1));
        let top_slot = SlotId::new(MAX_SLOT_INDEX - 1);
        let tag = pack_slot_tag(top_slot, 3).unwrap();
        assert_eq!(unpack_slot_tag(tag), (top_slot, 3));
        assert_eq!(pack_slot_tag(slot, MAX_INNER_TAG), None);
        assert_eq!(pack_slot_tag(SlotId::new(MAX_SLOT_INDEX), 0), None);
        assert_eq!(
            pack_slot_tag(SlotId::new(MAX_SLOT_INDEX), MAX_INNER_TAG),
            None
        );
        // The old unchecked packing aliased this pair onto (slot+1, 0):
        let aliased = SlotId::new(1);
        assert_ne!(
            pack_slot_tag(aliased, MAX_INNER_TAG - 1).unwrap(),
            pack_slot_tag(SlotId::new(2), 0).unwrap()
        );
    }

    #[test]
    fn batch_values_never_alias_no_op() {
        assert_eq!(batch_value(&Batch::no_op()), Value::NO_OP);
        let cases = [
            Batch::Seal,
            Batch::Commands(vec![Value::new(u64::MAX - 1)]),
            Batch::Commands((0..64).map(Value::new).collect()),
        ];
        for b in cases {
            let v = batch_value(&b);
            assert!(!v.is_no_op(), "{b} digests to the reserved no-op");
        }
    }

    /// A bare-bones recording context for driving handlers directly.
    struct RecordingCtx {
        me: PartyId,
        config: Config,
        sent: Vec<(PartyId, SmrMsg)>,
        multicast: Vec<SmrMsg>,
        timers: Vec<(Duration, u64)>,
        committed: Vec<Value>,
        terminated: bool,
    }

    impl RecordingCtx {
        fn new(me: PartyId, config: Config) -> Self {
            RecordingCtx {
                me,
                config,
                sent: Vec::new(),
                multicast: Vec::new(),
                timers: Vec::new(),
                committed: Vec::new(),
                terminated: false,
            }
        }

        fn pulls_for(&self, slot: SlotId) -> usize {
            self.multicast
                .iter()
                .filter(|m| matches!(m, SmrMsg::PayloadPull { slot: s } if *s == slot))
                .count()
        }
    }

    impl Context<SmrMsg> for RecordingCtx {
        fn me(&self) -> PartyId {
            self.me
        }
        fn config(&self) -> Config {
            self.config
        }
        fn now(&self) -> LocalTime {
            LocalTime::ZERO
        }
        fn send(&mut self, to: PartyId, msg: SmrMsg) {
            self.sent.push((to, msg));
        }
        fn multicast(&mut self, msg: SmrMsg) {
            self.multicast.push(msg);
        }
        fn multicast_except(&mut self, msg: SmrMsg, _skip: PartyId) {
            self.multicast.push(msg);
        }
        fn set_timer(&mut self, delay: Duration, tag: u64) {
            self.timers.push((delay, tag));
        }
        fn commit(&mut self, value: Value) {
            self.committed.push(value);
        }
        fn terminate(&mut self) {
            self.terminated = true;
        }
    }

    #[test]
    fn missing_payload_is_pulled_then_applied() {
        // A replica that learns a slot's decision before its bytes must
        // stall, pull, and resume once a peer serves the payload.
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 133);
        let machine = Arc::new(Mutex::new(Counter::default()));
        let mut eng = SlotEngine::new(
            cfg,
            chain.signer(PartyId::new(1)),
            chain.pki(),
            DELTA,
            SmrParams::default(),
            machine.clone(),
        );
        let batch = Batch::Commands(vec![Value::new(7), Value::new(9)]);
        eng.committed.insert(SlotId::FIRST, batch_value(&batch));
        let mut ctx = RecordingCtx::new(PartyId::new(1), cfg);
        eng.pump(&mut ctx);
        assert_eq!(eng.applied, 0, "cannot apply without the payload");
        assert!(
            ctx.multicast
                .iter()
                .any(|m| matches!(m, SmrMsg::PayloadPull { slot } if *slot == SlotId::FIRST)),
            "a pull must go out for the missing payload"
        );
        Protocol::on_message(
            &mut eng,
            PartyId::new(2),
            SmrMsg::Payload {
                slot: SlotId::FIRST,
                batch,
            },
            &mut ctx,
        );
        assert_eq!(eng.applied, 1, "payload arrival unblocks the frontier");
        assert_eq!(machine.lock().applied(), 2);
        assert_eq!(machine.lock().total(), 16);
    }

    #[test]
    fn payload_pull_retries_until_answered() {
        // A single pull can be lost (or arrive after every holder pruned
        // the slot); the pull must re-arm on a timer, not fire once.
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 140);
        let mut eng = SlotEngine::new(
            cfg,
            chain.signer(PartyId::new(1)),
            chain.pki(),
            DELTA,
            SmrParams::default(),
            Arc::new(Mutex::new(Counter::default())),
        );
        let batch = Batch::Commands(vec![Value::new(3)]);
        eng.committed.insert(SlotId::FIRST, batch_value(&batch));
        let mut ctx = RecordingCtx::new(PartyId::new(1), cfg);
        eng.pump(&mut ctx);
        let retry_tag = pack_slot_tag(SlotId::FIRST, PULL_RETRY_TAG).unwrap();
        assert_eq!(ctx.pulls_for(SlotId::FIRST), 1);
        assert!(
            ctx.timers.iter().any(|(_, t)| *t == retry_tag),
            "the first pull must arm a retry timer"
        );
        // Still missing when the timer fires: pull again, re-arm.
        Protocol::on_timer(&mut eng, retry_tag, &mut ctx);
        assert_eq!(ctx.pulls_for(SlotId::FIRST), 2, "unanswered pull retries");
        assert_eq!(
            ctx.timers.iter().filter(|(_, t)| *t == retry_tag).count(),
            2,
            "the retry re-arms itself"
        );
        // Payload arrives, the slot applies; a stale retry firing later
        // must not pull again.
        Protocol::on_message(
            &mut eng,
            PartyId::new(2),
            SmrMsg::Payload {
                slot: SlotId::FIRST,
                batch,
            },
            &mut ctx,
        );
        assert_eq!(eng.applied, 1);
        Protocol::on_timer(&mut eng, retry_tag, &mut ctx);
        assert_eq!(ctx.pulls_for(SlotId::FIRST), 2, "stale retry is a no-op");
    }

    #[test]
    fn blocked_but_resolved_pull_stops_retrying() {
        // Slot 1's payload arrived while slot 0 still blocks the frontier:
        // the retry chain for slot 1 must die instead of re-pulling bytes
        // the replica already holds.
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 141);
        let mut eng = SlotEngine::new(
            cfg,
            chain.signer(PartyId::new(1)),
            chain.pki(),
            DELTA,
            SmrParams::default(),
            Arc::new(Mutex::new(Counter::default())),
        );
        let batch = Batch::Commands(vec![Value::new(8)]);
        let slot = SlotId::new(1);
        eng.committed.insert(slot, batch_value(&batch));
        eng.pulled.insert(slot);
        eng.store_payload(slot, batch);
        let mut ctx = RecordingCtx::new(PartyId::new(1), cfg);
        let retry_tag = pack_slot_tag(slot, PULL_RETRY_TAG).unwrap();
        Protocol::on_timer(&mut eng, retry_tag, &mut ctx);
        assert_eq!(ctx.pulls_for(slot), 0, "resolved pull must not re-fire");
        assert!(!eng.pulled.contains(&slot));
    }

    #[test]
    fn out_of_window_slot_messages_create_no_instances() {
        // One Byzantine message naming a far-future slot used to bump the
        // shared `opened` high-water mark past applied + pipeline, killing
        // follower timer arming and leader proposing forever (and letting
        // the attacker allocate instances without bound).
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 142);
        let mut eng = SlotEngine::new(
            cfg,
            chain.signer(PartyId::new(1)),
            chain.pki(),
            DELTA,
            SmrParams::default(),
            Arc::new(Mutex::new(Counter::default())),
        );
        let mut ctx = RecordingCtx::new(PartyId::new(1), cfg);
        Protocol::start(&mut eng, &mut ctx);
        let baseline = eng.slots.len();
        assert_eq!(
            baseline,
            SmrParams::default().pipeline,
            "follower watchers cover the frontier window at start"
        );
        let attack = |index: u64| SmrMsg::Slot {
            slot: SlotId::new(index),
            inner: VbbMsg::Timeout(TimeoutMsg::bot(&chain.signer(PartyId::new(3)), View::FIRST)),
        };
        Protocol::on_message(
            &mut eng,
            PartyId::new(3),
            attack(PAYLOAD_WINDOW + 1),
            &mut ctx,
        );
        Protocol::on_message(
            &mut eng,
            PartyId::new(3),
            attack(MAX_SLOT_INDEX - 1),
            &mut ctx,
        );
        assert_eq!(eng.slots.len(), baseline, "out-of-window slots rejected");
        // In-window slots still accept remote-driven instance creation.
        Protocol::on_message(&mut eng, PartyId::new(3), attack(PAYLOAD_WINDOW), &mut ctx);
        assert_eq!(eng.slots.len(), baseline + 1);
        // The frontier watchers survive: every slot within pipeline of the
        // applied frontier keeps an armed instance.
        for i in 0..SmrParams::default().pipeline as u64 {
            assert!(eng.slots.contains_key(&SlotId::new(i)));
        }
    }

    #[test]
    fn far_future_slot_attack_does_not_stall_the_log() {
        // End-to-end regression for the frontier-stall attack: a Byzantine
        // party names slot 500 000 early in the run. Pre-fix, every honest
        // replica inflates `opened` past applied + pipeline, the leader
        // stops proposing, followers stop arming view timers, and the log
        // freezes with nothing committed. Post-fix the message is dropped
        // and the full workload replicates.
        let n = 4;
        let cfg = Config::new(n, 1).unwrap();
        let chain = Keychain::generate(n, 143);
        let workload: Vec<Value> = (1..=20).map(Value::new).collect();
        let machines: Vec<Arc<Mutex<Counter>>> = (0..n)
            .map(|_| Arc::new(Mutex::new(Counter::default())))
            .collect();
        let p = params(2, 2);
        let attack = SmrMsg::Slot {
            slot: SlotId::new(500_000),
            inner: VbbMsg::Timeout(TimeoutMsg::bot(&chain.signer(PartyId::new(3)), View::FIRST)),
        };
        let honest: Vec<PartyId> = (0..3).map(PartyId::new).collect();
        let script = Scripted::multicast_at(LocalTime::from_micros(1), &honest, attack);
        let ms = machines.clone();
        let o = Simulation::build(cfg)
            .timing(TimingModel::PartialSynchrony {
                gst: GlobalTime::ZERO,
                big_delta: DELTA,
            })
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(3), script)
            .spawn_honest(move |q| {
                SlotEngine::new(
                    cfg,
                    chain.signer(q),
                    chain.pki(),
                    DELTA,
                    p,
                    ms[q.as_usize()].clone(),
                )
                .with_workload(workload.clone())
            })
            .run();
        assert!(o.agreement_holds());
        assert!(
            o.all_honest_committed(),
            "a far-future slot name must not freeze the applied frontier"
        );
        assert!(o.all_honest_terminated());
        for m in &machines[..3] {
            assert_eq!(m.lock().applied(), 20, "the whole workload replicates");
            assert_eq!(m.lock().total(), (1..=20).sum::<u64>());
        }
    }

    #[test]
    fn state_is_pruned_behind_the_retention_horizon() {
        // Serving replicas run indefinitely: instances, decided values and
        // payloads behind the retention horizon must be dropped, not kept
        // for the lifetime of the log.
        let total = PAYLOAD_RETENTION * 3;
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 144);
        let p = SmrParams {
            quiesce_after: total + 1,
            ..SmrParams::default()
        };
        let mut eng = SlotEngine::new(
            cfg,
            chain.signer(PartyId::new(1)),
            chain.pki(),
            DELTA,
            p,
            Arc::new(Mutex::new(Counter::default())),
        );
        let mut ctx = RecordingCtx::new(PartyId::new(1), cfg);
        for i in 0..total {
            let slot = SlotId::new(i);
            eng.with_slot(slot, &mut ctx, |_, _| {});
            eng.committed.insert(slot, Value::NO_OP);
        }
        assert_eq!(eng.slots.len() as u64, total);
        eng.pump(&mut ctx);
        assert_eq!(eng.applied, total);
        assert!(!eng.terminated, "quiesce_after is above the no-op run");
        let bound = (PAYLOAD_RETENTION as usize) + p.pipeline;
        assert!(
            eng.slots.len() <= bound,
            "instances must be pruned: {} > {bound}",
            eng.slots.len()
        );
        assert!(
            eng.committed.len() <= bound,
            "decided values must be pruned: {} > {bound}",
            eng.committed.len()
        );
        assert!(eng.payloads.len() <= bound);
    }

    #[test]
    fn payload_pull_is_served_from_storage() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 136);
        let mut eng = SlotEngine::new(
            cfg,
            chain.signer(PartyId::new(2)),
            chain.pki(),
            DELTA,
            SmrParams::default(),
            Arc::new(Mutex::new(Counter::default())),
        );
        let mut ctx = RecordingCtx::new(PartyId::new(2), cfg);
        let batch = Batch::Commands(vec![Value::new(5)]);
        Protocol::on_message(
            &mut eng,
            PartyId::new(0),
            SmrMsg::Payload {
                slot: SlotId::new(1),
                batch: batch.clone(),
            },
            &mut ctx,
        );
        Protocol::on_message(
            &mut eng,
            PartyId::new(3),
            SmrMsg::PayloadPull {
                slot: SlotId::new(1),
            },
            &mut ctx,
        );
        assert!(
            ctx.sent.iter().any(|(to, m)| *to == PartyId::new(3)
                && matches!(m, SmrMsg::Payload { slot, batch: b } if slot.index() == 1 && *b == batch)),
            "stored payloads are re-served to the puller"
        );
    }

    #[test]
    fn smr_msg_round_trips() {
        let msgs = [
            SmrMsg::Payload {
                slot: SlotId::new(3),
                batch: Batch::Commands(vec![Value::new(1), Value::new(2)]),
            },
            SmrMsg::Payload {
                slot: SlotId::new(4),
                batch: Batch::Seal,
            },
            SmrMsg::PayloadPull {
                slot: SlotId::new(9),
            },
            SmrMsg::Submit {
                cmd: Value::new(42),
            },
            SmrMsg::Ack {
                cmd: Value::new(42),
                slot: SlotId::new(17),
            },
            SmrMsg::Reject {
                cmd: Value::new(43),
            },
        ];
        for m in msgs {
            let bytes = m.to_wire();
            assert_eq!(SmrMsg::from_wire(&bytes).unwrap(), m);
        }
        assert!(matches!(
            SmrMsg::from_wire(&[99]),
            Err(WireError::BadTag { ty: "SmrMsg", .. })
        ));
    }

    /// Runs a closed counter workload where every party holds the full
    /// command queue (the registered closed-family shape) and the given
    /// crash schedule is applied; returns the outcome and machines.
    fn run_with_crashes(
        n: usize,
        f: usize,
        commands: u64,
        p: SmrParams,
        seed: u64,
        crashes: &[(u32, usize)], // (party, handled events before crash)
    ) -> (Outcome, Vec<Arc<Mutex<Counter>>>) {
        let cfg = Config::new(n, f).unwrap();
        let chain = Keychain::generate(n, seed);
        let workload: Vec<Value> = (1..=commands).map(Value::new).collect();
        let machines: Vec<Arc<Mutex<Counter>>> = (0..n)
            .map(|_| Arc::new(Mutex::new(Counter::default())))
            .collect();
        let ms = machines.clone();
        let mut build = Simulation::build(cfg)
            .timing(TimingModel::PartialSynchrony {
                gst: GlobalTime::ZERO,
                big_delta: DELTA,
            })
            .oracle(FixedDelay::new(DELTA));
        for &(party, handled) in crashes {
            let replica = SlotEngine::new(
                cfg,
                chain.signer(PartyId::new(party)),
                chain.pki(),
                DELTA,
                p,
                machines[party as usize].clone(),
            )
            .with_workload(workload.clone());
            build = build.byzantine(PartyId::new(party), Crashing::new(replica, handled));
        }
        let chain2 = chain.clone();
        let wl = workload.clone();
        let o = build
            .spawn_honest(move |q| {
                SlotEngine::new(
                    cfg,
                    chain2.signer(q),
                    chain2.pki(),
                    DELTA,
                    p,
                    ms[q.as_usize()].clone(),
                )
                .with_workload(wl.clone())
            })
            .run();
        (o, machines)
    }

    #[test]
    fn rotation_completes_the_workload_after_leader_crash() {
        // The robustness tentpole, end to end: the view-1 leader proposes
        // the head of the log and crashes. Pre-rotation, every remaining
        // slot fell back to a no-op and the tail of the workload was lost
        // to quiesce; with rotation the next view's leader re-proposes
        // from its own pool and the FULL workload replicates exactly once.
        let commands = 20;
        let (o, machines) = run_with_crashes(4, 1, commands, params(2, 2), 150, &[(0, 12)]);
        assert!(o.agreement_holds(), "honest replicas agree on the digest");
        assert!(
            o.all_honest_committed(),
            "the log must terminate despite the dead leader"
        );
        for m in &machines[1..] {
            assert_eq!(
                m.lock().applied(),
                commands,
                "rotation must recover the crashed leader's tail"
            );
            assert_eq!(m.lock().total(), (1..=commands).sum::<u64>());
        }
    }

    #[test]
    fn admitted_commands_apply_exactly_once_across_arbitrary_crashes() {
        // Property: whatever the leader-crash schedule (including two
        // successive leaders at n = 9, f = 2), every admitted command
        // applies exactly once, in some order — the counter state machine
        // records per-command apply counts, so a duplicate apply or a
        // lost command both show up as a wrong (total, applied) pair.
        let mut rng = 0x00dd_5eed_u64;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        for case in 0..6u64 {
            let commands = 8 + next() % 10;
            let two_crashes = case % 2 == 1;
            let (n, f) = if two_crashes { (9, 2) } else { (4, 1) };
            let crashes: Vec<(u32, usize)> = if two_crashes {
                vec![
                    (0, (6 + next() % 30) as usize),
                    (1, (30 + next() % 60) as usize),
                ]
            } else {
                vec![(0, (6 + next() % 40) as usize)]
            };
            let p = params(1 + (next() % 4) as usize, 1 + (next() % 3) as usize);
            let (o, machines) = run_with_crashes(n, f, commands, p, 160 + case, &crashes);
            assert!(o.agreement_holds(), "case {case}: digests agree");
            assert!(o.all_honest_committed(), "case {case}: run terminates");
            let expected_total = (1..=commands).sum::<u64>();
            for (q, m) in machines.iter().enumerate().skip(crashes.len()) {
                let m = m.lock();
                assert_eq!(
                    m.applied(),
                    commands,
                    "case {case}: replica {q} lost or duplicated a command"
                );
                assert_eq!(
                    m.total(),
                    expected_total,
                    "case {case}: replica {q} applied a command twice"
                );
            }
        }
    }
}
