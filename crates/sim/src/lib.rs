//! Deterministic discrete-event execution substrate.
//!
//! This crate is the paper's execution model (Section 2) made runnable:
//!
//! * **Parties** implement [`Protocol`] (honest code) or [`Strategy`]
//!   (arbitrary, possibly Byzantine code — every `Protocol` is also a
//!   `Strategy`). Parties interact with the world only through a
//!   [`Context`]: local clock, sends, timers, commit/terminate.
//! * **The adversary** controls message delays through a [`DelayOracle`],
//!   constrained by the run's [`TimingModel`] exactly as the paper
//!   prescribes: delays between honest parties are clamped to `[0, δ]`
//!   under synchrony and to "≤ Δ after GST" under partial synchrony, while
//!   links touching a Byzantine party are unconstrained (a Byzantine party
//!   "postponing sending or reading" simulates any delay, including ∞).
//! * **Clocks** may be skewed: each party starts at its own global instant
//!   per a [`gcl_types::SkewSchedule`] (σ = 0 is the synchronized-start
//!   model); all protocol-visible time is the party's *local* clock.
//! * **Latency** is recorded both in microseconds (synchronous good-case
//!   latency, Definition 6) and in *asynchronous rounds* (Definitions 9–10:
//!   causal message depth), so every row of Table 1 is measurable.
//!
//! # Examples
//!
//! Run a trivial one-round "echo" protocol on four parties:
//!
//! ```
//! use gcl_sim::{Context, FixedDelay, Protocol, Simulation, TimingModel};
//! use gcl_types::{Config, Duration, PartyId, Value};
//!
//! struct Echo;
//! impl Protocol for Echo {
//!     type Msg = Value;
//!     fn start(&mut self, ctx: &mut dyn Context<Value>) {
//!         if ctx.me() == PartyId::new(0) {
//!             ctx.multicast(Value::new(7));
//!         }
//!     }
//!     fn on_message(&mut self, _from: PartyId, v: Value, ctx: &mut dyn Context<Value>) {
//!         ctx.commit(v);
//!         ctx.terminate();
//!     }
//! }
//!
//! let cfg = Config::new(4, 1)?;
//! let outcome = Simulation::build(cfg)
//!     .timing(TimingModel::Asynchrony)
//!     .oracle(FixedDelay::new(Duration::from_micros(10)))
//!     .spawn_honest(|_| Echo)
//!     .run();
//! assert!(outcome.agreement_holds());
//! assert_eq!(outcome.committed_value(), Some(Value::new(7)));
//! # Ok::<(), gcl_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod context;
mod event;
mod network;
mod outcome;
mod runner;
mod scenario;
mod strategies;
mod sweep;

pub use backend::{Backend, Erase, ErasedMsg, ErasedSlot, MsgCodec, SimBackend};
pub use context::{Context, Protocol, Strategy};
#[doc(hidden)]
pub use event::queue_stress;
pub use event::TraceEntry;
pub use network::{
    DelayOracle, DelayRule, FixedDelay, LinkDelay, MsgEnvelope, MsgPredicate, PartySet,
    RandomDelay, ScheduleOracle, TimingModel,
};
pub use outcome::{CommitRecord, Outcome, OutcomeParts, SchedCounters};
pub use runner::{Simulation, SimulationBuilder};
pub use scenario::{
    derive_cell_seed, Admission, AdversaryMix, AdversaryRole, DelayChoice, FamilyParams, FnFamily,
    ScenarioError, ScenarioFamily, ScenarioRegistry, ScenarioSpec, SkewChoice, TimingKind,
    ValidityMode,
};
pub use strategies::{Crashing, Scripted, ScriptedAction, Silent};
pub use sweep::{CellReport, Sweep, SweepReport};
