//! The simulation loop.
//!
//! The hot path is allocation-free at steady state: the per-event effect
//! buffers (sends, timers, commits) are scratch vectors owned by `run()`
//! and drained after every handler invocation, per-link sequence counters
//! live in a flat `n × n` array instead of a hash map, and multicast
//! payloads are enqueued once behind a shared reference-counted pointer
//! and shared by all `n` in-flight deliveries (see [`Context::multicast`]).

use crate::context::{Context, Protocol, Strategy};
use crate::event::{EventKind, EventQueue, Payload, Shared, TraceEntry};
use crate::network::{clamp_delivery, DelayOracle, FixedDelay, MsgEnvelope, TimingModel};
use crate::outcome::{CommitRecord, Outcome};
use gcl_types::{Config, Duration, GlobalTime, LocalTime, PartyId, SkewSchedule, Value};
use std::fmt;

/// Entry point: `Simulation::build(config)` returns a [`SimulationBuilder`].
#[derive(Debug)]
pub struct Simulation;

impl Simulation {
    /// Starts building a simulation for `config`.
    pub fn build<M: Clone + fmt::Debug + Send + 'static>(config: Config) -> SimulationBuilder<M> {
        SimulationBuilder::new(config)
    }
}

/// A party slot: the strategy to run plus whether the slot is honest.
/// `None` until filled by the builder.
type Slot<M> = Option<(Box<dyn Strategy<M>>, bool)>;

/// Configures and runs one execution.
///
/// Slots left unfilled by [`SimulationBuilder::byzantine`] /
/// [`SimulationBuilder::honest_at`] are populated by
/// [`SimulationBuilder::spawn_honest`].
pub struct SimulationBuilder<M> {
    config: Config,
    timing: TimingModel,
    oracle: Box<dyn DelayOracle<M>>,
    skew: SkewSchedule,
    slots: Vec<Slot<M>>,
    broadcaster: PartyId,
    max_time: GlobalTime,
    max_events: u64,
    async_fallback: Duration,
    record_trace: bool,
    queue_delta: Duration,
    drop_dead_sends: bool,
}

impl<M: Clone + fmt::Debug + Send + 'static> SimulationBuilder<M> {
    fn new(config: Config) -> Self {
        let n = config.n();
        SimulationBuilder {
            config,
            timing: TimingModel::Asynchrony,
            oracle: Box::new(FixedDelay::new(Duration::from_micros(1))),
            skew: SkewSchedule::synchronized(n),
            slots: (0..n).map(|_| None).collect(),
            broadcaster: PartyId::new(0),
            max_time: GlobalTime::from_micros(600_000_000),
            max_events: 20_000_000,
            async_fallback: Duration::from_millis(1_000),
            record_trace: false,
            queue_delta: Duration::from_micros(1),
            drop_dead_sends: true,
        }
    }

    /// Sets the timing model (default: asynchrony).
    #[must_use]
    pub fn timing(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// Sets the adversarial delay oracle (default: every message 1µs).
    #[must_use]
    pub fn oracle(mut self, oracle: impl DelayOracle<M> + 'static) -> Self {
        self.oracle = Box::new(oracle);
        self
    }

    /// Sets per-party start times (default: synchronized start, σ = 0).
    ///
    /// # Panics
    ///
    /// Panics if the schedule covers a different number of parties.
    #[must_use]
    pub fn skew(mut self, skew: SkewSchedule) -> Self {
        assert_eq!(skew.len(), self.config.n(), "skew schedule size mismatch");
        self.skew = skew;
        self
    }

    /// Declares which party is the designated broadcaster (default: party 0).
    /// Only affects latency accounting, not behavior.
    #[must_use]
    pub fn broadcaster(mut self, p: PartyId) -> Self {
        self.broadcaster = p;
        self
    }

    /// Horizon after which the run stops (default: 600 simulated seconds).
    #[must_use]
    pub fn max_time(mut self, t: GlobalTime) -> Self {
        self.max_time = t;
        self
    }

    /// Event budget after which the run stops (default: 20 million). A
    /// truncated run still yields a well-formed [`Outcome`]; metrics that
    /// need every honest party to commit (e.g.
    /// [`Outcome::good_case_latency`]) come back `None`.
    #[must_use]
    pub fn max_events(mut self, budget: u64) -> Self {
        self.max_events = budget;
        self
    }

    /// Delivery fallback for `Never` on honest links under asynchrony.
    #[must_use]
    pub fn async_fallback(mut self, d: Duration) -> Self {
        self.async_fallback = d;
        self
    }

    /// Enables trace recording (off by default; traces can be large).
    #[must_use]
    pub fn record_trace(mut self, yes: bool) -> Self {
        self.record_trace = yes;
        self
    }

    /// Hints the event queue's calendar bucket width: the characteristic
    /// message delay δ of the run (default 1µs, matching the default
    /// oracle). The scenario layer plumbs its spec's δ through here so a
    /// fixed-delay n-way multicast lands in one time slot.
    #[must_use]
    pub fn queue_delta(mut self, delta: Duration) -> Self {
        self.queue_delta = delta;
        self
    }

    /// Whether sends to already-terminated recipients are discarded at
    /// enqueue time instead of being parked, popped and filtered (default:
    /// on). Either way the message is *sent* — it counts toward
    /// [`Outcome::messages_sent`] and the round-boundary bookkeeping — but
    /// with drops on it never touches the queue, and the discard is
    /// reported in [`Outcome::drops_at_enqueue`]. Off exists for A/B
    /// semantics tests; commits and audits are identical either way.
    #[must_use]
    pub fn drop_dead_sends(mut self, yes: bool) -> Self {
        self.drop_dead_sends = yes;
        self
    }

    /// Installs a Byzantine strategy at slot `p`.
    #[must_use]
    pub fn byzantine(mut self, p: PartyId, strategy: impl Strategy<M>) -> Self {
        self.slots[p.as_usize()] = Some((Box::new(strategy), false));
        self
    }

    /// Installs honest protocol code at slot `p` explicitly.
    #[must_use]
    pub fn honest_at(mut self, p: PartyId, protocol: impl Protocol<Msg = M>) -> Self {
        self.slots[p.as_usize()] = Some((Box::new(protocol), true));
        self
    }

    /// Installs a pre-boxed strategy at slot `p` with an explicit honesty
    /// flag — the type-erased backend path (see [`crate::SimBackend`]),
    /// where slots arrive already wrapped per the scenario's adversary mix.
    #[must_use]
    pub fn slot_boxed(mut self, p: PartyId, strategy: Box<dyn Strategy<M>>, honest: bool) -> Self {
        self.slots[p.as_usize()] = Some((strategy, honest));
        self
    }

    /// Fills every remaining slot with `make(party)` as honest code.
    #[must_use]
    pub fn spawn_honest<P: Protocol<Msg = M>>(
        mut self,
        mut make: impl FnMut(PartyId) -> P,
    ) -> Self {
        for i in 0..self.config.n() {
            if self.slots[i].is_none() {
                let p = PartyId::new(i as u32);
                self.slots[i] = Some((Box::new(make(p)), true));
            }
        }
        self
    }

    /// Runs the execution to completion and returns the [`Outcome`].
    ///
    /// # Panics
    ///
    /// Panics if any slot is still unfilled.
    pub fn run(self) -> Outcome {
        let SimulationBuilder {
            config,
            timing,
            oracle,
            skew,
            slots,
            broadcaster,
            max_time,
            max_events,
            async_fallback,
            record_trace,
            queue_delta,
            drop_dead_sends,
        } = self;

        let n = config.n();
        let mut strategies: Vec<Box<dyn Strategy<M>>> = Vec::with_capacity(n);
        let mut honest = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            let (s, h) = slot.unwrap_or_else(|| panic!("slot {i} was never filled"));
            strategies.push(s);
            honest.push(h);
        }

        let mut net = Router {
            queue: EventQueue::with_delta(queue_delta),
            oracle,
            link_seq: vec![0u64; n * n],
            last_delivery_of_round: Vec::new(),
            messages_sent: 0,
            drops_at_enqueue: 0,
            timing,
            async_fallback,
            n,
            honest,
            // Termination lives with the router so `route` can discard
            // sends to dead recipients at enqueue time.
            terminated: vec![false; n],
            drop_dead_sends,
        };
        for p in config.parties() {
            net.queue.push(skew.start_of(p), EventKind::Start(p));
        }

        let mut started = vec![false; n];
        let mut committed: Vec<Option<CommitRecord>> = vec![None; n];
        // None = nothing delivered yet; Some(r) = max round tag delivered.
        let mut max_round: Vec<Option<u32>> = vec![None; n];
        let mut trace = Vec::new();
        // Honest parties still running — O(1) replacement for an O(n)
        // "is everyone done" scan per event.
        let mut honest_live = net.honest.iter().filter(|&&h| h).count();

        // Scratch buffers for handler effects, drained after every event —
        // the steady-state loop reuses their capacity instead of
        // allocating fresh vectors per event.
        let mut sends: Vec<SendOp<M>> = Vec::new();
        let mut timers: Vec<(Duration, u64)> = Vec::new();
        let mut commits: Vec<Value> = Vec::new();

        let mut events_processed: u64 = 0;
        let mut now = GlobalTime::ZERO;

        while let Some(ev) = net.queue.pop() {
            if ev.at > max_time || events_processed >= max_events {
                break;
            }
            now = ev.at;
            events_processed += 1;

            // All honest parties done => nothing left to observe.
            if honest_live == 0 {
                break;
            }

            let (party, action) = match ev.kind {
                EventKind::Start(p) => {
                    started[p.as_usize()] = true;
                    if record_trace {
                        trace.push(TraceEntry::Started { at: now, party: p });
                    }
                    (p, Action::Start)
                }
                EventKind::Deliver {
                    to,
                    from,
                    msg,
                    round,
                } => {
                    if !started[to.as_usize()] && !net.terminated[to.as_usize()] {
                        // Delivered before the recipient's protocol start:
                        // buffer by rescheduling at its start instant.
                        net.queue.push(
                            skew.start_of(to),
                            EventKind::Deliver {
                                to,
                                from,
                                msg,
                                round,
                            },
                        );
                        continue;
                    }
                    if net.terminated[to.as_usize()] {
                        // Parked before the recipient terminated (or drops
                        // are off): discarded at pop, as always.
                        continue;
                    }
                    let slot = to.as_usize();
                    max_round[slot] = Some(max_round[slot].map_or(round, |r| r.max(round)));
                    if record_trace {
                        trace.push(TraceEntry::Delivered {
                            at: now,
                            from,
                            to,
                            round,
                            msg: format!("{msg:?}"),
                        });
                    }
                    (to, Action::Message(from, msg))
                }
                EventKind::Timer { party, tag } => {
                    if net.terminated[party.as_usize()] {
                        continue;
                    }
                    if record_trace {
                        trace.push(TraceEntry::TimerFired {
                            at: now,
                            party,
                            tag,
                        });
                    }
                    (party, Action::Timer(tag))
                }
            };

            let slot = party.as_usize();
            let start = skew.start_of(party);
            let local = now
                .to_local(start)
                .expect("event before party start should have been rescheduled");

            let mut ctx = CtxImpl {
                me: party,
                config,
                now_local: local,
                sends: &mut sends,
                timers: &mut timers,
                commits: &mut commits,
                terminate: false,
            };

            match action {
                Action::Start => strategies[slot].start(&mut ctx),
                Action::Message(from, msg) => {
                    // Hand the payload to the party by value: inline
                    // payloads move, the last in-flight copy of a
                    // multicast unwraps for free, earlier ones clone
                    // lazily — a dropped message is never cloned at all.
                    strategies[slot].on_message(from, msg.into_msg(), &mut ctx)
                }
                Action::Timer(tag) => strategies[slot].on_timer(tag, &mut ctx),
            }
            let halted = ctx.terminate;

            // Effects: commits first (they logically precede sends in the
            // same handler for metric purposes — same instant regardless).
            for value in commits.drain(..) {
                if committed[slot].is_none() {
                    let round = max_round[slot].map_or(0, |r| r + 1);
                    committed[slot] = Some(CommitRecord {
                        party,
                        value,
                        global: now,
                        local,
                        round,
                        step: events_processed,
                    });
                    if record_trace {
                        trace.push(TraceEntry::Committed {
                            at: now,
                            party,
                            value,
                        });
                    }
                }
            }

            let out_round = max_round[slot].map_or(0, |r| r + 1);
            for op in sends.drain(..) {
                match op {
                    SendOp::One(to, m) => {
                        net.route(party, to, Payload::Owned(Box::new(m)), now, out_round)
                    }
                    SendOp::All { except, msg } => {
                        // Multicast fast path: one shared payload, n
                        // pointer bumps, destinations in id order (exactly
                        // the default `Context::multicast` order).
                        let skip = except.map_or(u32::MAX, |p| p.index());
                        for i in 0..n as u32 {
                            if i == skip {
                                continue;
                            }
                            let to = PartyId::new(i);
                            net.route(
                                party,
                                to,
                                Payload::Multicast(Shared::clone(&msg)),
                                now,
                                out_round,
                            );
                        }
                    }
                }
            }

            for (delay, tag) in timers.drain(..) {
                net.queue.push(now + delay, EventKind::Timer { party, tag });
            }

            if halted && !net.terminated[slot] {
                net.terminated[slot] = true;
                if net.honest[slot] {
                    honest_live -= 1;
                }
            }
        }

        Outcome {
            config,
            honest: net.honest,
            commits: committed.into_iter().flatten().collect(),
            terminated: net.terminated,
            broadcaster,
            broadcaster_start: skew.start_of(broadcaster),
            end_time: now,
            events_processed,
            messages_sent: net.messages_sent,
            peak_queue_depth: net.queue.peak(),
            drops_at_enqueue: net.drops_at_enqueue,
            queue_bytes: net.queue.retained_bytes() as u64,
            sched: None,
            last_delivery_of_round: net.last_delivery_of_round,
            trace,
        }
    }
}

/// Routing state for every point-to-point message of the run: the event
/// queue, the adversary's oracle, and flat per-link sequence counters.
struct Router<M> {
    queue: EventQueue<M>,
    oracle: Box<dyn DelayOracle<M>>,
    /// Per-(from, to) message counters, indexed `from * n + to` — a flat
    /// array beats a `HashMap<(u32, u32), u64>` by the hash per message.
    link_seq: Vec<u64>,
    last_delivery_of_round: Vec<GlobalTime>,
    messages_sent: u64,
    /// Sends discarded at enqueue because the recipient had terminated.
    drops_at_enqueue: u64,
    timing: TimingModel,
    async_fallback: Duration,
    n: usize,
    honest: Vec<bool>,
    /// Per-slot termination flags — owned here so `route` can check the
    /// recipient at enqueue time (the run loop writes them on halt).
    terminated: Vec<bool>,
    drop_dead_sends: bool,
}

impl<M> Router<M> {
    fn note_delivery(&mut self, round: u32, at: GlobalTime) {
        let table = &mut self.last_delivery_of_round;
        if table.len() <= round as usize {
            table.resize(round as usize + 1, GlobalTime::ZERO);
        }
        table[round as usize] = table[round as usize].max(at);
    }

    /// Asks the oracle for a delay, clamps it to the timing model, and
    /// enqueues the delivery (or drops it, on an unconstrained link).
    fn route(&mut self, from: PartyId, to: PartyId, msg: Payload<M>, now: GlobalTime, round: u32) {
        if to.as_usize() >= self.n {
            // Out-of-band addresses (the reserved client id): the
            // simulator has no client endpoint, so such sends are dropped
            // before they touch the message counter — simulated runs stay
            // message-identical whether or not a protocol acknowledges an
            // (absent) client.
            return;
        }
        self.messages_sent += 1;
        if to == from {
            // Self-delivery: immediate, not adversary-controlled.
            self.note_delivery(round, now);
            self.queue.push(
                now,
                EventKind::Deliver {
                    to,
                    from,
                    msg,
                    round,
                },
            );
            return;
        }
        let counter = &mut self.link_seq[from.as_usize() * self.n + to.as_usize()];
        let seq = *counter;
        *counter += 1;
        let env = MsgEnvelope {
            from,
            to,
            sent_at: now,
            msg: msg.get(),
            from_honest: self.honest[from.as_usize()],
            to_honest: self.honest[to.as_usize()],
            link_seq: seq,
        };
        let choice = self.oracle.delay(&env);
        let honest_link = env.honest_link();
        if let Some(at) = clamp_delivery(self.timing, now, choice, honest_link, self.async_fallback)
        {
            // Round-boundary bookkeeping sees every scheduled delivery,
            // dropped or not — latency/round metrics are identical with
            // drops on and off; only queue traffic changes.
            self.note_delivery(round, at);
            if self.drop_dead_sends && self.terminated[to.as_usize()] {
                // Dead recipient: a pop would only be filtered later.
                // Discard now — no envelope, no parking, no pop.
                self.drops_at_enqueue += 1;
                return;
            }
            self.queue.push(
                at,
                EventKind::Deliver {
                    to,
                    from,
                    msg,
                    round,
                },
            );
        }
    }
}

impl<M> fmt::Debug for SimulationBuilder<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("config", &self.config)
            .field("timing", &self.timing)
            .field("broadcaster", &self.broadcaster)
            .finish()
    }
}

enum Action<M> {
    Start,
    Message(PartyId, Payload<M>),
    Timer(u64),
}

/// One buffered send effect. Multicasts stay *one* entry carrying a shared
/// payload; they are fanned out at drain time by the router.
enum SendOp<M> {
    One(PartyId, M),
    All {
        except: Option<PartyId>,
        msg: Shared<M>,
    },
}

/// The runner-side [`Context`]: handler effects land in scratch buffers
/// borrowed from (and drained by) the event loop, so steady-state events
/// allocate nothing.
struct CtxImpl<'a, M> {
    me: PartyId,
    config: Config,
    now_local: LocalTime,
    sends: &'a mut Vec<SendOp<M>>,
    timers: &'a mut Vec<(Duration, u64)>,
    commits: &'a mut Vec<Value>,
    terminate: bool,
}

impl<M> Context<M> for CtxImpl<'_, M> {
    fn me(&self) -> PartyId {
        self.me
    }
    fn config(&self) -> Config {
        self.config
    }
    fn now(&self) -> LocalTime {
        self.now_local
    }
    fn send(&mut self, to: PartyId, msg: M) {
        self.sends.push(SendOp::One(to, msg));
    }
    fn set_timer(&mut self, delay: Duration, tag: u64) {
        self.timers.push((delay, tag));
    }
    fn commit(&mut self, value: Value) {
        self.commits.push(value);
    }
    fn terminate(&mut self) {
        self.terminate = true;
    }
    fn multicast(&mut self, msg: M)
    where
        M: Clone,
    {
        self.sends.push(SendOp::All {
            except: None,
            msg: Shared::new(msg),
        });
    }
    fn multicast_except(&mut self, msg: M, skip: PartyId)
    where
        M: Clone,
    {
        self.sends.push(SendOp::All {
            except: Some(skip),
            msg: Shared::new(msg),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{DelayRule, LinkDelay, PartySet, ScheduleOracle};
    use crate::strategies::Crashing;

    /// Broadcaster multicasts its value; everyone commits on first receipt.
    struct Flood {
        input: Option<Value>,
    }

    impl Protocol for Flood {
        type Msg = Value;
        fn start(&mut self, ctx: &mut dyn Context<Value>) {
            if let Some(v) = self.input {
                ctx.multicast(v);
            }
        }
        fn on_message(&mut self, _from: PartyId, v: Value, ctx: &mut dyn Context<Value>) {
            ctx.commit(v);
            ctx.terminate();
        }
    }

    fn flood_sim(delta_us: u64) -> Outcome {
        let cfg = Config::new(4, 1).unwrap();
        Simulation::build(cfg)
            .timing(TimingModel::lockstep(Duration::from_micros(delta_us)))
            .oracle(FixedDelay::new(Duration::from_micros(delta_us)))
            .spawn_honest(|p| Flood {
                input: (p == PartyId::new(0)).then_some(Value::new(3)),
            })
            .run()
    }

    #[test]
    fn flood_commits_everywhere() {
        let o = flood_sim(10);
        assert!(o.agreement_holds());
        assert!(o.all_honest_committed());
        assert!(o.all_honest_terminated());
        assert_eq!(o.committed_value(), Some(Value::new(3)));
        assert_eq!(o.good_case_latency(), Some(Duration::from_micros(10)));
        assert_eq!(o.good_case_rounds(), Some(1));
    }

    #[test]
    fn latency_scales_with_delta() {
        assert_eq!(
            flood_sim(250).good_case_latency(),
            Some(Duration::from_micros(250))
        );
    }

    #[test]
    fn synchrony_clamps_oracle_excess() {
        let cfg = Config::new(3, 1).unwrap();
        let o = Simulation::build(cfg)
            .timing(TimingModel::Synchrony {
                delta: Duration::from_micros(5),
                big_delta: Duration::from_micros(100),
            })
            // Oracle asks for 1000µs but honest links clamp to δ = 5µs.
            .oracle(FixedDelay::new(Duration::from_micros(1_000)))
            .spawn_honest(|p| Flood {
                input: (p == PartyId::new(0)).then_some(Value::new(1)),
            })
            .run();
        assert_eq!(o.good_case_latency(), Some(Duration::from_micros(5)));
    }

    #[test]
    fn byzantine_link_can_drop() {
        let cfg = Config::new(3, 1).unwrap();
        // Party 2 is "Byzantine" (runs the honest code, but its links are
        // unconstrained); drop everything it would receive.
        let oracle: ScheduleOracle<Value> =
            ScheduleOracle::new(Duration::from_micros(5)).rule(DelayRule::link(
                PartySet::Any,
                PartySet::One(PartyId::new(2)),
                LinkDelay::Never,
            ));
        let o = Simulation::build(cfg)
            .timing(TimingModel::lockstep(Duration::from_micros(5)))
            .oracle(oracle)
            .byzantine(PartyId::new(2), Flood { input: None })
            .spawn_honest(|p| Flood {
                input: (p == PartyId::new(0)).then_some(Value::new(2)),
            })
            .run();
        assert!(o.all_honest_committed());
        assert!(o.commit_of(PartyId::new(2)).is_none());
    }

    #[test]
    fn unsynchronized_start_buffers_early_messages() {
        let cfg = Config::new(3, 1).unwrap();
        // Party 2 starts 50µs late; the flood arrives at 10µs and must be
        // buffered until its start, then delivered at local time 0.
        let o = Simulation::build(cfg)
            .timing(TimingModel::lockstep(Duration::from_micros(10)))
            .oracle(FixedDelay::new(Duration::from_micros(10)))
            .skew(SkewSchedule::with_late_parties(
                3,
                &[(PartyId::new(2), Duration::from_micros(50))],
            ))
            .spawn_honest(|p| Flood {
                input: (p == PartyId::new(0)).then_some(Value::new(4)),
            })
            .run();
        let c2 = o.commit_of(PartyId::new(2)).unwrap();
        assert_eq!(c2.local, LocalTime::ZERO, "delivered at its start");
        assert_eq!(c2.global, GlobalTime::from_micros(50));
        // Good-case latency measured from broadcaster start (0).
        assert_eq!(o.good_case_latency(), Some(Duration::from_micros(50)));
    }

    #[test]
    fn round_accounting_counts_causal_depth() {
        /// Two-hop relay: P0 -> P1 -> P2, commit at P2.
        struct Relay;
        impl Protocol for Relay {
            type Msg = Value;
            fn start(&mut self, ctx: &mut dyn Context<Value>) {
                if ctx.me() == PartyId::new(0) {
                    ctx.send(PartyId::new(1), Value::new(9));
                }
            }
            fn on_message(&mut self, _from: PartyId, v: Value, ctx: &mut dyn Context<Value>) {
                match ctx.me().index() {
                    1 => ctx.send(PartyId::new(2), v),
                    2 => {
                        ctx.commit(v);
                        ctx.terminate();
                    }
                    _ => {}
                }
            }
        }
        let cfg = Config::new(3, 1).unwrap();
        let o = Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(FixedDelay::new(Duration::from_micros(1)))
            .spawn_honest(|_| Relay)
            .run();
        let c = o.commit_of(PartyId::new(2)).unwrap();
        assert_eq!(
            c.round, 2,
            "P0's msg is round 0, relayed msg round 1, commit in round 2"
        );
    }

    #[test]
    fn timer_fires_at_local_time() {
        struct TimerProto;
        impl Protocol for TimerProto {
            type Msg = Value;
            fn start(&mut self, ctx: &mut dyn Context<Value>) {
                ctx.set_timer(Duration::from_micros(30), 7);
            }
            fn on_message(&mut self, _: PartyId, _: Value, _: &mut dyn Context<Value>) {}
            fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<Value>) {
                assert_eq!(tag, 7);
                assert_eq!(ctx.now(), LocalTime::from_micros(30));
                ctx.commit(Value::new(1));
                ctx.terminate();
            }
        }
        let cfg = Config::new(2, 1).unwrap();
        let o = Simulation::build(cfg)
            .skew(SkewSchedule::with_late_parties(
                2,
                &[(PartyId::new(1), Duration::from_micros(11))],
            ))
            .spawn_honest(|_| TimerProto)
            .run();
        assert!(o.all_honest_committed());
        assert_eq!(
            o.commit_of(PartyId::new(1)).unwrap().global,
            GlobalTime::from_micros(41)
        );
    }

    #[test]
    fn first_commit_wins_double_commit_ignored() {
        struct DoubleCommitter;
        impl Protocol for DoubleCommitter {
            type Msg = Value;
            fn start(&mut self, ctx: &mut dyn Context<Value>) {
                ctx.commit(Value::new(1));
                ctx.commit(Value::new(2));
                ctx.terminate();
            }
            fn on_message(&mut self, _: PartyId, _: Value, _: &mut dyn Context<Value>) {}
        }
        let cfg = Config::new(2, 1).unwrap();
        let o = Simulation::build(cfg)
            .spawn_honest(|_| DoubleCommitter)
            .run();
        for c in o.honest_commits() {
            assert_eq!(c.value, Value::new(1));
        }
    }

    #[test]
    fn trace_records_lifecycle() {
        let cfg = Config::new(2, 1).unwrap();
        let o = Simulation::build(cfg)
            .record_trace(true)
            .oracle(FixedDelay::new(Duration::from_micros(1)))
            .spawn_honest(|p| Flood {
                input: (p == PartyId::new(0)).then_some(Value::new(5)),
            })
            .run();
        assert!(o
            .trace()
            .iter()
            .any(|t| matches!(t, TraceEntry::Started { .. })));
        assert!(o
            .trace()
            .iter()
            .any(|t| matches!(t, TraceEntry::Delivered { .. })));
        assert!(o
            .trace()
            .iter()
            .any(|t| matches!(t, TraceEntry::Committed { .. })));
    }

    #[test]
    #[should_panic(expected = "slot 1 was never filled")]
    fn unfilled_slot_panics() {
        let cfg = Config::new(2, 1).unwrap();
        let _ = Simulation::build(cfg)
            .honest_at(PartyId::new(0), Flood { input: None })
            .run();
    }

    #[test]
    fn max_events_budget_truncates_run() {
        let full = flood_sim(10);
        assert!(full.events_processed() > 2);
        let cfg = Config::new(4, 1).unwrap();
        let o = Simulation::build(cfg)
            .timing(TimingModel::lockstep(Duration::from_micros(10)))
            .oracle(FixedDelay::new(Duration::from_micros(10)))
            .max_events(2)
            .spawn_honest(|p| Flood {
                input: (p == PartyId::new(0)).then_some(Value::new(3)),
            })
            .run();
        assert_eq!(o.events_processed(), 2, "budget caps the loop");
        assert!(!o.all_honest_committed());
        assert_eq!(o.good_case_latency(), None);
    }

    #[test]
    fn peak_queue_depth_reported() {
        // Four start events are enqueued up front, so the high-water mark
        // is at least n even before any message traffic.
        let o = flood_sim(10);
        assert!(
            o.peak_queue_depth() >= 4,
            "peak {} should cover the start events",
            o.peak_queue_depth()
        );
    }

    #[test]
    fn determinism_same_build_same_outcome() {
        let a = flood_sim(10);
        let b = flood_sim(10);
        assert_eq!(a.events_processed(), b.events_processed());
        assert_eq!(a.messages_sent(), b.messages_sent());
        assert_eq!(a.good_case_latency(), b.good_case_latency());
    }

    /// Gossips for a fixed number of timer rounds, commits on first
    /// receipt, and never terminates — so the run ends only when the
    /// queue drains, which makes the drop accounting below exact.
    struct Gossip {
        rounds_left: u32,
        committed: bool,
    }

    impl Protocol for Gossip {
        type Msg = Value;
        fn start(&mut self, ctx: &mut dyn Context<Value>) {
            ctx.multicast(Value::new(1));
            ctx.set_timer(Duration::from_micros(7), 0);
        }
        fn on_message(&mut self, _from: PartyId, v: Value, ctx: &mut dyn Context<Value>) {
            if !self.committed {
                self.committed = true;
                ctx.commit(v);
            }
        }
        fn on_timer(&mut self, _tag: u64, ctx: &mut dyn Context<Value>) {
            if self.rounds_left > 0 {
                self.rounds_left -= 1;
                ctx.multicast(Value::new(1));
                ctx.set_timer(Duration::from_micros(7), 0);
            }
        }
    }

    fn gossip_with_crash(drop_dead_sends: bool) -> Outcome {
        let cfg = Config::new(4, 1).unwrap();
        // Party 3 handles its start plus one delivery, then crashes
        // (terminates); the three honest gossipers keep multicasting to
        // it for many more rounds.
        Simulation::build(cfg)
            .timing(TimingModel::lockstep(Duration::from_micros(10)))
            .oracle(FixedDelay::new(Duration::from_micros(3)))
            .drop_dead_sends(drop_dead_sends)
            .byzantine(
                PartyId::new(3),
                Crashing::new(
                    Gossip {
                        rounds_left: 0,
                        committed: false,
                    },
                    2,
                ),
            )
            .spawn_honest(|_| Gossip {
                rounds_left: 8,
                committed: false,
            })
            .run()
    }

    #[test]
    fn enqueue_drops_change_traffic_but_not_the_outcome() {
        let on = gossip_with_crash(true);
        let off = gossip_with_crash(false);

        // The protocol-visible outcome is identical: same commits at the
        // same instants, same latency and round metrics, same send count
        // (dropped sends still count — only the envelope is elided).
        assert_eq!(on.commits().len(), off.commits().len());
        for (a, b) in on.commits().iter().zip(off.commits()) {
            assert_eq!((a.party, a.value, a.global), (b.party, b.value, b.global));
        }
        assert_eq!(on.good_case_latency(), off.good_case_latency());
        assert_eq!(on.good_case_rounds(), off.good_case_rounds());
        assert_eq!(on.messages_sent(), off.messages_sent());

        // With drops off every dead-recipient delivery is parked, popped,
        // and discarded; with drops on it never enters the queue. Both
        // runs drain the queue, so the event counts differ by exactly the
        // drop count.
        assert_eq!(off.drops_at_enqueue(), 0);
        assert!(on.drops_at_enqueue() > 0, "crashed party must shed traffic");
        assert_eq!(
            off.events_processed() - on.events_processed(),
            on.drops_at_enqueue()
        );
    }
}
