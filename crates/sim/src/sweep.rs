//! The parallel sweep engine: fan a grid of [`ScenarioSpec`] cells across
//! worker threads, deterministically.
//!
//! A [`Sweep`] takes a registry and a list of cells, derives per-cell
//! seeds from one base seed, and runs the cells on `threads` workers
//! (crossbeam channel aggregation, atomic work-stealing cursor). The
//! resulting [`SweepReport`] is **identical for identical (cells, base
//! seed)** regardless of thread count or scheduling: each cell is an
//! independent deterministic simulation, and results are re-assembled in
//! grid order. Only [`SweepReport::wall_ns`] (and the throughput derived
//! from it) reflects the machine; everything else is reproducible.
//!
//! # Examples
//!
//! ```
//! use gcl_sim::{
//!     Admission, Context, Protocol, ScenarioRegistry, ScenarioSpec, Sweep, ValidityMode,
//! };
//! use gcl_types::{PartyId, Value};
//!
//! struct Echo {
//!     input: Option<Value>,
//! }
//! impl Protocol for Echo {
//!     type Msg = Value;
//!     fn start(&mut self, ctx: &mut dyn Context<Value>) {
//!         if let Some(v) = self.input {
//!             ctx.multicast(v);
//!         }
//!     }
//!     fn on_message(&mut self, _f: PartyId, v: Value, ctx: &mut dyn Context<Value>) {
//!         ctx.commit(v);
//!         ctx.terminate();
//!     }
//! }
//!
//! let mut reg = ScenarioRegistry::new();
//! reg.register_fn(
//!     "echo",
//!     "flood",
//!     Admission::Any,
//!     ValidityMode::Broadcast,
//!     ScenarioSpec::asynchronous("echo", 4, 1),
//!     |spec, backend| {
//!         spec.run_protocol_on(backend, |p| Echo { input: spec.input_for(p) })
//!     },
//! );
//! let cells: Vec<_> = (4..8)
//!     .map(|n| ScenarioSpec::asynchronous("echo", n, 1))
//!     .collect();
//! let report = Sweep::new(&reg).cells(cells).threads(2).seed(7).run();
//! assert_eq!(report.cells.len(), 4);
//! assert_eq!(report.safety_violations().count(), 0);
//! ```

use crate::backend::{Backend, SimBackend};
use crate::scenario::{derive_cell_seed, ScenarioRegistry, ScenarioSpec};
use crossbeam::channel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// The default execution target of a sweep.
static SIM_BACKEND: SimBackend = SimBackend::new();

/// The audited result of one grid cell. Every field is deterministic in
/// the cell's spec; two runs of the same sweep compare equal cell-by-cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// The cell's spec (with its derived seed).
    pub spec: ScenarioSpec,
    /// `spec.label()`, precomputed for report rows.
    pub label: String,
    /// Whether every honest party committed.
    pub committed: bool,
    /// Good-case latency in µs (`None` when not all honest committed).
    pub latency_us: Option<u64>,
    /// Good-case commit round, where meaningful.
    pub rounds: Option<u32>,
    /// Events the runner processed.
    pub events: u64,
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Event-queue high-water mark (memory-pressure proxy).
    pub peak_queue: u64,
    /// Whether agreement held (**false is a safety violation**).
    pub agreement: bool,
    /// Whether the family's validity audit passed.
    pub validity: bool,
    /// Why the cell was skipped (unknown family / out-of-band shape);
    /// skipped cells count as neither run nor violating.
    pub error: Option<String>,
}

impl CellReport {
    /// Whether this cell violated safety or validity.
    pub fn violating(&self) -> bool {
        !self.agreement || !self.validity
    }
}

/// The aggregate of one sweep run.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-cell results, in grid order.
    pub cells: Vec<CellReport>,
    /// Worker threads used.
    pub threads: usize,
    /// Wall time of the whole sweep (machine-dependent; excluded from
    /// determinism comparisons).
    pub wall_ns: u64,
}

impl SweepReport {
    /// Cells that actually ran (spec admitted by its family).
    pub fn cells_run(&self) -> usize {
        self.cells.iter().filter(|c| c.error.is_none()).count()
    }

    /// Cells skipped as inadmissible.
    pub fn cells_skipped(&self) -> usize {
        self.cells.len() - self.cells_run()
    }

    /// Fraction of run cells in which every honest party committed.
    pub fn commit_rate(&self) -> f64 {
        let run = self.cells_run();
        if run == 0 {
            return 0.0;
        }
        let committed = self.cells.iter().filter(|c| c.committed).count();
        committed as f64 / run as f64
    }

    /// Cells where agreement was violated.
    pub fn safety_violations(&self) -> impl Iterator<Item = &CellReport> + '_ {
        self.cells.iter().filter(|c| !c.agreement)
    }

    /// Cells where the family's validity audit failed.
    pub fn validity_violations(&self) -> impl Iterator<Item = &CellReport> + '_ {
        self.cells.iter().filter(|c| !c.validity)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of committed-cell latencies, µs
    /// (nearest-rank on the sorted latencies).
    pub fn latency_percentile(&self, q: f64) -> Option<u64> {
        let mut lat: Vec<u64> = self.cells.iter().filter_map(|c| c.latency_us).collect();
        if lat.is_empty() {
            return None;
        }
        lat.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let idx = ((lat.len() - 1) as f64 * q).round() as usize;
        Some(lat[idx])
    }

    /// Total simulator events across all cells.
    pub fn total_events(&self) -> u64 {
        self.cells.iter().map(|c| c.events).sum()
    }

    /// Total point-to-point messages across all cells.
    pub fn total_messages(&self) -> u64 {
        self.cells.iter().map(|c| c.messages).sum()
    }

    /// Largest per-cell event-queue high-water mark.
    pub fn max_peak_queue(&self) -> u64 {
        self.cells.iter().map(|c| c.peak_queue).max().unwrap_or(0)
    }

    /// Aggregate simulator events per wall-clock second (machine-dependent).
    pub fn events_per_sec(&self) -> f64 {
        self.total_events() as f64 * 1e9 / self.wall_ns.max(1) as f64
    }

    /// Whether two reports are identical on every deterministic field
    /// (everything except wall time and thread count).
    pub fn deterministic_eq(&self, other: &SweepReport) -> bool {
        self.cells == other.cells
    }
}

/// A configured sweep, ready to [`Sweep::run`].
pub struct Sweep<'a> {
    registry: &'a ScenarioRegistry,
    backend: &'a (dyn Backend + Sync),
    cells: Vec<ScenarioSpec>,
    threads: usize,
    seed: Option<u64>,
}

impl std::fmt::Debug for Sweep<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("backend", &self.backend.name())
            .field("cells", &self.cells.len())
            .field("threads", &self.threads)
            .field("seed", &self.seed)
            .finish()
    }
}

impl<'a> Sweep<'a> {
    /// A sweep over `registry` with no cells and one thread, targeting the
    /// inline simulator.
    pub fn new(registry: &'a ScenarioRegistry) -> Self {
        Sweep {
            registry,
            backend: &SIM_BACKEND,
            cells: Vec::new(),
            threads: 1,
            seed: None,
        }
    }

    /// Retargets every cell onto `backend` (e.g. `gcl_net`'s wall-clock
    /// runtimes). Worker threads each drive full backend runs, so pick a
    /// thread budget with the backend's own thread fan-out in mind: a
    /// thread-per-party backend at `threads(2)` already runs `2 × n` party
    /// threads. Wall-clock cells are *not* deterministic in the spec —
    /// latency and event counts reflect the machine — but the audited
    /// agreement/validity columns still gate like simulator sweeps.
    #[must_use]
    pub fn backend(mut self, backend: &'a (dyn Backend + Sync)) -> Self {
        self.backend = backend;
        self
    }

    /// Appends one cell.
    #[must_use]
    pub fn cell(mut self, spec: ScenarioSpec) -> Self {
        self.cells.push(spec);
        self
    }

    /// Appends many cells.
    #[must_use]
    pub fn cells(mut self, specs: impl IntoIterator<Item = ScenarioSpec>) -> Self {
        self.cells.extend(specs);
        self
    }

    /// Sets the worker-thread count (clamped to ≥ 1 and to the cell count).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Re-seeds every cell deterministically from `base`: cell `i` gets
    /// [`derive_cell_seed`]`(base, i)`. Without this, cells keep the seeds
    /// their specs carry.
    #[must_use]
    pub fn seed(mut self, base: u64) -> Self {
        self.seed = Some(base);
        self
    }

    /// Runs every cell across the worker threads and aggregates the
    /// report (cells in grid order, independent of scheduling).
    pub fn run(self) -> SweepReport {
        let Sweep {
            registry,
            backend,
            mut cells,
            threads,
            seed,
        } = self;
        if let Some(base) = seed {
            for (i, cell) in cells.iter_mut().enumerate() {
                cell.seed = derive_cell_seed(base, i as u64);
            }
        }
        let started = Instant::now();
        let threads = threads.min(cells.len()).max(1);
        let mut results: Vec<Option<CellReport>> = (0..cells.len()).map(|_| None).collect();
        if !cells.is_empty() {
            let cursor = AtomicUsize::new(0);
            let (tx, rx) = channel::unbounded::<(usize, CellReport)>();
            let specs: &[ScenarioSpec] = &cells;
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let tx = tx.clone();
                    let cursor = &cursor;
                    scope.spawn(move || loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = specs.get(i) else { break };
                        let report = run_cell(registry, backend, spec);
                        if tx.send((i, report)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (i, report) in rx.iter() {
                    results[i] = Some(report);
                }
            });
        }
        SweepReport {
            cells: results
                .into_iter()
                .map(|r| r.expect("every cell reports exactly once"))
                .collect(),
            threads,
            wall_ns: started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        }
    }
}

/// Runs and audits one cell on the sweep's execution backend.
fn run_cell(registry: &ScenarioRegistry, backend: &dyn Backend, spec: &ScenarioSpec) -> CellReport {
    let label = spec.label();
    match registry.validate(spec) {
        Err(e) => CellReport {
            spec: spec.clone(),
            label,
            committed: false,
            latency_us: None,
            rounds: None,
            events: 0,
            messages: 0,
            peak_queue: 0,
            agreement: true,
            validity: true,
            error: Some(e.to_string()),
        },
        Ok(family) => {
            let o = family.run_on(spec, backend);
            CellReport {
                label,
                committed: o.all_honest_committed(),
                latency_us: o.good_case_latency().map(|d| d.as_micros()),
                rounds: o.good_case_rounds(),
                events: o.events_processed(),
                messages: o.messages_sent(),
                peak_queue: o.peak_queue_depth() as u64,
                agreement: o.agreement_holds(),
                validity: family.upholds_validity(spec, &o),
                error: None,
                spec: spec.clone(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Context, Protocol};
    use crate::scenario::{Admission, ValidityMode};
    use gcl_types::{PartyId, Value};

    struct Flood {
        input: Option<Value>,
    }
    impl Protocol for Flood {
        type Msg = Value;
        fn start(&mut self, ctx: &mut dyn Context<Value>) {
            if let Some(v) = self.input {
                ctx.multicast(v);
            }
        }
        fn on_message(&mut self, _f: PartyId, v: Value, ctx: &mut dyn Context<Value>) {
            ctx.commit(v);
            ctx.terminate();
        }
    }

    fn registry() -> ScenarioRegistry {
        let mut reg = ScenarioRegistry::new();
        reg.register_fn(
            "flood",
            "flood",
            Admission::Brb,
            ValidityMode::Broadcast,
            ScenarioSpec::asynchronous("flood", 4, 1),
            |spec, backend| {
                spec.run_protocol_on(backend, |p| Flood {
                    input: spec.input_for(p),
                })
            },
        );
        reg
    }

    fn grid() -> Vec<ScenarioSpec> {
        let mut cells = Vec::new();
        for n in [4usize, 5, 7, 10] {
            for s in 0..4u64 {
                cells.push(ScenarioSpec::asynchronous("flood", n, (n - 1) / 3).with_seed(s));
            }
        }
        cells
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let reg = registry();
        let a = Sweep::new(&reg).cells(grid()).threads(1).seed(42).run();
        let b = Sweep::new(&reg).cells(grid()).threads(4).seed(42).run();
        assert!(a.deterministic_eq(&b));
        assert_eq!(a.cells_run(), 16);
        assert_eq!(a.commit_rate(), 1.0);
        assert_eq!(a.safety_violations().count(), 0);
        assert_eq!(a.validity_violations().count(), 0);
        assert!(a.latency_percentile(0.5).is_some());
        assert!(a.total_events() > 0);
        assert!(a.total_messages() > 0);
        assert!(a.max_peak_queue() > 0);
        assert!(a.events_per_sec() > 0.0);
    }

    #[test]
    fn different_base_seed_changes_cell_seeds_only() {
        let reg = registry();
        let a = Sweep::new(&reg).cells(grid()).seed(1).run();
        let b = Sweep::new(&reg).cells(grid()).seed(2).run();
        assert_ne!(a.cells[0].spec.seed, b.cells[0].spec.seed);
        // Fixed-delay flood outcomes don't depend on the seed, so the
        // audited numbers still agree even though seeds moved.
        assert_eq!(a.cells[0].events, b.cells[0].events);
    }

    #[test]
    fn inadmissible_cells_skipped_not_violating() {
        let reg = registry();
        let report = Sweep::new(&reg)
            .cell(ScenarioSpec::asynchronous("flood", 4, 2)) // outside 3f+1
            .cell(ScenarioSpec::asynchronous("absent", 4, 1))
            .cell(ScenarioSpec::asynchronous("flood", 4, 1))
            .run();
        assert_eq!(report.cells_run(), 1);
        assert_eq!(report.cells_skipped(), 2);
        assert_eq!(report.safety_violations().count(), 0);
        assert!(report.cells[0].error.as_deref().unwrap().contains("3f+1"));
        assert!(report.cells[1].error.as_deref().unwrap().contains("absent"));
        assert_eq!(report.commit_rate(), 1.0);
    }

    #[test]
    fn empty_sweep_is_well_formed() {
        let reg = registry();
        let report = Sweep::new(&reg).run();
        assert_eq!(report.cells.len(), 0);
        assert_eq!(report.commit_rate(), 0.0);
        assert_eq!(report.latency_percentile(0.9), None);
        assert_eq!(report.max_peak_queue(), 0);
    }
}
