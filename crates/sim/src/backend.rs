//! Execution backends: run a registered scenario family somewhere other
//! than the inline simulator.
//!
//! A family's protocol constructor is generic over its wire message type;
//! an execution backend is necessarily type-erased (the registry stores
//! `dyn` families). The bridge is [`ErasedMsg`] — a boxed, clonable,
//! debuggable message — plus an adapter that re-types a
//! `Context<ErasedMsg>` as the protocol's native `Context<M>`. A family
//! registers **once** (its runner closure calls
//! [`ScenarioSpec::run_protocol_on`]) and every [`Backend`] can execute
//! it: the inline simulator, `gcl_net`'s wall-clock thread runtime, or any
//! future process/socket runtime.
//!
//! The inline simulator stays erasure-free: [`SimBackend`] reports
//! [`Backend::native_sim`], so `run_protocol_on` routes it through the
//! monomorphic hot loop (no per-message boxing on the measured path). The
//! erased path is still a real, tested simulator configuration
//! ([`SimBackend::forced_erased`]), which is how the erasure layer itself
//! is verified to preserve outcomes.

use crate::context::{Context, Strategy};
use crate::outcome::Outcome;
use crate::scenario::ScenarioSpec;
use gcl_types::{Config, Duration, LocalTime, PartyId, Value, WireError, WireMsg};
use std::any::Any;
use std::fmt;
use std::marker::PhantomData;

/// Object-safe payload contract behind [`ErasedMsg`].
trait AnyMsg: Send + Sync {
    fn clone_box(&self) -> Box<dyn AnyMsg>;
    fn debug_fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
    fn encode_wire(&self, buf: &mut Vec<u8>);
}

impl<T: WireMsg> AnyMsg for T {
    fn clone_box(&self) -> Box<dyn AnyMsg> {
        Box::new(self.clone())
    }
    fn debug_fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
    fn encode_wire(&self, buf: &mut Vec<u8>) {
        gcl_types::Encode::encode(self, buf);
    }
}

/// A type-erased wire message: any [`WireMsg`] payload behind one pointer.
/// This is the message type every [`Backend`] runs — each run still
/// carries exactly one concrete type inside; [`ErasedMsg::downcast`]
/// recovers it at the protocol boundary, and [`ErasedMsg::encode`] /
/// [`MsgCodec::decode`] carry it across a byte transport without either
/// side naming the concrete type.
pub struct ErasedMsg(Box<dyn AnyMsg>);

impl ErasedMsg {
    /// Wraps a concrete message.
    pub fn new<M: WireMsg>(msg: M) -> Self {
        ErasedMsg(Box::new(msg))
    }

    /// Recovers the concrete message.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not an `M` — within one run every slot
    /// speaks the same family's message type, so a mismatch is a backend
    /// wiring bug worth failing loudly on.
    pub fn downcast<M: 'static>(self) -> M {
        *self
            .0
            .into_any()
            .downcast::<M>()
            .unwrap_or_else(|_| panic!("ErasedMsg holds a different message type"))
    }

    /// Appends the inner message's wire encoding to `buf` — the encode
    /// half of the byte bridge, dispatched through the erased vtable.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode_wire(buf);
    }

    /// The inner message's wire encoding as a fresh byte vector.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// The decode half of the byte bridge: re-types wire bytes as the run's
/// concrete message, re-erased. [`ScenarioSpec::run_protocol_on`] builds
/// one per run (it is the only place that still sees the family's message
/// generic), and byte-transport backends call [`MsgCodec::decode`] on
/// every frame they deliver.
#[derive(Clone, Copy)]
pub struct MsgCodec {
    type_name: &'static str,
    decode: fn(&[u8]) -> Result<ErasedMsg, WireError>,
}

impl MsgCodec {
    /// The codec for message type `M`.
    pub fn of<M: WireMsg>() -> Self {
        MsgCodec {
            type_name: std::any::type_name::<M>(),
            decode: |bytes| gcl_types::Decode::from_wire(bytes).map(ErasedMsg::new::<M>),
        }
    }

    /// Decodes one complete message frame (trailing bytes are an error).
    ///
    /// # Errors
    ///
    /// Any [`WireError`] the bytes provoke.
    pub fn decode(&self, bytes: &[u8]) -> Result<ErasedMsg, WireError> {
        (self.decode)(bytes)
    }

    /// The concrete message type this codec round-trips (diagnostics).
    pub fn type_name(&self) -> &'static str {
        self.type_name
    }
}

impl fmt::Debug for MsgCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MsgCodec<{}>", self.type_name)
    }
}

impl Clone for ErasedMsg {
    fn clone(&self) -> Self {
        ErasedMsg(self.0.clone_box())
    }
}

// Renders as the inner message, so traces are identical to unerased runs.
impl fmt::Debug for ErasedMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.debug_fmt(f)
    }
}

/// Re-types a `Context<ErasedMsg>` as the protocol's native `Context<M>`.
/// Multicasts forward as multicasts (not `n` sends) so erased runs keep
/// the runtime's shared-payload fast path.
struct Reify<'a, M> {
    ctx: &'a mut dyn Context<ErasedMsg>,
    _marker: PhantomData<M>,
}

impl<M: WireMsg> Context<M> for Reify<'_, M> {
    fn me(&self) -> PartyId {
        self.ctx.me()
    }
    fn config(&self) -> Config {
        self.ctx.config()
    }
    fn now(&self) -> LocalTime {
        self.ctx.now()
    }
    fn send(&mut self, to: PartyId, msg: M) {
        self.ctx.send(to, ErasedMsg::new(msg));
    }
    fn set_timer(&mut self, delay: Duration, tag: u64) {
        self.ctx.set_timer(delay, tag);
    }
    fn commit(&mut self, value: Value) {
        self.ctx.commit(value);
    }
    fn terminate(&mut self) {
        self.ctx.terminate();
    }
    fn multicast(&mut self, msg: M) {
        self.ctx.multicast(ErasedMsg::new(msg));
    }
    fn multicast_except(&mut self, msg: M, skip: PartyId) {
        self.ctx.multicast_except(ErasedMsg::new(msg), skip);
    }
}

/// Wraps any `Strategy<M>` as a `Strategy<ErasedMsg>`: incoming payloads
/// downcast to `M`, outgoing effects re-erase through [`Reify`].
pub struct Erase<M, S> {
    inner: S,
    _marker: PhantomData<fn() -> M>,
}

impl<M, S> Erase<M, S> {
    /// Erases `inner`'s message type.
    pub fn new(inner: S) -> Self {
        Erase {
            inner,
            _marker: PhantomData,
        }
    }
}

impl<M, S> fmt::Debug for Erase<M, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Erase")
    }
}

impl<M, S> Strategy<ErasedMsg> for Erase<M, S>
where
    M: WireMsg,
    S: Strategy<M>,
{
    fn start(&mut self, ctx: &mut dyn Context<ErasedMsg>) {
        self.inner.start(&mut Reify {
            ctx,
            _marker: PhantomData::<M>,
        });
    }
    fn on_message(&mut self, from: PartyId, msg: ErasedMsg, ctx: &mut dyn Context<ErasedMsg>) {
        self.inner.on_message(
            from,
            msg.downcast::<M>(),
            &mut Reify {
                ctx,
                _marker: PhantomData::<M>,
            },
        );
    }
    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<ErasedMsg>) {
        self.inner.on_timer(
            tag,
            &mut Reify {
                ctx,
                _marker: PhantomData::<M>,
            },
        );
    }
}

/// One pre-built party slot handed to a [`Backend`]: the code to run
/// (honest protocol, or the spec's silent/crashing adversary wrapper) and
/// whether the slot counts as honest for [`Outcome`] audits.
pub struct ErasedSlot {
    /// The party's code.
    pub strategy: Box<dyn Strategy<ErasedMsg>>,
    /// Whether the slot is honest.
    pub honest: bool,
}

impl fmt::Debug for ErasedSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ErasedSlot")
            .field("honest", &self.honest)
            .finish()
    }
}

/// An execution backend: anything that can run a validated
/// [`ScenarioSpec`] over type-erased party slots and report a simulator-
/// comparable [`Outcome`].
///
/// The slots arrive fully assembled (adversary wrappers already applied
/// per [`ScenarioSpec::adversary_slots`]); the backend supplies the
/// *environment* — delivery delays per [`ScenarioSpec::link_delays`],
/// start skew per [`ScenarioSpec::skew_schedule`], clocks, and transport.
/// Backends whose transport is bytes (sockets, processes) encode every
/// in-flight message via [`ErasedMsg::encode`] and re-type delivered
/// frames with the supplied [`MsgCodec`]; in-memory backends may ignore
/// the codec and move the erased payloads directly.
pub trait Backend {
    /// Short stable name for reports and labels (`"sim"`, `"net"`, …).
    fn name(&self) -> &'static str;

    /// True only for the inline simulator, which runs families
    /// generically: [`ScenarioSpec::run_protocol_on`] then skips erasure
    /// and takes the monomorphic hot loop.
    fn native_sim(&self) -> bool {
        false
    }

    /// Runs `spec` (shape already validated) over the pre-built slots.
    /// `codec` round-trips the run's message type through bytes for
    /// transports that need it.
    fn execute(&self, spec: &ScenarioSpec, slots: Vec<ErasedSlot>, codec: MsgCodec) -> Outcome;
}

/// The in-process deterministic simulator as a [`Backend`].
///
/// [`SimBackend::new`] is the default used by
/// [`ScenarioFamily::run`](crate::ScenarioFamily::run): it reports
/// [`Backend::native_sim`], so registered families run without erasure.
/// [`SimBackend::forced_erased`] disables that shortcut and pushes the run
/// through the same type-erased slot path every other backend uses —
/// outcomes must be identical, which is the erasure layer's conformance
/// test.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimBackend {
    erased: bool,
}

impl SimBackend {
    /// The native (erasure-free) simulator backend.
    pub const fn new() -> Self {
        SimBackend { erased: false }
    }

    /// A simulator backend that refuses the native shortcut and runs the
    /// type-erased slot path (for testing the erasure layer).
    pub const fn forced_erased() -> Self {
        SimBackend { erased: true }
    }
}

impl Backend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn native_sim(&self) -> bool {
        !self.erased
    }

    fn execute(&self, spec: &ScenarioSpec, slots: Vec<ErasedSlot>, _codec: MsgCodec) -> Outcome {
        let mut b = spec.sim_builder::<ErasedMsg>();
        for (i, slot) in slots.into_iter().enumerate() {
            b = b.slot_boxed(PartyId::new(i as u32), slot.strategy, slot.honest);
        }
        b.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Protocol;
    use crate::scenario::{AdversaryMix, ScenarioSpec};
    use gcl_types::Encode;

    #[derive(Debug, Clone, PartialEq)]
    struct WordMsg(String);
    gcl_types::wire_newtype!(WordMsg);

    /// Broadcaster multicasts a string; everyone commits its length.
    struct WordFlood {
        input: Option<Value>,
    }
    impl Protocol for WordFlood {
        type Msg = WordMsg;
        fn start(&mut self, ctx: &mut dyn Context<WordMsg>) {
            if let Some(v) = self.input {
                ctx.multicast(WordMsg("x".repeat(v.as_u64() as usize)));
            }
        }
        fn on_message(&mut self, _from: PartyId, m: WordMsg, ctx: &mut dyn Context<WordMsg>) {
            ctx.commit(Value::new(m.0.len() as u64));
            ctx.terminate();
        }
    }

    fn spec() -> ScenarioSpec {
        ScenarioSpec::lockstep("wordflood", 4, 1, Duration::from_micros(10))
            .with_input(Value::new(6))
    }

    fn run_on(backend: &dyn Backend) -> Outcome {
        spec().run_protocol_on(backend, |p| WordFlood {
            input: spec().input_for(p),
        })
    }

    #[test]
    fn erased_run_matches_native_run() {
        let native = run_on(&SimBackend::new());
        let erased = run_on(&SimBackend::forced_erased());
        assert_eq!(native.committed_value(), Some(Value::new(6)));
        assert_eq!(erased.committed_value(), native.committed_value());
        assert_eq!(erased.events_processed(), native.events_processed());
        assert_eq!(erased.messages_sent(), native.messages_sent());
        assert_eq!(erased.good_case_latency(), native.good_case_latency());
        assert_eq!(erased.good_case_rounds(), native.good_case_rounds());
    }

    #[test]
    fn erased_run_installs_adversary_slots() {
        let spec = spec().with_adversary(AdversaryMix::TrailingSilent { count: 1 });
        let o = spec.run_protocol_on(&SimBackend::forced_erased(), |p| WordFlood {
            input: spec.input_for(p),
        });
        assert!(!o.is_honest(PartyId::new(3)), "trailing slot is Byzantine");
        assert!(o.agreement_holds());
        assert!(o.all_honest_committed());
    }

    #[test]
    fn erased_msg_round_trips_and_renders() {
        let m = ErasedMsg::new(WordMsg("hi".into()));
        assert_eq!(format!("{m:?}"), "WordMsg(\"hi\")");
        let c = m.clone();
        assert_eq!(c.downcast::<WordMsg>(), WordMsg("hi".into()));
    }

    #[test]
    #[should_panic(expected = "different message type")]
    fn downcast_mismatch_panics() {
        ErasedMsg::new(7u64).downcast::<WordMsg>();
    }

    #[test]
    fn erased_msg_round_trips_through_bytes() {
        let m = ErasedMsg::new(WordMsg("over the wire".into()));
        let bytes = m.to_wire();
        assert_eq!(bytes, WordMsg("over the wire".into()).to_wire());
        let codec = MsgCodec::of::<WordMsg>();
        assert!(codec.type_name().contains("WordMsg"), "{codec:?}");
        let back = codec.decode(&bytes).expect("well-formed frame");
        assert_eq!(back.downcast::<WordMsg>(), WordMsg("over the wire".into()));
    }

    #[test]
    fn codec_rejects_garbage_frames() {
        let codec = MsgCodec::of::<WordMsg>();
        assert!(codec.decode(&[1, 2]).is_err(), "truncated frame");
        let mut long = ErasedMsg::new(WordMsg("x".into())).to_wire();
        long.push(0);
        assert!(codec.decode(&long).is_err(), "trailing bytes rejected");
    }
}
