//! Timing models and adversarial delay control.
//!
//! The adversary of the paper chooses every message's delay, subject to the
//! timing model's constraints. Here the adversary is a [`DelayOracle`]; the
//! runner asks it for each message and then **clamps** the answer so that no
//! oracle — however adversarial — can step outside the model:
//!
//! * *Synchrony* (actual bound δ, conservative bound Δ ≥ δ): honest↔honest
//!   delays are clamped into `[0, δ]`.
//! * *Partial synchrony* (GST, Δ): honest↔honest deliveries are clamped to
//!   happen by `max(GST, sent_at) + Δ`.
//! * *Asynchrony*: honest↔honest delays are finite (a `Never` answer is
//!   clamped to the eventual-delivery fallback) but unbounded.
//!
//! Links with a Byzantine endpoint are never clamped: the paper notes a
//! Byzantine party can simulate any delay, including ∞, by postponing
//! sending or reading.

use gcl_types::{Duration, GlobalTime, PartyId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The network timing model of a run (paper Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingModel {
    /// Synchrony: per-execution actual bound `delta` (δ, unknown to the
    /// protocol) and conservative known bound `big_delta` (Δ), δ ≤ Δ.
    Synchrony {
        /// Actual delay bound δ for this execution.
        delta: Duration,
        /// Conservative protocol-known bound Δ.
        big_delta: Duration,
    },
    /// Partial synchrony: arbitrary delays before `gst`, ≤ `big_delta` after.
    PartialSynchrony {
        /// Global stabilization time.
        gst: GlobalTime,
        /// Post-GST delay bound Δ.
        big_delta: Duration,
    },
    /// Asynchrony: arbitrary finite delays.
    Asynchrony,
}

impl TimingModel {
    /// Synchrony with δ = Δ (the classical model without the δ/Δ split).
    pub fn lockstep(delta: Duration) -> TimingModel {
        TimingModel::Synchrony {
            delta,
            big_delta: delta,
        }
    }

    /// The conservative bound Δ, if the model has one.
    pub fn big_delta(&self) -> Option<Duration> {
        match self {
            TimingModel::Synchrony { big_delta, .. }
            | TimingModel::PartialSynchrony { big_delta, .. } => Some(*big_delta),
            TimingModel::Asynchrony => None,
        }
    }
}

/// An oracle's answer for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDelay {
    /// Deliver after this delay (subject to model clamping).
    Finite(Duration),
    /// Drop / delay indefinitely (only honored on Byzantine links or, under
    /// partial synchrony, clamped to the post-GST bound).
    Never,
}

/// Everything the oracle may condition a delay decision on.
#[derive(Debug)]
pub struct MsgEnvelope<'a, M> {
    /// Sender.
    pub from: PartyId,
    /// Recipient.
    pub to: PartyId,
    /// Global send instant.
    pub sent_at: GlobalTime,
    /// The message content.
    pub msg: &'a M,
    /// Whether the sender slot is honest.
    pub from_honest: bool,
    /// Whether the recipient slot is honest.
    pub to_honest: bool,
    /// Per-(from,to) message counter (0 for the first message on the link).
    pub link_seq: u64,
}

impl<M> MsgEnvelope<'_, M> {
    /// True iff both endpoints are honest (the only links the model bounds).
    pub fn honest_link(&self) -> bool {
        self.from_honest && self.to_honest
    }
}

/// The adversary's delay-choosing interface.
pub trait DelayOracle<M>: Send {
    /// Chooses the delay for one message. The runner clamps the result to
    /// the timing model's constraints on honest links.
    fn delay(&mut self, env: &MsgEnvelope<'_, M>) -> LinkDelay;
}

/// Every message takes exactly the same delay.
///
/// Under `TimingModel::Synchrony { delta, .. }` with `FixedDelay::new(delta)`
/// this is the canonical "good network" used to measure good-case latency.
#[derive(Debug, Clone, Copy)]
pub struct FixedDelay(Duration);

impl FixedDelay {
    /// All messages delayed by exactly `d`.
    pub fn new(d: Duration) -> Self {
        FixedDelay(d)
    }
}

impl<M> DelayOracle<M> for FixedDelay {
    fn delay(&mut self, _env: &MsgEnvelope<'_, M>) -> LinkDelay {
        LinkDelay::Finite(self.0)
    }
}

/// Uniformly random delays in `[lo, hi]`, deterministic per seed.
#[derive(Debug)]
pub struct RandomDelay {
    lo: u64,
    hi: u64,
    rng: StdRng,
}

impl RandomDelay {
    /// Delays drawn uniformly from `[lo, hi]` with the given RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: Duration, hi: Duration, seed: u64) -> Self {
        assert!(lo <= hi, "lo must not exceed hi");
        RandomDelay {
            lo: lo.as_micros(),
            hi: hi.as_micros(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl<M> DelayOracle<M> for RandomDelay {
    fn delay(&mut self, _env: &MsgEnvelope<'_, M>) -> LinkDelay {
        LinkDelay::Finite(Duration::from_micros(self.rng.gen_range(self.lo..=self.hi)))
    }
}

/// A set of parties for delay-rule matching.
#[derive(Debug, Clone)]
pub enum PartySet {
    /// Matches every party.
    Any,
    /// Matches exactly one party.
    One(PartyId),
    /// Matches the listed parties.
    In(Vec<PartyId>),
}

impl PartySet {
    /// Whether `p` is in the set.
    pub fn contains(&self, p: PartyId) -> bool {
        match self {
            PartySet::Any => true,
            PartySet::One(q) => *q == p,
            PartySet::In(v) => v.contains(&p),
        }
    }
}

/// A boxed message-content predicate, as used by [`DelayRule::when`].
pub type MsgPredicate<M> = Box<dyn Fn(&M) -> bool + Send>;

/// One scheduling rule: if `(from, to, when)` match, apply `delay`.
pub struct DelayRule<M> {
    /// Sender filter.
    pub from: PartySet,
    /// Recipient filter.
    pub to: PartySet,
    /// Optional message-content filter.
    pub when: Option<MsgPredicate<M>>,
    /// The delay to apply when the rule matches.
    pub delay: LinkDelay,
}

impl<M> DelayRule<M> {
    /// Rule matching all messages from `from` to `to`.
    pub fn link(from: PartySet, to: PartySet, delay: LinkDelay) -> Self {
        DelayRule {
            from,
            to,
            when: None,
            delay,
        }
    }

    /// Adds a message-content predicate to this rule.
    #[must_use]
    pub fn when(mut self, pred: impl Fn(&M) -> bool + Send + 'static) -> Self {
        self.when = Some(Box::new(pred));
        self
    }

    fn matches(&self, env: &MsgEnvelope<'_, M>) -> bool {
        self.from.contains(env.from)
            && self.to.contains(env.to)
            && self.when.as_ref().is_none_or(|p| p(env.msg))
    }
}

impl<M> std::fmt::Debug for DelayRule<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelayRule")
            .field("from", &self.from)
            .field("to", &self.to)
            .field("when", &self.when.as_ref().map(|_| "<pred>"))
            .field("delay", &self.delay)
            .finish()
    }
}

/// A first-match-wins rule table with a default — the workhorse for the
/// scripted lower-bound executions (Figures 4, 7/11, 12 of the paper).
///
/// # Examples
///
/// ```
/// use gcl_sim::{DelayRule, LinkDelay, PartySet, ScheduleOracle};
/// use gcl_types::{Duration, PartyId};
///
/// let oracle: ScheduleOracle<u8> = ScheduleOracle::new(Duration::from_micros(10))
///     .rule(DelayRule::link(
///         PartySet::One(PartyId::new(2)),
///         PartySet::Any,
///         LinkDelay::Finite(Duration::from_micros(100)),
///     ));
/// # let _ = oracle;
/// ```
pub struct ScheduleOracle<M> {
    rules: Vec<DelayRule<M>>,
    default: Duration,
}

impl<M> ScheduleOracle<M> {
    /// A table whose default (no rule matches) is `default`.
    pub fn new(default: Duration) -> Self {
        ScheduleOracle {
            rules: Vec::new(),
            default,
        }
    }

    /// Appends a rule (earlier rules win).
    #[must_use]
    pub fn rule(mut self, rule: DelayRule<M>) -> Self {
        self.rules.push(rule);
        self
    }

    /// Convenience: delay every message from `from` to `to` by `d`.
    #[must_use]
    pub fn pairwise(self, from: &[PartyId], to: &[PartyId], d: LinkDelay) -> Self {
        self.rule(DelayRule::link(
            PartySet::In(from.to_vec()),
            PartySet::In(to.to_vec()),
            d,
        ))
    }
}

impl<M: Send> DelayOracle<M> for ScheduleOracle<M> {
    fn delay(&mut self, env: &MsgEnvelope<'_, M>) -> LinkDelay {
        for rule in &self.rules {
            if rule.matches(env) {
                return rule.delay;
            }
        }
        LinkDelay::Finite(self.default)
    }
}

impl<M> std::fmt::Debug for ScheduleOracle<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleOracle")
            .field("rules", &self.rules.len())
            .field("default", &self.default)
            .finish()
    }
}

/// Clamps an oracle's answer to the timing model, for an honest link.
///
/// Returns the **delivery instant**. `fallback` is the eventual-delivery
/// horizon used when an unbounded model receives `Never` on an honest link.
pub(crate) fn clamp_delivery(
    model: TimingModel,
    sent_at: GlobalTime,
    choice: LinkDelay,
    honest_link: bool,
    fallback: Duration,
) -> Option<GlobalTime> {
    match choice {
        LinkDelay::Never if !honest_link => None,
        LinkDelay::Never => match model {
            TimingModel::Synchrony { delta, .. } => Some(sent_at + delta),
            TimingModel::PartialSynchrony { gst, big_delta } => {
                Some(latest_psync(sent_at, gst, big_delta))
            }
            TimingModel::Asynchrony => Some(sent_at + fallback),
        },
        LinkDelay::Finite(d) => {
            let requested = sent_at + d;
            if !honest_link {
                return Some(requested);
            }
            match model {
                TimingModel::Synchrony { delta, .. } => Some(if d > delta {
                    sent_at + delta
                } else {
                    requested
                }),
                TimingModel::PartialSynchrony { gst, big_delta } => {
                    let bound = latest_psync(sent_at, gst, big_delta);
                    Some(if requested > bound { bound } else { requested })
                }
                TimingModel::Asynchrony => Some(requested),
            }
        }
    }
}

fn latest_psync(sent_at: GlobalTime, gst: GlobalTime, big_delta: Duration) -> GlobalTime {
    let base = if sent_at > gst { sent_at } else { gst };
    base + big_delta
}

#[cfg(test)]
mod tests {
    use super::*;

    const D10: Duration = Duration::from_micros(10);
    const D100: Duration = Duration::from_micros(100);

    fn env(msg: &u8, honest: bool) -> MsgEnvelope<'_, u8> {
        MsgEnvelope {
            from: PartyId::new(0),
            to: PartyId::new(1),
            sent_at: GlobalTime::ZERO,
            msg,
            from_honest: honest,
            to_honest: honest,
            link_seq: 0,
        }
    }

    #[test]
    fn fixed_delay_constant() {
        let mut o = FixedDelay::new(D10);
        assert_eq!(
            DelayOracle::<u8>::delay(&mut o, &env(&0, true)),
            LinkDelay::Finite(D10)
        );
    }

    #[test]
    fn random_delay_in_range_and_deterministic() {
        let mut a = RandomDelay::new(D10, D100, 7);
        let mut b = RandomDelay::new(D10, D100, 7);
        for _ in 0..50 {
            let da = DelayOracle::<u8>::delay(&mut a, &env(&0, true));
            let db = DelayOracle::<u8>::delay(&mut b, &env(&0, true));
            assert_eq!(da, db);
            match da {
                LinkDelay::Finite(d) => assert!(d >= D10 && d <= D100),
                LinkDelay::Never => panic!("random oracle never drops"),
            }
        }
    }

    #[test]
    fn schedule_oracle_first_match_wins() {
        let mut o: ScheduleOracle<u8> = ScheduleOracle::new(D10)
            .rule(DelayRule::link(
                PartySet::One(PartyId::new(0)),
                PartySet::Any,
                LinkDelay::Finite(D100),
            ))
            .rule(DelayRule::link(
                PartySet::Any,
                PartySet::Any,
                LinkDelay::Never,
            ));
        assert_eq!(o.delay(&env(&0, true)), LinkDelay::Finite(D100));
        let other = MsgEnvelope {
            from: PartyId::new(3),
            ..env(&0, true)
        };
        assert_eq!(o.delay(&other), LinkDelay::Never);
    }

    #[test]
    fn schedule_oracle_content_predicate() {
        let mut o: ScheduleOracle<u8> = ScheduleOracle::new(D10).rule(
            DelayRule::link(PartySet::Any, PartySet::Any, LinkDelay::Finite(D100))
                .when(|m: &u8| *m == 9),
        );
        assert_eq!(o.delay(&env(&9, true)), LinkDelay::Finite(D100));
        assert_eq!(o.delay(&env(&1, true)), LinkDelay::Finite(D10));
    }

    #[test]
    fn schedule_oracle_default() {
        let mut o: ScheduleOracle<u8> = ScheduleOracle::new(D10);
        assert_eq!(o.delay(&env(&0, true)), LinkDelay::Finite(D10));
    }

    #[test]
    fn party_set_membership() {
        assert!(PartySet::Any.contains(PartyId::new(9)));
        assert!(PartySet::One(PartyId::new(1)).contains(PartyId::new(1)));
        assert!(!PartySet::One(PartyId::new(1)).contains(PartyId::new(2)));
        let s = PartySet::In(vec![PartyId::new(1), PartyId::new(3)]);
        assert!(s.contains(PartyId::new(3)));
        assert!(!s.contains(PartyId::new(2)));
    }

    #[test]
    fn clamp_synchrony_honest_bounded_by_delta() {
        let m = TimingModel::Synchrony {
            delta: D10,
            big_delta: D100,
        };
        // Over-δ request clamps to δ.
        assert_eq!(
            clamp_delivery(m, GlobalTime::ZERO, LinkDelay::Finite(D100), true, D100),
            Some(GlobalTime::from_micros(10))
        );
        // Never on honest link clamps to δ.
        assert_eq!(
            clamp_delivery(m, GlobalTime::ZERO, LinkDelay::Never, true, D100),
            Some(GlobalTime::from_micros(10))
        );
        // Byzantine link is unconstrained.
        assert_eq!(
            clamp_delivery(m, GlobalTime::ZERO, LinkDelay::Never, false, D100),
            None
        );
        assert_eq!(
            clamp_delivery(m, GlobalTime::ZERO, LinkDelay::Finite(D100), false, D100),
            Some(GlobalTime::from_micros(100))
        );
    }

    #[test]
    fn clamp_partial_synchrony_post_gst() {
        let gst = GlobalTime::from_micros(50);
        let m = TimingModel::PartialSynchrony {
            gst,
            big_delta: D10,
        };
        // Sent before GST: may be delayed until GST + Δ but no later.
        assert_eq!(
            clamp_delivery(m, GlobalTime::ZERO, LinkDelay::Never, true, D100),
            Some(GlobalTime::from_micros(60))
        );
        // Sent after GST: bounded by sent + Δ.
        assert_eq!(
            clamp_delivery(
                m,
                GlobalTime::from_micros(70),
                LinkDelay::Finite(D100),
                true,
                D100
            ),
            Some(GlobalTime::from_micros(80))
        );
        // Within bound: honored exactly.
        assert_eq!(
            clamp_delivery(
                m,
                GlobalTime::from_micros(70),
                LinkDelay::Finite(Duration::from_micros(4)),
                true,
                D100
            ),
            Some(GlobalTime::from_micros(74))
        );
    }

    #[test]
    fn clamp_asynchrony_eventual() {
        let m = TimingModel::Asynchrony;
        assert_eq!(
            clamp_delivery(m, GlobalTime::ZERO, LinkDelay::Never, true, D100),
            Some(GlobalTime::from_micros(100))
        );
        assert_eq!(
            clamp_delivery(m, GlobalTime::ZERO, LinkDelay::Finite(D100), true, D10),
            Some(GlobalTime::from_micros(100))
        );
    }

    #[test]
    fn lockstep_constructor() {
        assert_eq!(
            TimingModel::lockstep(D10),
            TimingModel::Synchrony {
                delta: D10,
                big_delta: D10
            }
        );
        assert_eq!(TimingModel::Asynchrony.big_delta(), None);
        assert_eq!(TimingModel::lockstep(D10).big_delta(), Some(D10));
    }
}
