//! Generic, protocol-agnostic Byzantine strategies.
//!
//! Protocol-*specific* attacks (equivocating broadcasters, double voters …)
//! live next to each protocol in `gcl-core`; the strategies here apply to
//! any message type.

use crate::context::{Context, Strategy};
use gcl_types::{LocalTime, PartyId};
use std::fmt;

/// Sends nothing, ever — a crash-from-start / mute party.
///
/// # Examples
///
/// ```
/// use gcl_sim::Silent;
/// let s: Silent<u64> = Silent::new();
/// # let _ = s;
/// ```
pub struct Silent<M> {
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M> Silent<M> {
    /// A fresh silent party.
    pub fn new() -> Self {
        Silent {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M> Default for Silent<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> fmt::Debug for Silent<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Silent")
    }
}

impl<M: Clone + fmt::Debug + Send + 'static> Strategy<M> for Silent<M> {
    fn start(&mut self, _ctx: &mut dyn Context<M>) {}
    fn on_message(&mut self, _from: PartyId, _msg: M, _ctx: &mut dyn Context<M>) {}
    fn on_timer(&mut self, _tag: u64, _ctx: &mut dyn Context<M>) {}
}

/// Runs the inner strategy honestly, then crashes after handling
/// `crash_after` events — failure injection at every protocol step.
///
/// The crash is real: on the first event past the budget the wrapper
/// terminates its slot (instead of merely going silent), so the runtime
/// stops delivering to it and — on the simulator — discards further sends
/// to it at enqueue time (`Outcome::drops_at_enqueue`).
pub struct Crashing<S> {
    inner: S,
    crash_after: usize,
    handled: usize,
}

impl<S> Crashing<S> {
    /// Crash after `crash_after` handled events (0 = never acts at all).
    pub fn new(inner: S, crash_after: usize) -> Self {
        Crashing {
            inner,
            crash_after,
            handled: 0,
        }
    }

    fn alive(&mut self) -> bool {
        if self.handled >= self.crash_after {
            return false;
        }
        self.handled += 1;
        true
    }
}

impl<S: fmt::Debug> fmt::Debug for Crashing<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Crashing")
            .field("inner", &self.inner)
            .field("crash_after", &self.crash_after)
            .field("handled", &self.handled)
            .finish()
    }
}

impl<M, S: Strategy<M>> Strategy<M> for Crashing<S>
where
    M: Clone + fmt::Debug + Send + 'static,
{
    fn start(&mut self, ctx: &mut dyn Context<M>) {
        if self.alive() {
            self.inner.start(ctx);
        } else {
            ctx.terminate();
        }
    }
    fn on_message(&mut self, from: PartyId, msg: M, ctx: &mut dyn Context<M>) {
        if self.alive() {
            self.inner.on_message(from, msg, ctx);
        } else {
            ctx.terminate();
        }
    }
    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<M>) {
        if self.alive() {
            self.inner.on_timer(tag, ctx);
        } else {
            ctx.terminate();
        }
    }
}

/// One scripted action: at a local time, send a message to a party.
#[derive(Debug, Clone)]
pub struct ScriptedAction<M> {
    /// Local time at which to act.
    pub at: LocalTime,
    /// Recipient.
    pub to: PartyId,
    /// Message to send.
    pub msg: M,
}

/// Plays back an exact script of sends — the building block for the paper's
/// lower-bound executions, where the adversary's behavior is specified
/// message by message.
///
/// Incoming messages and protocol logic are ignored entirely.
pub struct Scripted<M> {
    actions: Vec<ScriptedAction<M>>,
}

impl<M> Scripted<M> {
    /// A strategy that performs exactly `actions` (in `at` order or not —
    /// each is scheduled independently).
    pub fn new(actions: Vec<ScriptedAction<M>>) -> Self {
        Scripted { actions }
    }

    /// Convenience: send `msg` to each listed party at `at`.
    pub fn multicast_at(at: LocalTime, recipients: &[PartyId], msg: M) -> Self
    where
        M: Clone,
    {
        Scripted {
            actions: recipients
                .iter()
                .map(|&to| ScriptedAction {
                    at,
                    to,
                    msg: msg.clone(),
                })
                .collect(),
        }
    }

    /// Appends further actions.
    #[must_use]
    pub fn and(mut self, mut more: Vec<ScriptedAction<M>>) -> Self {
        self.actions.append(&mut more);
        self
    }
}

impl<M: fmt::Debug> fmt::Debug for Scripted<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scripted")
            .field("actions", &self.actions.len())
            .finish()
    }
}

impl<M: Clone + fmt::Debug + Send + 'static> Strategy<M> for Scripted<M> {
    fn start(&mut self, ctx: &mut dyn Context<M>) {
        for (i, a) in self.actions.iter().enumerate() {
            ctx.set_timer(a.at.since(LocalTime::ZERO), i as u64);
        }
    }
    fn on_message(&mut self, _from: PartyId, _msg: M, _ctx: &mut dyn Context<M>) {}
    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<M>) {
        if let Some(a) = self.actions.get(tag as usize) {
            ctx.send(a.to, a.msg.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::FixedDelay;
    use crate::runner::Simulation;
    use crate::Protocol;
    use gcl_types::{Config, Duration, GlobalTime, Value};

    struct Sink;
    impl Protocol for Sink {
        type Msg = Value;
        fn start(&mut self, _ctx: &mut dyn Context<Value>) {}
        fn on_message(&mut self, _from: PartyId, v: Value, ctx: &mut dyn Context<Value>) {
            ctx.commit(v);
            ctx.terminate();
        }
    }

    #[test]
    fn scripted_sends_at_exact_times() {
        let cfg = Config::new(2, 1).unwrap();
        let script = Scripted::new(vec![ScriptedAction {
            at: LocalTime::from_micros(40),
            to: PartyId::new(1),
            msg: Value::new(8),
        }]);
        let o = Simulation::build(cfg)
            .oracle(FixedDelay::new(Duration::from_micros(5)))
            .byzantine(PartyId::new(0), script)
            .spawn_honest(|_| Sink)
            .run();
        let c = o.commit_of(PartyId::new(1)).unwrap();
        assert_eq!(c.global, GlobalTime::from_micros(45));
        assert_eq!(c.value, Value::new(8));
    }

    #[test]
    fn scripted_multicast_and_chain() {
        let s = Scripted::multicast_at(
            LocalTime::from_micros(1),
            &[PartyId::new(1), PartyId::new(2)],
            Value::new(3),
        )
        .and(vec![ScriptedAction {
            at: LocalTime::from_micros(2),
            to: PartyId::new(1),
            msg: Value::new(4),
        }]);
        assert_eq!(s.actions.len(), 3);
    }

    #[test]
    fn silent_party_never_sends() {
        let cfg = Config::new(2, 1).unwrap();
        let o = Simulation::build(cfg)
            .byzantine(PartyId::new(0), Silent::new())
            .spawn_honest(|_| Sink)
            .run();
        assert!(o.commits().is_empty());
    }

    #[test]
    fn crashing_stops_after_budget() {
        struct Chatty;
        impl Protocol for Chatty {
            type Msg = Value;
            fn start(&mut self, ctx: &mut dyn Context<Value>) {
                ctx.set_timer(Duration::from_micros(1), 0);
            }
            fn on_message(&mut self, _: PartyId, _: Value, _: &mut dyn Context<Value>) {}
            fn on_timer(&mut self, _tag: u64, ctx: &mut dyn Context<Value>) {
                ctx.send(PartyId::new(1), Value::new(1));
                ctx.set_timer(Duration::from_micros(1), 0);
            }
        }
        let cfg = Config::new(2, 1).unwrap();
        // Budget 3: start + two timer firings => exactly one send reaches P1
        // (second timer handler sends, then it crashes on the next).
        let o = Simulation::build(cfg)
            .oracle(FixedDelay::new(Duration::from_micros(1)))
            .byzantine(PartyId::new(0), Crashing::new(Chatty, 3))
            .spawn_honest(|_| Sink)
            .run();
        assert!(o.commit_of(PartyId::new(1)).is_some());
    }

    #[test]
    fn crashing_with_zero_budget_is_silent() {
        let cfg = Config::new(2, 1).unwrap();
        let o = Simulation::build(cfg)
            .byzantine(PartyId::new(0), Crashing::new(Silent::<Value>::new(), 0))
            .spawn_honest(|_| Sink)
            .run();
        assert!(o.commits().is_empty());
    }

    #[test]
    fn debug_impls() {
        assert_eq!(format!("{:?}", Silent::<Value>::new()), "Silent");
        let c = Crashing::new(Silent::<Value>::new(), 2);
        assert!(format!("{c:?}").contains("crash_after: 2"));
        let s = Scripted::<Value>::new(vec![]);
        assert!(format!("{s:?}").contains("actions: 0"));
    }
}
